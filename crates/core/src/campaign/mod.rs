//! Crash-safe fingerprinting campaigns: a journaled batch runner with
//! per-job fault isolation, cooperative deadlines, and artifact
//! integrity (DESIGN.md §10).
//!
//! A **campaign** executes the job list a [`Manifest`] expands to —
//! every (circuit, buyer) pair — minting one fingerprinted copy per job
//! through [`Fingerprinter::embed_with_policy_cancellable`]. The runner
//! is built for unattended fleets, so three defenses are always on:
//!
//! * **Write-ahead journal** — every job transition is appended to
//!   `campaign.journal.jsonl` (checksummed, fsynced) *before* the runner
//!   acts on it. A SIGKILLed campaign resumes with
//!   [`CampaignOptions::resume`]: completed jobs are skipped (after
//!   re-verifying their artifact digests on disk), quarantined jobs stay
//!   quarantined, and only in-flight jobs re-run. Because buyer bits
//!   derive from the manifest seed, a resumed job re-mints a
//!   bit-identical artifact.
//! * **Fault isolation** — each job attempt runs under
//!   `std::panic::catch_unwind` with a per-job [`CancelToken`] deadline
//!   threaded through the whole verify ladder. A failing attempt is
//!   retried with backoff; an exhausted job is journalled as *poisoned*
//!   with a structured diagnostic and the campaign moves on.
//! * **Artifact integrity** — netlists are written atomically
//!   (temp file + fsync + rename) and their content digests recorded in
//!   the journal, so a resume detects truncated or tampered artifacts
//!   and re-mints them.
//!
//! The core crate owns orchestration only: circuit parsing and netlist
//! emission are injected through [`CampaignEnv`], keeping the dependency
//! graph acyclic (the CLI supplies the BLIF/Verilog codecs).

pub mod journal;
pub mod manifest;
pub mod population;

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odcfp_analysis::cancel::CancelToken;
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::{Digest, Netlist};

use crate::verify::{Verdict, VerifySession};
use crate::Fingerprinter;

pub use journal::{
    compact, BatchState, CompactionStats, GoldenState, JobState, Journal, JournalState, Record,
    JOURNAL_FILE,
};
pub use manifest::{
    ArtifactMode, CircuitSource, FaultProbe, JobSpec, Manifest, ManifestCircuit, ManifestError,
    VerifySpec,
};
pub use population::CampaignCache;

/// Directory (inside the output directory) artifacts are written to.
pub const ARTIFACT_DIR: &str = "artifacts";

/// Hard wall-clock cap on the `probe:spin` fault probe, so a manifest
/// without `deadline-ms` cannot hang a campaign forever.
const SPIN_PROBE_CAP: Duration = Duration::from_secs(30);

/// Capability hooks the caller injects: how to load a circuit from a
/// [`CircuitSource::Path`] and how to render a netlist into artifact
/// text. Both run *inside* the per-job `catch_unwind` boundary, so a
/// panicking loader poisons one job, not the campaign.
pub struct CampaignEnv<'a> {
    /// Resolves a `path:` source to a netlist. Errors are job-attempt
    /// failures (retried, then quarantined).
    pub load: &'a (dyn Fn(&ManifestCircuit) -> Result<Netlist, String> + Sync),
    /// Renders a minted netlist to the artifact file contents.
    pub emit: &'a (dyn Fn(&Netlist) -> String + Sync),
}

/// Runner knobs beyond what the manifest specifies.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Continue a previous run in the same output directory. Without
    /// this, an existing journal is an error (never silently clobber).
    pub resume: bool,
    /// Execute at most this many jobs this invocation, then stop with
    /// the rest pending — chunked operation, and the hook crash-safety
    /// tests use to create interrupted campaigns deterministically.
    pub stop_after: Option<usize>,
}

/// Progress callbacks, one per job transition, for live reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// An attempt began.
    Started {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The job completed and its artifact is on disk.
    Completed {
        /// Job id.
        job: String,
        /// Verdict short name.
        verdict: String,
        /// Milliseconds the successful attempt took.
        millis: u64,
    },
    /// Resume skipped a job whose journalled artifact re-verified.
    Skipped {
        /// Job id.
        job: String,
    },
    /// Resume skipped a quarantined job.
    SkippedPoisoned {
        /// Job id.
        job: String,
    },
    /// A journalled-done job's artifact was missing or failed its digest
    /// check; the job re-runs.
    StaleArtifact {
        /// Job id.
        job: String,
    },
    /// An attempt failed; the job will retry or be quarantined.
    AttemptFailed {
        /// Job id.
        job: String,
        /// The attempt that failed.
        attempt: u32,
        /// What went wrong.
        error: String,
    },
    /// The job exhausted its attempts and is quarantined.
    Poisoned {
        /// Job id.
        job: String,
        /// Last failure diagnostic.
        diagnostic: String,
    },
    /// Batched progress: large campaigns emit this every few hundred
    /// jobs instead of per-job `Started`/`Completed` events.
    Progress {
        /// Jobs in a terminal state so far (this leg's view).
        done: u64,
        /// Jobs the manifest expands to.
        total: u64,
    },
    /// Delta mode: a circuit's golden artifact is on disk and
    /// journalled.
    GoldenMinted {
        /// Circuit name.
        circuit: String,
        /// Fingerprint locations (bits per buyer code).
        locations: u64,
    },
    /// Delta mode: the one-shot code-space proof landed — every buyer of
    /// this circuit is `proven` without per-buyer solving.
    CodeSpaceProven {
        /// Circuit name.
        circuit: String,
        /// Conflicts the free-selector solve spent.
        conflicts: u64,
        /// Wall-clock milliseconds the proof took.
        millis: u64,
    },
    /// Delta mode: no code-space proof (entangled locations, refuted
    /// superposition, or budget out); buyers verify individually.
    CodeSpaceFallback {
        /// Circuit name.
        circuit: String,
        /// Why the batch proof was unavailable.
        reason: String,
    },
    /// Delta mode: a window of buyers is durably in the codebook.
    WindowCompleted {
        /// Circuit name.
        circuit: String,
        /// First buyer of the window.
        from: u64,
        /// One past the last buyer of the window.
        to: u64,
    },
}

/// A campaign-level failure (job-level failures never surface here —
/// they are quarantined and reported in the summary).
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O operation on the journal, output directory, or an
    /// artifact failed.
    Io {
        /// What the runner was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The output directory already holds a journal and
    /// [`CampaignOptions::resume`] was not set.
    JournalExists(PathBuf),
    /// `--resume` with a manifest that does not match the journalled one.
    ManifestMismatch {
        /// Digest recorded in the journal.
        journalled: Digest,
        /// Digest of the manifest passed to this run.
        supplied: Digest,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { context, source } => write!(f, "{context}: {source}"),
            CampaignError::JournalExists(path) => write!(
                f,
                "output directory already contains {} — pass --resume to continue it, \
                 or choose a fresh directory",
                path.display()
            ),
            CampaignError::ManifestMismatch {
                journalled,
                supplied,
            } => write!(
                f,
                "refusing to resume: journal was written for manifest {journalled}, \
                 but this run supplied {supplied}"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> CampaignError {
    let context = context.into();
    move |source| CampaignError::Io { context, source }
}

/// The final accounting of a campaign invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Jobs the manifest expands to.
    pub total: usize,
    /// Jobs executed (minted) by *this* invocation.
    pub executed: usize,
    /// Jobs skipped because a previous leg completed them.
    pub skipped: usize,
    /// Jobs completed overall (executed + skipped-as-done).
    pub completed: usize,
    /// Quarantined jobs with their diagnostics (all legs).
    pub poisoned: Vec<(String, String)>,
    /// Verdict short-name histogram over completed jobs.
    pub verdicts: BTreeMap<String, usize>,
    /// Jobs left pending by [`CampaignOptions::stop_after`].
    pub remaining: usize,
}

impl CampaignSummary {
    /// `true` when every job reached a terminal state and none were
    /// quarantined.
    pub fn is_clean(&self) -> bool {
        self.poisoned.is_empty() && self.remaining == 0
    }
}

impl std::fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "campaign: {} jobs, {} completed ({} executed, {} resumed), \
             {} poisoned, {} pending",
            self.total,
            self.completed,
            self.executed,
            self.skipped,
            self.poisoned.len(),
            self.remaining
        )?;
        for (verdict, count) in &self.verdicts {
            writeln!(f, "  verdict {verdict}: {count}")?;
        }
        for (job, diagnostic) in &self.poisoned {
            writeln!(f, "  poisoned {job}: {diagnostic}")?;
        }
        Ok(())
    }
}

/// What one successful attempt produced, before it is journalled.
struct AttemptSuccess {
    verdict: &'static str,
    artifact_text: String,
    bits: String,
}

fn verdict_name(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Proven => "proven",
        Verdict::ProbablyEquivalent { .. } => "probable",
        Verdict::Refuted { .. } => "refuted",
        Verdict::Undecided { .. } => "undecided",
    }
}

/// Runs (or resumes) a campaign in `out_dir`, reporting progress through
/// `on_event`.
///
/// # Example
///
/// Mint two buyer copies of one circuit (the loader and emitter are
/// injected, so any codec works — the CLI wires in BLIF/Verilog):
///
/// ```
/// use odcfp_core::campaign::{run, CampaignEnv, CampaignOptions, Manifest};
/// use odcfp_netlist::CellLibrary;
/// use odcfp_synth::benchmarks::random::{random_dag, DagParams};
///
/// let manifest = Manifest::parse("circuit c path:c.v\nbuyers 2\nseed 7\n")?;
/// let env = CampaignEnv {
///     load: &|_c| Ok(random_dag(CellLibrary::standard(), DagParams::small(5))),
///     emit: &|n| format!("// {} gates\n", n.num_gates()),
/// };
/// let dir = std::env::temp_dir().join("odcfp-doc-campaign-run");
/// # let _ = std::fs::remove_dir_all(&dir);
/// let summary = run(&manifest, &dir, &env, &CampaignOptions::default(), &mut |_| {})?;
/// assert_eq!(summary.completed, 2);
/// assert!(summary.is_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Only campaign-level problems error: unusable output directory,
/// journal I/O failures, or a resume against a different manifest.
/// Job-level failures are quarantined, not raised.
pub fn run(
    manifest: &Manifest,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    options: &CampaignOptions,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<CampaignSummary, CampaignError> {
    run_cached(
        manifest,
        out_dir,
        env,
        options,
        &mut CampaignCache::default(),
        on_event,
    )
}

/// Journal records beyond which a resume compacts the journal before
/// appending more (roughly: several failed legs' worth of churn).
const COMPACT_SLACK: usize = 4096;

/// Campaigns larger than this stop emitting per-job events and obs
/// points and batch progress instead (see [`JobEvent::Progress`]).
const VERBOSE_JOB_CAP: usize = 512;

/// Terminal jobs per [`JobEvent::Progress`] emission in batched mode.
const PROGRESS_EVERY: usize = 256;

/// [`run`] with caller-owned reusable state: a resident server passes
/// the same [`CampaignCache`] to every leg of a campaign so circuit
/// analysis, verify sessions, and delta-mode code-space proofs are paid
/// once per campaign instead of once per leg. Results are identical with
/// a cold cache.
///
/// # Errors
///
/// As [`run`].
pub fn run_cached(
    manifest: &Manifest,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    options: &CampaignOptions,
    cache: &mut CampaignCache,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<CampaignSummary, CampaignError> {
    fs::create_dir_all(out_dir.join(ARTIFACT_DIR))
        .map_err(io_err(format!("creating {}", out_dir.display())))?;

    let mut state = JournalState::replay(out_dir).map_err(io_err("replaying campaign journal"))?;
    if state.records > 0 && !options.resume {
        return Err(CampaignError::JournalExists(out_dir.join(JOURNAL_FILE)));
    }
    if let Some(journalled) = state.manifest {
        if journalled != manifest.digest() {
            return Err(CampaignError::ManifestMismatch {
                journalled,
                supplied: manifest.digest(),
            });
        }
    }

    let jobs = manifest.jobs();

    // A journal much longer than its job list is mostly superseded
    // churn (retries, many chunked legs); fold it before appending more
    // so replay time stays proportional to live state, not history.
    if options.resume && state.records > 3 * jobs.len() + COMPACT_SLACK {
        let stats = journal::compact(out_dir).map_err(io_err("compacting campaign journal"))?;
        odcfp_obs::point("campaign.compact")
            .field("records_before", stats.records_before)
            .field("records_after", stats.records_after)
            .emit();
        state = JournalState::replay(out_dir).map_err(io_err("replaying compacted journal"))?;
    }
    let mut journal = Journal::open(out_dir).map_err(io_err("opening campaign journal"))?;
    journal
        .append(&Record::Start {
            manifest: manifest.digest(),
            jobs: jobs.len() as u64,
        })
        .map_err(io_err("journalling campaign start"))?;
    odcfp_obs::point("campaign.start")
        .field("jobs", jobs.len())
        .field("resume", options.resume)
        .emit();

    let mut summary = CampaignSummary {
        total: jobs.len(),
        ..CampaignSummary::default()
    };
    // Fingerprinters are expensive (location analysis over the whole
    // netlist); build each circuit's once and share it across buyers.
    let mut fingerprinters: HashMap<usize, Arc<Fingerprinter>> = HashMap::new();
    // One persistent verification session per circuit: the sweep
    // engine's strash store and learnt clauses amortize across buyers,
    // so buyer N+1's check is usually a structural lookup, not a fresh
    // SAT problem. Dropped for a circuit whenever one of its attempts
    // fails (see `run_job`): a panicked or deadline-killed check may
    // leave the engines mid-query, and verdict safety beats reuse.
    let mut sessions: HashMap<usize, VerifySession> = HashMap::new();

    // Per-job emission at population scale drowns both stderr and the
    // trace stream (and measurably slows the mint loop); large
    // campaigns batch progress instead.
    let verbose = jobs.len() <= VERBOSE_JOB_CAP;
    let delta = manifest.artifact_mode == ArtifactMode::Delta;
    let mut terminal = 0u64;
    let progress = |terminal: u64, on_event: &mut dyn FnMut(&JobEvent)| {
        if !verbose && terminal.is_multiple_of(PROGRESS_EVERY as u64) {
            odcfp_obs::point("campaign.progress")
                .field("done", terminal)
                .field("total", jobs.len())
                .emit();
            on_event(&JobEvent::Progress {
                done: terminal,
                total: jobs.len() as u64,
            });
        }
    };

    for job in &jobs {
        // Delta mode mints `path:` circuits in windows (below); only
        // probe circuits go through the per-job loop, keeping the fault
        // battery identical across artifact modes.
        if delta && matches!(manifest.circuits[job.circuit].source, CircuitSource::Path(_)) {
            continue;
        }
        // Resume: honour terminal journal states.
        match state.jobs.get(&job.id) {
            Some(JobState::Done {
                verdict,
                artifact,
                digest,
                ..
            }) => {
                if artifact_intact(out_dir, artifact, *digest) {
                    summary.skipped += 1;
                    summary.completed += 1;
                    *summary.verdicts.entry(verdict.clone()).or_insert(0) += 1;
                    if verbose {
                        // Replay-stable: a resumed leg re-emits the journalled
                        // outcome, so its `campaign.job.outcome` stream equals
                        // an uninterrupted run's.
                        odcfp_obs::point("campaign.job.outcome")
                            .field("job", job.id.as_str())
                            .field("verdict", verdict.as_str())
                            .emit();
                        on_event(&JobEvent::Skipped { job: job.id.clone() });
                    }
                    terminal += 1;
                    progress(terminal, on_event);
                    continue;
                }
                // Journalled done, but the artifact is gone or corrupt:
                // fall through and re-mint it.
                on_event(&JobEvent::StaleArtifact { job: job.id.clone() });
            }
            Some(JobState::Poisoned { diagnostic }) => {
                summary
                    .poisoned
                    .push((job.id.clone(), diagnostic.clone()));
                on_event(&JobEvent::SkippedPoisoned { job: job.id.clone() });
                terminal += 1;
                progress(terminal, on_event);
                continue;
            }
            Some(JobState::InFlight) | None => {}
        }

        if options.stop_after.is_some_and(|cap| summary.executed >= cap) {
            summary.remaining += 1;
            continue;
        }
        summary.executed += 1;

        run_job(
            manifest,
            job,
            out_dir,
            env,
            &mut journal,
            &mut fingerprinters,
            &mut sessions,
            &mut summary,
            verbose,
            on_event,
        )?;
        terminal += 1;
        progress(terminal, on_event);
    }

    if delta {
        population::run_delta(
            manifest,
            out_dir,
            env,
            options,
            cache,
            &state,
            &mut journal,
            &mut summary,
            on_event,
        )?;
    }

    // `campaign.summary` carries only leg-invariant totals (a resumed
    // leg reports the same end state as an uninterrupted run);
    // `campaign.leg` carries this invocation's split.
    odcfp_obs::point("campaign.summary")
        .field("total", summary.total)
        .field("completed", summary.completed)
        .field("poisoned", summary.poisoned.len())
        .emit();
    odcfp_obs::point("campaign.leg")
        .field("executed", summary.executed)
        .field("skipped", summary.skipped)
        .field("remaining", summary.remaining)
        .emit();
    Ok(summary)
}

/// Executes one job: attempt loop with backoff, quarantine on
/// exhaustion. Only journal I/O errors propagate.
#[allow(clippy::too_many_arguments)]
fn run_job(
    manifest: &Manifest,
    job: &JobSpec,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    journal: &mut Journal,
    fingerprinters: &mut HashMap<usize, Arc<Fingerprinter>>,
    sessions: &mut HashMap<usize, VerifySession>,
    summary: &mut CampaignSummary,
    verbose: bool,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<(), CampaignError> {
    let mut job_span = verbose.then(|| {
        let mut span = odcfp_obs::span("campaign.job");
        span.field("job", job.id.as_str());
        span
    });
    let attempts = manifest.retries + 1;
    let mut last_error = String::new();
    for attempt in 1..=attempts {
        journal
            .append(&Record::JobStart {
                job: job.id.clone(),
                attempt,
            })
            .map_err(io_err("journalling job start"))?;
        if verbose {
            odcfp_obs::point("campaign.job.start")
                .field("job", job.id.as_str())
                .field("attempt", u64::from(attempt))
                .emit();
            on_event(&JobEvent::Started {
                job: job.id.clone(),
                attempt,
            });
        }

        let started = Instant::now();
        let token = match manifest.deadline {
            Some(limit) => CancelToken::with_timeout(limit),
            None => CancelToken::new(),
        };
        // The unwind boundary: a panicking loader, fingerprinter, or
        // emitter fails this *attempt*, never the campaign. The
        // fingerprinter cache is only written on success, so a panic
        // cannot leave a half-built entry behind; the verify session is
        // dropped below on any failure since it is mutated mid-attempt.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            attempt_job(manifest, job, env, fingerprinters, sessions, &token)
        }))
        .unwrap_or_else(|payload| Err(format!("panicked: {}", panic_text(payload))));

        match outcome {
            Ok(success) => {
                let relpath = format!(
                    "{ARTIFACT_DIR}/{}_b{}.v",
                    manifest.circuits[job.circuit].name, job.buyer
                );
                let digest = write_artifact_atomic(
                    &out_dir.join(&relpath),
                    success.artifact_text.as_bytes(),
                )
                .map_err(io_err(format!("writing artifact {relpath}")))?;
                let millis = started.elapsed().as_millis() as u64;
                journal
                    .append(&Record::JobDone {
                        job: job.id.clone(),
                        attempt,
                        verdict: success.verdict.to_owned(),
                        artifact: relpath,
                        digest,
                        bits: success.bits,
                        millis,
                    })
                    .map_err(io_err("journalling job completion"))?;
                summary.completed += 1;
                *summary
                    .verdicts
                    .entry(success.verdict.to_owned())
                    .or_insert(0) += 1;
                if verbose {
                    odcfp_obs::point("campaign.job.outcome")
                        .field("job", job.id.as_str())
                        .field("verdict", success.verdict)
                        .emit();
                    on_event(&JobEvent::Completed {
                        job: job.id.clone(),
                        verdict: success.verdict.to_owned(),
                        millis,
                    });
                }
                if let Some(span) = job_span.as_mut() {
                    span.field("outcome", "completed");
                }
                return Ok(());
            }
            Err(error) => {
                // A failed attempt may have left the shared verify
                // session mid-query (panic, deadline inside the
                // solver); rebuild it from scratch next time rather
                // than trust its internal state.
                sessions.remove(&job.circuit);
                journal
                    .append(&Record::JobFailed {
                        job: job.id.clone(),
                        attempt,
                        error: error.clone(),
                    })
                    .map_err(io_err("journalling job failure"))?;
                odcfp_obs::point("campaign.attempt.failed")
                    .field("job", job.id.as_str())
                    .field("attempt", u64::from(attempt))
                    .field("error", error.as_str())
                    .emit();
                on_event(&JobEvent::AttemptFailed {
                    job: job.id.clone(),
                    attempt,
                    error: error.clone(),
                });
                last_error = error;
                if attempt < attempts {
                    std::thread::sleep(retry_backoff(
                        manifest.buyer_seed(job.buyer),
                        attempt,
                    ));
                }
            }
        }
    }

    let diagnostic = format!("{last_error} (after {attempts} attempts)");
    journal
        .append(&Record::JobPoisoned {
            job: job.id.clone(),
            attempts,
            diagnostic: diagnostic.clone(),
        })
        .map_err(io_err("journalling quarantine"))?;
    // Structured quarantine event: the diagnostic embeds the panic
    // payload (or last error) so a trace alone explains the failure.
    odcfp_obs::point("campaign.quarantine")
        .field("job", job.id.as_str())
        .field("attempts", u64::from(attempts))
        .field("diagnostic", diagnostic.as_str())
        .emit();
    if let Some(span) = job_span.as_mut() {
        span.field("outcome", "poisoned");
    }
    summary.poisoned.push((job.id.clone(), diagnostic.clone()));
    on_event(&JobEvent::Poisoned {
        job: job.id.clone(),
        diagnostic,
    });
    Ok(())
}

/// One attempt's actual work; runs inside the unwind boundary.
fn attempt_job(
    manifest: &Manifest,
    job: &JobSpec,
    env: &CampaignEnv<'_>,
    fingerprinters: &mut HashMap<usize, Arc<Fingerprinter>>,
    sessions: &mut HashMap<usize, VerifySession>,
    token: &CancelToken,
) -> Result<AttemptSuccess, String> {
    let circuit = &manifest.circuits[job.circuit];
    match circuit.source {
        CircuitSource::Probe(FaultProbe::Panic) => {
            panic!("fault probe: deliberate panic in job {}", job.id)
        }
        CircuitSource::Probe(FaultProbe::Spin) => {
            let started = Instant::now();
            while !token.is_cancelled() {
                if started.elapsed() >= SPIN_PROBE_CAP {
                    return Err(format!(
                        "spin probe hit its {SPIN_PROBE_CAP:?} hard cap (no deadline-ms set?)"
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(format!(
                "deadline exceeded after {:?} (spin probe)",
                started.elapsed()
            ))
        }
        CircuitSource::Path(_) => {
            let fp = match fingerprinters.get(&job.circuit) {
                Some(fp) => Arc::clone(fp),
                None => {
                    let netlist = (env.load)(circuit)
                        .map_err(|e| format!("loading circuit {:?}: {e}", circuit.name))?;
                    let fp = Arc::new(
                        Fingerprinter::new(netlist)
                            .map_err(|e| format!("analysing circuit {:?}: {e}", circuit.name))?,
                    );
                    fingerprinters.insert(job.circuit, Arc::clone(&fp));
                    fp
                }
            };
            let mut rng = Xoshiro256::seed_from_u64(manifest.buyer_seed(job.buyer));
            let bits: Vec<bool> = (0..fp.locations().len()).map(|_| rng.next_bool()).collect();
            let policy = manifest.verify.policy();
            // Verify through the circuit's persistent session: the base
            // is strashed once and each buyer's copy usually proves at
            // the first cut point above its modifications. Verdicts are
            // buyer-order-independent — the manifest policies are
            // definitive (see DESIGN.md §11) — so reuse cannot change
            // what the journal records, only how fast.
            let session = match sessions.get_mut(&job.circuit) {
                Some(session) => session,
                None => {
                    let session = VerifySession::new(fp.base())
                        .map_err(|e| format!("building verify session: {e}"))?;
                    sessions.entry(job.circuit).or_insert(session)
                }
            };
            let (copy, verdict) = fp
                .embed_with_session_cancellable(session, &bits, &policy, token)
                .map_err(|e| format!("embedding: {e}"))?;
            if token.is_cancelled() {
                return Err("deadline exceeded during embed/verify".to_owned());
            }
            if matches!(verdict, Verdict::Refuted { .. }) {
                return Err(
                    "verification REFUTED the minted copy — embedding produced a \
                     non-equivalent netlist"
                        .to_owned(),
                );
            }
            Ok(AttemptSuccess {
                verdict: verdict_name(&verdict),
                artifact_text: (env.emit)(copy.netlist()),
                bits: copy.bit_string(),
            })
        }
    }
}

/// Hard ceiling on any retry backoff sleep.
const BACKOFF_CAP: Duration = Duration::from_millis(200);

/// The sleep before retry number `attempt + 1`: bounded exponential
/// backoff with deterministic jitter.
///
/// Exponential growth (10 ms doubling per attempt, capped at 200 ms)
/// gives transient trouble — load spikes, tight
/// deadlines — breathing room while keeping a doomed job cheap. The
/// jitter decorrelates retries when many jobs fail simultaneously (a
/// shared-resource blip would otherwise re-thunder in lockstep), but it
/// is *seeded*, from the job's buyer seed and the attempt number, so a
/// re-run of the same campaign sleeps identically: retries stay
/// reproducible, like every other campaign decision.
pub fn retry_backoff(buyer_seed: u64, attempt: u32) -> Duration {
    let base = Duration::from_millis(10u64 << (attempt - 1).min(5)).min(BACKOFF_CAP);
    // Jitter in [base/2, 3*base/2): full decorrelation while keeping
    // the expected sleep equal to the un-jittered schedule.
    let mut rng =
        Xoshiro256::seed_from_u64(buyer_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let base_us = base.as_micros() as u64;
    let jittered = base_us / 2 + rng.next_u64() % base_us.max(1);
    Duration::from_micros(jittered).min(BACKOFF_CAP)
}

/// Renders a panic payload into a diagnostic string.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// `true` when the journalled artifact exists on disk with the recorded
/// content digest.
fn artifact_intact(out_dir: &Path, relpath: &str, expected: Digest) -> bool {
    fs::read(out_dir.join(relpath))
        .map(|bytes| Digest::of(&bytes) == expected)
        .unwrap_or(false)
}

/// Writes `bytes` to `path` atomically — temp file, fsync, rename —
/// returning the content digest. Readers never observe a torn artifact:
/// they see the old file (or nothing) until the rename lands.
fn write_artifact_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<Digest> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself; failures here are not fatal (the
    // journal digest check catches a lost rename on resume).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(Digest::of(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    #[test]
    fn retry_backoff_is_reproducible_and_bounded() {
        for attempt in 1..=8u32 {
            for seed in [0u64, 7, 0xDEAD_BEEF] {
                let a = retry_backoff(seed, attempt);
                let b = retry_backoff(seed, attempt);
                assert_eq!(a, b, "same seed/attempt sleeps identically");
                // Jitter stays within [base/2, cap].
                let base = Duration::from_millis(10u64 << (attempt - 1).min(5)).min(BACKOFF_CAP);
                assert!(a >= base / 2, "attempt {attempt}: {a:?} < {:?}", base / 2);
                assert!(a <= BACKOFF_CAP, "attempt {attempt}: {a:?} over cap");
            }
        }
    }

    #[test]
    fn retry_backoff_jitter_decorrelates_buyers() {
        // Different buyer seeds must not retry in lockstep: across a
        // spread of seeds, the first-retry sleeps take several distinct
        // values (a thundering herd would share one).
        let distinct: std::collections::BTreeSet<Duration> =
            (0..32u64).map(|seed| retry_backoff(seed, 1)).collect();
        assert!(
            distinct.len() > 8,
            "expected spread-out jitter, got {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn retry_backoff_grows_with_attempts_on_average() {
        // The jittered schedule keeps the exponential envelope: the
        // mean sleep over many seeds grows until the cap bites.
        let mean = |attempt: u32| -> f64 {
            (0..64u64)
                .map(|s| retry_backoff(s, attempt).as_secs_f64())
                .sum::<f64>()
                / 64.0
        };
        assert!(mean(2) > mean(1) * 1.5);
        assert!(mean(3) > mean(2) * 1.5);
    }

    /// The Fig. 1 circuit of the paper: F = (A & B) & (C | D) — known to
    /// expose at least one fingerprint location.
    fn fig1(name: &str) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new(name, lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).expect("and2");
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).expect("or2");
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    /// A deterministic, content-sensitive emitter (the real CLI uses the
    /// Verilog writer; tests only need stable bytes).
    fn emit(n: &Netlist) -> String {
        let mut out = format!("// {}\n", n.name());
        for (_, gate) in n.gates() {
            out.push_str(gate.name());
            for &input in gate.inputs() {
                out.push(' ');
                out.push_str(n.net(input).name());
            }
            out.push('\n');
        }
        out
    }

    fn env(load: &(dyn Fn(&ManifestCircuit) -> Result<Netlist, String> + Sync)) -> CampaignEnv<'_> {
        CampaignEnv { load, emit: &emit }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("odcfp-campaign-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quiet() -> impl FnMut(&JobEvent) {
        |_| {}
    }

    fn load_fig1(c: &ManifestCircuit) -> Result<Netlist, String> {
        match &c.source {
            CircuitSource::Path(_) => Ok(fig1(&c.name)),
            CircuitSource::Probe(_) => Err("probes are not loadable".into()),
        }
    }

    const TWO_BUYERS: &str = "circuit fig1 path:fig1.v\nbuyers 2\nseed 7\nretries 0\n";

    #[test]
    fn clean_campaign_completes_all_jobs_with_artifacts() {
        let dir = tmpdir("clean");
        let m = Manifest::parse(TWO_BUYERS).expect("manifest");
        let summary =
            run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
                .expect("run");
        assert_eq!(summary.total, 2);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.executed, 2);
        assert!(summary.is_clean());
        for buyer in 0..2 {
            let artifact = dir.join(format!("{ARTIFACT_DIR}/fig1_b{buyer}.v"));
            assert!(artifact.exists(), "{artifact:?}");
        }
        // The journal replays to two Done jobs with intact artifacts.
        let state = JournalState::replay(&dir).expect("replay");
        assert_eq!(state.jobs.len(), 2);
        for (job, js) in &state.jobs {
            let JobState::Done { artifact, digest, .. } = js else {
                panic!("{job} not done: {js:?}");
            };
            assert!(artifact_intact(&dir, artifact, *digest), "{job}");
        }
    }

    #[test]
    fn interrupted_campaign_resumes_to_the_same_end_state() {
        // Reference: one uninterrupted run.
        let m = Manifest::parse(TWO_BUYERS).expect("manifest");
        let ref_dir = tmpdir("resume-ref");
        run(&m, &ref_dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("reference run");

        // Interrupted: stop after 1 job, then resume.
        let dir = tmpdir("resume-cut");
        let first = run(
            &m,
            &dir,
            &env(&load_fig1),
            &CampaignOptions {
                stop_after: Some(1),
                ..CampaignOptions::default()
            },
            &mut quiet(),
        )
        .expect("first leg");
        assert_eq!(first.executed, 1);
        assert_eq!(first.remaining, 1);

        let mut events = Vec::new();
        let second = run(
            &m,
            &dir,
            &env(&load_fig1),
            &CampaignOptions {
                resume: true,
                ..CampaignOptions::default()
            },
            &mut |e| events.push(e.clone()),
        )
        .expect("resume leg");
        assert_eq!(second.completed, 2);
        assert_eq!(second.skipped, 1, "first job must not re-execute");
        assert_eq!(second.executed, 1);
        assert!(second.is_clean());
        assert!(events.contains(&JobEvent::Skipped { job: "fig1#0".into() }));

        // Artifacts are bit-identical to the uninterrupted run's.
        for buyer in 0..2 {
            let rel = format!("{ARTIFACT_DIR}/fig1_b{buyer}.v");
            assert_eq!(
                fs::read(ref_dir.join(&rel)).expect("ref artifact"),
                fs::read(dir.join(&rel)).expect("resumed artifact"),
                "{rel}"
            );
        }
    }

    #[test]
    fn corrupted_artifact_is_detected_and_reminted_on_resume() {
        let dir = tmpdir("stale");
        let m = Manifest::parse(TWO_BUYERS).expect("manifest");
        run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        let victim = dir.join(format!("{ARTIFACT_DIR}/fig1_b1.v"));
        let original = fs::read(&victim).expect("artifact");
        fs::write(&victim, b"// tampered\n").expect("tamper");

        let mut events = Vec::new();
        let summary = run(
            &m,
            &dir,
            &env(&load_fig1),
            &CampaignOptions {
                resume: true,
                ..CampaignOptions::default()
            },
            &mut |e| events.push(e.clone()),
        )
        .expect("resume");
        assert!(events.contains(&JobEvent::StaleArtifact { job: "fig1#1".into() }));
        assert_eq!(summary.executed, 1, "only the tampered job re-runs");
        assert_eq!(summary.skipped, 1);
        assert_eq!(fs::read(&victim).expect("re-minted"), original);
    }

    #[test]
    fn poisoned_job_is_quarantined_and_neighbours_complete() {
        let dir = tmpdir("poison");
        let m = Manifest::parse(
            "circuit good1 path:a.v\ncircuit bomb probe:panic\ncircuit good2 path:b.v\nretries 1\n",
        )
        .expect("manifest");
        let mut events = Vec::new();
        let summary = run(
            &m,
            &dir,
            &env(&load_fig1),
            &CampaignOptions::default(),
            &mut |e| events.push(e.clone()),
        )
        .expect("run");
        assert_eq!(summary.completed, 2, "both good circuits finish");
        assert_eq!(summary.poisoned.len(), 1);
        let (job, diagnostic) = &summary.poisoned[0];
        assert_eq!(job, "bomb#0");
        assert!(
            diagnostic.contains("deliberate panic") && diagnostic.contains("2 attempts"),
            "{diagnostic}"
        );
        // Two attempts were made (retries 1), each journalled.
        let failures = events
            .iter()
            .filter(|e| matches!(e, JobEvent::AttemptFailed { job, .. } if job == "bomb#0"))
            .count();
        assert_eq!(failures, 2);
        assert!(!summary.is_clean());
    }

    #[test]
    fn poisoned_job_stays_quarantined_on_resume() {
        let dir = tmpdir("poison-resume");
        let m = Manifest::parse("circuit bomb probe:panic\ncircuit ok path:a.v\nretries 0\n")
            .expect("manifest");
        run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        let mut events = Vec::new();
        let resumed = run(
            &m,
            &dir,
            &env(&load_fig1),
            &CampaignOptions {
                resume: true,
                ..CampaignOptions::default()
            },
            &mut |e| events.push(e.clone()),
        )
        .expect("resume");
        assert_eq!(resumed.executed, 0, "nothing re-runs");
        assert_eq!(resumed.poisoned.len(), 1);
        assert!(events.contains(&JobEvent::SkippedPoisoned { job: "bomb#0".into() }));
    }

    #[test]
    fn spin_probe_is_stopped_by_the_job_deadline() {
        let dir = tmpdir("spin");
        let m = Manifest::parse("circuit slow probe:spin\ndeadline-ms 50\nretries 0\n")
            .expect("manifest");
        let started = Instant::now();
        let summary = run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        assert!(
            started.elapsed() < SPIN_PROBE_CAP,
            "deadline, not the hard cap, must stop the spin"
        );
        assert_eq!(summary.poisoned.len(), 1);
        assert!(
            summary.poisoned[0].1.contains("deadline exceeded"),
            "{}",
            summary.poisoned[0].1
        );
    }

    #[test]
    fn existing_journal_without_resume_is_refused() {
        let dir = tmpdir("no-clobber");
        let m = Manifest::parse(TWO_BUYERS).expect("manifest");
        run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        let e = run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect_err("must refuse");
        assert!(matches!(e, CampaignError::JournalExists(_)), "{e}");
    }

    #[test]
    fn resume_with_a_different_manifest_is_refused() {
        let dir = tmpdir("mismatch");
        let m = Manifest::parse(TWO_BUYERS).expect("manifest");
        run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        let other = Manifest::parse("circuit fig1 path:fig1.v\nbuyers 3\n").expect("manifest");
        let e = run(
            &other,
            &dir,
            &env(&load_fig1),
            &CampaignOptions {
                resume: true,
                ..CampaignOptions::default()
            },
            &mut quiet(),
        )
        .expect_err("must refuse");
        assert!(matches!(e, CampaignError::ManifestMismatch { .. }), "{e}");
    }

    #[test]
    fn failing_loader_poisons_only_its_circuit() {
        let dir = tmpdir("bad-loader");
        let m = Manifest::parse("circuit bad path:bad.v\ncircuit good path:good.v\nretries 0\n")
            .expect("manifest");
        let load = |c: &ManifestCircuit| -> Result<Netlist, String> {
            if c.name == "bad" {
                Err("synthetic parse error".into())
            } else {
                load_fig1(c)
            }
        };
        let summary = run(&m, &dir, &env(&load), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.poisoned.len(), 1);
        assert!(summary.poisoned[0].1.contains("synthetic parse error"));
    }
}
