//! The campaign manifest: a line-oriented description of *what to mint*
//! — circuits × buyers × verification policy — plus the robustness
//! budget (per-job deadline, retry count).
//!
//! ```text
//! # fleet run for tape-out 2026-08
//! circuit c432  path:bench/c432.blif
//! circuit c499  path:bench/c499.blif
//! buyers 8
//! seed 0xDAC2015
//! verify budgeted:20000
//! deadline-ms 30000
//! retries 2
//! artifacts delta
//! window 2048
//! ```
//!
//! The format is deliberately not JSON: manifests are written by hand,
//! diffed in code review, and checksummed into the journal, so a flat
//! `directive value` grammar with `#` comments beats nested syntax.
//!
//! Two `probe:` sources exist purely to drill the fault-isolation
//! machinery (see DESIGN.md §10): `probe:panic` panics inside the job,
//! `probe:spin` burns wall-clock until its deadline fires. They let a
//! deployment verify — with the real binary, in CI — that a poisoned job
//! is quarantined and its neighbours finish.

use std::time::Duration;

use odcfp_netlist::Digest;

use crate::verify::VerifyPolicy;

/// A deliberately faulty pseudo-circuit for containment self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProbe {
    /// Panics when the job runs — exercises `catch_unwind` isolation.
    Panic,
    /// Spins until the job's cancel token fires — exercises deadline
    /// enforcement. Hard-capped at 30 s so a misconfigured manifest
    /// (no `deadline-ms`) cannot hang a campaign forever.
    Spin,
}

/// Where a manifest circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// A design file on disk (`.blif` or `.v`), resolved by the caller's
    /// loader — the core crate never touches parsers.
    Path(String),
    /// A fault probe (see [`FaultProbe`]).
    Probe(FaultProbe),
}

/// One `circuit` line of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestCircuit {
    /// Unique name; becomes the first half of every job id.
    pub name: String,
    /// Where the design comes from.
    pub source: CircuitSource,
}

/// Which verification ladder each minted copy runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifySpec {
    /// Simulation rungs only ([`VerifyPolicy::quick`]).
    Quick,
    /// Full ladder with unbounded SAT ([`VerifyPolicy::strict`]).
    Strict,
    /// Budgeted ladder with the given total conflict budget
    /// ([`VerifyPolicy::budgeted`]).
    Budgeted(u64),
}

impl VerifySpec {
    /// The concrete [`VerifyPolicy`] this spec stands for.
    pub fn policy(&self) -> VerifyPolicy {
        match *self {
            VerifySpec::Quick => VerifyPolicy::quick(),
            VerifySpec::Strict => VerifyPolicy::strict(),
            VerifySpec::Budgeted(conflicts) => VerifyPolicy::budgeted(conflicts),
        }
    }
}

/// How buyer artifacts are materialized on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactMode {
    /// One full netlist file per buyer (`artifacts/{circuit}_b{n}.v`).
    #[default]
    Full,
    /// The golden netlist once plus a delta codebook
    /// (`codebook.{circuit}.jsonl`); buyer copies re-mint on demand.
    /// Near-constant bytes per buyer — the million-buyer mode.
    Delta,
}

/// A parsed, validated campaign manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The circuits to fingerprint, in manifest order.
    pub circuits: Vec<ManifestCircuit>,
    /// Copies to mint per circuit (buyer indices `0..buyers`).
    pub buyers: usize,
    /// Root seed; each buyer's bits derive deterministically from it, so
    /// a resumed campaign re-mints bit-identical copies.
    pub seed: u64,
    /// Verification ladder per copy.
    pub verify: VerifySpec,
    /// Per-job wall-clock deadline (`deadline-ms`); `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Retries after a failed attempt before the job is quarantined
    /// (total attempts = `retries + 1`).
    pub retries: u32,
    /// How buyer artifacts are materialized (`artifacts full|delta`).
    pub artifact_mode: ArtifactMode,
    /// Buyers per durability window in delta mode (`window N`): the
    /// codebook is fsynced and the journal advanced once per window.
    pub window: usize,
    digest: Digest,
}

/// One expanded job: a (circuit, buyer) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable journal id, `"{circuit}#{buyer}"`.
    pub id: String,
    /// Index into [`Manifest::circuits`].
    pub circuit: usize,
    /// Buyer index in `0..buyers`.
    pub buyer: usize,
}

/// A manifest syntax or validation error, with its 1-based line number
/// (0 for whole-file problems).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line the problem was found on; 0 = whole file.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal integer.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

impl Manifest {
    /// Parses and validates manifest text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or validation problem, with its line
    /// number.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut circuits: Vec<ManifestCircuit> = Vec::new();
        let mut buyers = 1usize;
        let mut seed = 1u64;
        let mut verify = VerifySpec::Quick;
        let mut deadline = None;
        let mut retries = 2u32;
        let mut artifact_mode = ArtifactMode::Full;
        let mut window = 1024usize;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            let one = |what: &str| -> Result<&str, ManifestError> {
                match rest.as_slice() {
                    [v] => Ok(v),
                    _ => Err(err(lineno, format!("`{directive}` takes exactly one {what}"))),
                }
            };
            match directive {
                "circuit" => {
                    let [name, source] = rest.as_slice() else {
                        return Err(err(lineno, "`circuit` takes a name and a source"));
                    };
                    if !is_valid_name(name) {
                        return Err(err(
                            lineno,
                            format!(
                                "circuit name {name:?} must be [A-Za-z0-9._-]+ \
                                 (it becomes part of journal job ids)"
                            ),
                        ));
                    }
                    if circuits.iter().any(|c| c.name == *name) {
                        return Err(err(lineno, format!("duplicate circuit name {name:?}")));
                    }
                    let source = if let Some(path) = source.strip_prefix("path:") {
                        if path.is_empty() {
                            return Err(err(lineno, "empty `path:` source"));
                        }
                        CircuitSource::Path(path.to_owned())
                    } else if let Some(probe) = source.strip_prefix("probe:") {
                        match probe {
                            "panic" => CircuitSource::Probe(FaultProbe::Panic),
                            "spin" => CircuitSource::Probe(FaultProbe::Spin),
                            other => {
                                return Err(err(
                                    lineno,
                                    format!("unknown probe {other:?} (expected panic or spin)"),
                                ))
                            }
                        }
                    } else {
                        return Err(err(
                            lineno,
                            format!("source {source:?} must start with `path:` or `probe:`"),
                        ));
                    };
                    circuits.push(ManifestCircuit {
                        name: (*name).to_owned(),
                        source,
                    });
                }
                "buyers" => {
                    buyers = parse_u64(one("count")?)
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| err(lineno, "`buyers` needs a positive integer"))?
                        as usize;
                }
                "seed" => {
                    seed = parse_u64(one("value")?)
                        .ok_or_else(|| err(lineno, "`seed` needs an integer"))?;
                }
                "verify" => {
                    verify = match one("mode")? {
                        "quick" => VerifySpec::Quick,
                        "strict" => VerifySpec::Strict,
                        mode => match mode.strip_prefix("budgeted:").and_then(parse_u64) {
                            Some(conflicts) => VerifySpec::Budgeted(conflicts),
                            None => {
                                return Err(err(
                                    lineno,
                                    format!(
                                        "unknown verify mode {mode:?} \
                                         (expected quick, strict, or budgeted:<conflicts>)"
                                    ),
                                ))
                            }
                        },
                    };
                }
                "deadline-ms" => {
                    deadline = Some(Duration::from_millis(
                        parse_u64(one("milliseconds")?)
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err(lineno, "`deadline-ms` needs a positive integer"))?,
                    ));
                }
                "retries" => {
                    retries = parse_u64(one("count")?)
                        .filter(|&n| n <= 100)
                        .ok_or_else(|| err(lineno, "`retries` needs an integer in 0..=100"))?
                        as u32;
                }
                "artifacts" => {
                    artifact_mode = match one("mode")? {
                        "full" => ArtifactMode::Full,
                        "delta" => ArtifactMode::Delta,
                        mode => {
                            return Err(err(
                                lineno,
                                format!("unknown artifact mode {mode:?} (expected full or delta)"),
                            ))
                        }
                    };
                }
                "window" => {
                    window = parse_u64(one("count")?)
                        .filter(|&n| (1..=1 << 20).contains(&n))
                        .ok_or_else(|| {
                            err(lineno, "`window` needs an integer in 1..=1048576")
                        })? as usize;
                }
                other => {
                    return Err(err(lineno, format!("unknown directive {other:?}")));
                }
            }
        }

        if circuits.is_empty() {
            return Err(err(0, "no `circuit` lines — nothing to do"));
        }

        Ok(Manifest {
            circuits,
            buyers,
            seed,
            verify,
            deadline,
            retries,
            artifact_mode,
            window,
            digest: Digest::of(text.as_bytes()),
        })
    }

    /// Digest of the manifest source text; journalled so a resume cannot
    /// silently mix two different job lists in one output directory.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// Expands the manifest into its job list: circuits × buyers, in
    /// deterministic (circuit-major) order.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.circuits.len() * self.buyers);
        for (ci, circuit) in self.circuits.iter().enumerate() {
            for buyer in 0..self.buyers {
                jobs.push(JobSpec {
                    id: format!("{}#{buyer}", circuit.name),
                    circuit: ci,
                    buyer,
                });
            }
        }
        jobs
    }

    /// The per-buyer fingerprint seed: a fixed mix of the root seed and
    /// the buyer index, so bits are reproducible on resume and distinct
    /// across buyers.
    pub fn buyer_seed(&self, buyer: usize) -> u64 {
        self.seed ^ (buyer as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
# a comment\n\
circuit c17 path:bench/c17.blif   # trailing comment\n\
circuit bomb probe:panic\n\
circuit slow probe:spin\n\
buyers 3\n\
seed 0xDAC2015\n\
verify budgeted:5000\n\
deadline-ms 2500\n\
retries 1\n\
artifacts delta\n\
window 512\n";

    #[test]
    fn full_manifest_parses() {
        let m = Manifest::parse(FULL).expect("parse");
        assert_eq!(m.circuits.len(), 3);
        assert_eq!(
            m.circuits[0].source,
            CircuitSource::Path("bench/c17.blif".into())
        );
        assert_eq!(
            m.circuits[1].source,
            CircuitSource::Probe(FaultProbe::Panic)
        );
        assert_eq!(m.circuits[2].source, CircuitSource::Probe(FaultProbe::Spin));
        assert_eq!(m.buyers, 3);
        assert_eq!(m.seed, 0xDAC2015);
        assert_eq!(m.verify, VerifySpec::Budgeted(5000));
        assert_eq!(m.deadline, Some(Duration::from_millis(2500)));
        assert_eq!(m.retries, 1);
        assert_eq!(m.artifact_mode, ArtifactMode::Delta);
        assert_eq!(m.window, 512);
    }

    #[test]
    fn defaults_are_sensible() {
        let m = Manifest::parse("circuit a path:a.v\n").expect("parse");
        assert_eq!(m.buyers, 1);
        assert_eq!(m.verify, VerifySpec::Quick);
        assert_eq!(m.deadline, None);
        assert_eq!(m.retries, 2);
        assert_eq!(m.artifact_mode, ArtifactMode::Full);
        assert_eq!(m.window, 1024);
    }

    #[test]
    fn jobs_expand_circuit_major_with_stable_ids() {
        let m = Manifest::parse("circuit a path:a.v\ncircuit b path:b.v\nbuyers 2\n")
            .expect("parse");
        let ids: Vec<String> = m.jobs().into_iter().map(|j| j.id).collect();
        assert_eq!(ids, ["a#0", "a#1", "b#0", "b#1"]);
    }

    #[test]
    fn buyer_seeds_are_distinct_and_deterministic() {
        let m = Manifest::parse("circuit a path:a.v\nbuyers 4\n").expect("parse");
        let seeds: Vec<u64> = (0..4).map(|b| m.buyer_seed(b)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(seeds, (0..4).map(|b| m.buyer_seed(b)).collect::<Vec<_>>());
    }

    #[test]
    fn digest_tracks_source_text() {
        let a = Manifest::parse("circuit a path:a.v\n").expect("parse");
        let b = Manifest::parse("circuit a path:a.v\nbuyers 2\n").expect("parse");
        assert_ne!(a.digest(), b.digest());
        assert_eq!(
            a.digest(),
            Manifest::parse("circuit a path:a.v\n").expect("parse").digest()
        );
    }

    #[test]
    fn rejections_carry_line_numbers() {
        for (text, needle, line) in [
            ("circuit\n", "takes a name and a source", 1),
            ("circuit a b\n", "must start with", 1),
            ("circuit a probe:oops\n", "unknown probe", 1),
            ("circuit a/b path:x.v\n", "must be", 1),
            ("circuit a path:x.v\ncircuit a path:y.v\n", "duplicate", 2),
            ("circuit a path:x.v\nbuyers 0\n", "positive integer", 2),
            ("circuit a path:x.v\nverify turbo\n", "unknown verify mode", 2),
            ("circuit a path:x.v\nartifacts sparse\n", "unknown artifact mode", 2),
            ("circuit a path:x.v\nwindow 0\n", "1..=1048576", 2),
            ("circuit a path:x.v\nwat 3\n", "unknown directive", 2),
            ("circuit a path:\n", "empty `path:`", 1),
            ("", "no `circuit` lines", 0),
        ] {
            let e = Manifest::parse(text).expect_err(text);
            assert!(e.message.contains(needle), "{text:?} -> {e}");
            assert_eq!(e.line, line, "{text:?}");
        }
    }
}
