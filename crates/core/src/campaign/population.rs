//! The delta-mode campaign runner: windows of buyers against one golden
//! artifact and one code-space proof per circuit.
//!
//! Full mode journals two fsynced records and writes one netlist file
//! *per buyer* — correct, but at a million buyers that is two million
//! fsyncs and ~100 GB of near-identical Verilog. Delta mode restructures
//! the buyer dimension (DESIGN.md §14):
//!
//! * the golden netlist is written **once** per circuit, journalled with
//!   a 128-bit identity digest;
//! * buyers are minted in **windows** (`window N`, default 1024): one
//!   write-ahead `bstart` record, then one buffered codebook append per
//!   buyer, then one codebook fsync and one `bdone` record carrying the
//!   window's verdict histogram and the durable codebook byte offset.
//!   Journal traffic and fsync count drop from `O(buyers)` to
//!   `O(buyers / window)`;
//! * verification is hoisted out of the buyer loop entirely when the
//!   one-shot code-space proof lands ([`CodeSpace::prove`]): every
//!   buyer's verdict is `proven` by the same UNSAT certificate. If the
//!   proof is unavailable (entangled locations, refuted superposition,
//!   budget exhausted), every buyer falls back to the existing per-buyer
//!   session path, so verdicts never silently weaken.
//!
//! Crash recovery keeps the full-mode guarantees: a SIGKILL mid-window
//! leaves codebook bytes past the last journalled offset, which
//! [`CodebookWriter::open`] truncates on resume; the window re-mints
//! from the `done` watermark and — buyer bits being a pure function of
//! `seed ⊕ buyer` — converges to the byte-identical codebook an
//! uninterrupted run writes.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use odcfp_analysis::cancel::CancelToken;
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::Digest128;

use crate::codebook::{artifact_identity, pack_bits, CodeSpace, CodebookRecord, CodebookWriter};
use crate::verify::{CodeSpaceOutcome, CodeSpaceProof, Verdict, VerifySession};
use crate::Fingerprinter;

use super::journal::render_histogram;
use super::{
    io_err, panic_text, retry_backoff, verdict_name, write_artifact_atomic, CampaignEnv,
    CampaignError, CampaignOptions, CampaignSummary, CircuitSource, JobEvent, JobState, Journal,
    JournalState, Manifest, ManifestCircuit, Record, VerifySpec, ARTIFACT_DIR,
};

/// Conflict budget for the code-space proof under `verify quick`: quick
/// campaigns skip per-buyer SAT, but the *one* solve that upgrades every
/// buyer to `proven` is worth a real budget — it amortizes over the
/// whole population.
const QUICK_CODESPACE_BUDGET: u64 = 2_000_000;

/// Per-circuit reusable state: the fingerprinter, the verify session the
/// code-space proof lives in, and the proof itself. Held in a
/// [`CampaignCache`] so chunked invocations (the server's drain-aware
/// legs) pay for location analysis and the proof once, not per leg.
struct CircuitCache {
    fp: Arc<Fingerprinter>,
    session: Option<VerifySession>,
    /// `Some` once the proof attempt ran (even if it fell back).
    proof: Option<CodeSpaceProof>,
    proof_attempted: bool,
    golden_digest: Digest128,
}

/// Reusable cross-invocation campaign state, keyed by circuit name.
///
/// [`super::run`] builds a private one per call; [`super::run_cached`]
/// lets a resident caller keep it across legs of the same campaign.
/// Holding it is purely a performance contract — every verdict and
/// artifact byte is identical with a cold cache.
#[derive(Default)]
pub struct CampaignCache {
    circuits: std::collections::HashMap<String, CircuitCache>,
}

impl CampaignCache {
    /// Drops cached state for circuits not named by `manifest` (a
    /// resident server reuses one cache across campaigns).
    pub fn retain_manifest(&mut self, manifest: &Manifest) {
        self.circuits
            .retain(|name, _| manifest.circuits.iter().any(|c| &c.name == name));
    }
}

/// Deterministic buyer bits — must mint exactly what full mode's
/// `attempt_job` mints, so the two artifact modes are interchangeable.
fn mint_bits(manifest: &Manifest, locations: usize, buyer: u64) -> Vec<bool> {
    let mut rng = Xoshiro256::seed_from_u64(manifest.buyer_seed(buyer as usize));
    (0..locations).map(|_| rng.next_bool()).collect()
}

/// Runs the delta leg for every `path:` circuit in the manifest (probe
/// circuits go through the per-job loop in `run_cached`, keeping the
/// fault battery's semantics identical across artifact modes).
#[allow(clippy::too_many_arguments)]
pub(super) fn run_delta(
    manifest: &Manifest,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    options: &CampaignOptions,
    cache: &mut CampaignCache,
    state: &JournalState,
    journal: &mut Journal,
    summary: &mut CampaignSummary,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<(), CampaignError> {
    for circuit in &manifest.circuits {
        if !matches!(circuit.source, CircuitSource::Path(_)) {
            continue;
        }
        delta_circuit(
            manifest, circuit, out_dir, env, options, cache, state, journal, summary, on_event,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn delta_circuit(
    manifest: &Manifest,
    circuit: &ManifestCircuit,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    options: &CampaignOptions,
    cache: &mut CampaignCache,
    state: &JournalState,
    journal: &mut Journal,
    summary: &mut CampaignSummary,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<(), CampaignError> {
    let name = &circuit.name;
    let total = manifest.buyers as u64;

    // --- Resume accounting -------------------------------------------------
    // The batch watermark says how many buyers are durably in the
    // codebook; their verdict histogram rides in the folded `bdone`
    // records. Individual poisoned buyers (fallback-mode failures) are
    // the only per-job journal entries delta mode writes.
    let batch = state.batches.get(name).cloned().unwrap_or_default();
    let mut done = batch.done;
    let setup_sentinel = format!("{name}#*");
    for (job, js) in state.jobs.range(format!("{name}#")..format!("{name}#\u{10FFFF}")) {
        if let JobState::Poisoned { diagnostic } = js {
            summary.poisoned.push((job.clone(), diagnostic.clone()));
            if job == &setup_sentinel {
                // Circuit-level quarantine (loader/analysis failure)
                // stays quarantined, exactly like a poisoned full-mode
                // job.
                on_event(&JobEvent::SkippedPoisoned { job: job.clone() });
                return Ok(());
            }
        }
    }
    let resumed_completed: u64 = batch.verdicts.values().sum();
    summary.skipped += resumed_completed as usize;
    summary.completed += resumed_completed as usize;
    for (v, n) in &batch.verdicts {
        *summary.verdicts.entry(v.clone()).or_insert(0) += *n as usize;
    }
    if done >= total {
        return Ok(());
    }
    if options
        .stop_after
        .is_some_and(|cap| summary.executed >= cap)
    {
        summary.remaining += (total - done) as usize;
        return Ok(());
    }

    // --- Setup: fingerprinter, golden artifact, code-space proof ----------
    // One retried, unwind-guarded block: a panicking loader or analysis
    // quarantines this circuit (journalled under the `{name}#*`
    // sentinel), never the campaign.
    let attempts = manifest.retries + 1;
    let mut last_error = String::new();
    let mut ready = false;
    for attempt in 1..=attempts {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            setup_circuit(manifest, circuit, out_dir, env, cache, state, journal, on_event)
        }))
        .unwrap_or_else(|payload| Err(SetupFailure::Attempt(panic_text(payload))));
        match outcome {
            Ok(()) => {
                ready = true;
                break;
            }
            Err(SetupFailure::Journal(e)) => return Err(e),
            Err(SetupFailure::Attempt(error)) => {
                odcfp_obs::point("campaign.attempt.failed")
                    .field("job", setup_sentinel.as_str())
                    .field("attempt", u64::from(attempt))
                    .field("error", error.as_str())
                    .emit();
                on_event(&JobEvent::AttemptFailed {
                    job: setup_sentinel.clone(),
                    attempt,
                    error: error.clone(),
                });
                last_error = error;
                cache.circuits.remove(name);
                if attempt < attempts {
                    std::thread::sleep(retry_backoff(manifest.seed, attempt));
                }
            }
        }
    }
    if !ready {
        let diagnostic = format!("{last_error} (after {attempts} attempts)");
        journal
            .append(&Record::JobPoisoned {
                job: setup_sentinel.clone(),
                attempts,
                diagnostic: diagnostic.clone(),
            })
            .map_err(io_err("journalling circuit quarantine"))?;
        odcfp_obs::point("campaign.quarantine")
            .field("job", setup_sentinel.as_str())
            .field("attempts", u64::from(attempts))
            .field("diagnostic", diagnostic.as_str())
            .emit();
        summary.poisoned.push((setup_sentinel.clone(), diagnostic.clone()));
        on_event(&JobEvent::Poisoned {
            job: setup_sentinel,
            diagnostic,
        });
        return Ok(());
    }

    let entry = cache.circuits.get_mut(name).expect("setup populated cache");
    let fp = Arc::clone(&entry.fp);
    let golden_digest = entry.golden_digest;
    let locations = fp.locations().len();
    let proven_all = entry
        .proof
        .as_ref()
        .is_some_and(|p| p.outcome == CodeSpaceOutcome::ProvenAll);
    let policy = manifest.verify.policy();

    // --- Window loop -------------------------------------------------------
    let mut writer = CodebookWriter::open(out_dir, name, batch.offset)
        .map_err(io_err(format!("opening codebook for {name:?}")))?;
    if writer.offset() == 0 {
        writer
            .append(&CodebookRecord::Golden {
                circuit: name.clone(),
                locations: locations as u64,
                seed: manifest.seed,
                artifact: format!("{ARTIFACT_DIR}/{name}.golden.v"),
                digest: golden_digest,
            })
            .map_err(io_err("writing codebook header"))?;
    }

    while done < total {
        let to = (done + manifest.window as u64).min(total);
        journal
            .append(&Record::BatchStart {
                circuit: name.clone(),
                from: done,
                to,
                offset: writer.offset(),
            })
            .map_err(io_err("journalling window start"))?;

        let mut window_hist: BTreeMap<String, u64> = BTreeMap::new();
        for buyer in done..to {
            let bits = mint_bits(manifest, locations, buyer);
            let verdict = if proven_all {
                // The free-selector UNSAT already covered this code.
                Some(Verdict::Proven)
            } else {
                fallback_buyer(
                    manifest, name, buyer, &fp, cache, &policy, journal, summary, on_event,
                )?
            };
            let Some(verdict) = verdict else { continue };
            let vname = verdict_name(&verdict);
            writer
                .append(&CodebookRecord::Code {
                    buyer,
                    bits: pack_bits(&bits),
                    verdict: vname.to_owned(),
                    digest: artifact_identity(golden_digest, &bits),
                })
                .map_err(io_err("appending codebook record"))?;
            *window_hist.entry(vname.to_owned()).or_insert(0) += 1;
        }

        let offset = writer.sync().map_err(io_err("syncing codebook"))?;
        journal
            .append(&Record::BatchDone {
                circuit: name.clone(),
                from: done,
                to,
                offset,
                verdicts: render_histogram(&window_hist),
            })
            .map_err(io_err("journalling window completion"))?;

        let minted: u64 = window_hist.values().sum();
        summary.executed += (to - done) as usize;
        summary.completed += minted as usize;
        for (v, n) in &window_hist {
            *summary.verdicts.entry(v.clone()).or_insert(0) += *n as usize;
        }
        odcfp_obs::point("campaign.progress")
            .field("circuit", name.as_str())
            .field("done", to)
            .field("total", total)
            .field("offset", offset)
            .emit();
        on_event(&JobEvent::WindowCompleted {
            circuit: name.clone(),
            from: done,
            to,
        });
        done = to;

        if done < total
            && options
                .stop_after
                .is_some_and(|cap| summary.executed >= cap)
        {
            summary.remaining += (total - done) as usize;
            return Ok(());
        }
    }
    Ok(())
}

/// How circuit setup failed: a retryable attempt problem, or a journal
/// I/O error that must abort the campaign.
enum SetupFailure {
    Attempt(String),
    Journal(CampaignError),
}

/// Loads the circuit, writes the golden artifact, and attempts the
/// code-space proof, populating the cache. Runs inside the unwind
/// boundary.
#[allow(clippy::too_many_arguments)]
fn setup_circuit(
    manifest: &Manifest,
    circuit: &ManifestCircuit,
    out_dir: &Path,
    env: &CampaignEnv<'_>,
    cache: &mut CampaignCache,
    state: &JournalState,
    journal: &mut Journal,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<(), SetupFailure> {
    let name = &circuit.name;
    let attempt_err = |e: String| SetupFailure::Attempt(e);

    if !cache.circuits.contains_key(name) {
        let netlist = (env.load)(circuit)
            .map_err(|e| attempt_err(format!("loading circuit {name:?}: {e}")))?;
        let fp = Arc::new(
            Fingerprinter::new(netlist)
                .map_err(|e| attempt_err(format!("analysing circuit {name:?}: {e}")))?,
        );
        let golden_text = (env.emit)(fp.base());
        let golden_digest = Digest128::of(golden_text.as_bytes());
        let golden_rel = format!("{ARTIFACT_DIR}/{name}.golden.v");
        let journalled = state.golden.get(name);
        let on_disk_intact = journalled.is_some_and(|g| {
            g.digest == golden_digest
                && std::fs::read(out_dir.join(&g.artifact))
                    .is_ok_and(|bytes| Digest128::of(&bytes) == golden_digest)
        });
        if !on_disk_intact {
            write_artifact_atomic(&out_dir.join(&golden_rel), golden_text.as_bytes())
                .map_err(|e| attempt_err(format!("writing golden artifact: {e}")))?;
            journal
                .append(&Record::Golden {
                    circuit: name.clone(),
                    artifact: golden_rel.clone(),
                    digest: golden_digest,
                    locations: fp.locations().len() as u64,
                })
                .map_err(|e| {
                    SetupFailure::Journal(CampaignError::Io {
                        context: "journalling golden artifact".into(),
                        source: e,
                    })
                })?;
        }
        odcfp_obs::point("campaign.golden")
            .field("circuit", name.as_str())
            .field("locations", fp.locations().len())
            .emit();
        on_event(&JobEvent::GoldenMinted {
            circuit: name.clone(),
            locations: fp.locations().len() as u64,
        });
        cache.circuits.insert(
            name.clone(),
            CircuitCache {
                fp,
                session: None,
                proof: None,
                proof_attempted: false,
                golden_digest,
            },
        );
    }

    let entry = cache.circuits.get_mut(name).expect("just inserted");
    if entry.session.is_none() {
        entry.session = Some(
            VerifySession::new(entry.fp.base())
                .map_err(|e| attempt_err(format!("building verify session: {e}")))?,
        );
        // The proof handle lives inside the session's shared miter; a
        // rebuilt session invalidates any previous proof.
        entry.proof = None;
        entry.proof_attempted = false;
    }
    if !entry.proof_attempted {
        entry.proof_attempted = true;
        let budget = match manifest.verify {
            VerifySpec::Strict => None,
            VerifySpec::Budgeted(conflicts) => Some(conflicts),
            VerifySpec::Quick => Some(QUICK_CODESPACE_BUDGET),
        };
        let token = match manifest.deadline {
            Some(limit) => CancelToken::with_timeout(limit),
            None => CancelToken::new(),
        };
        let started = Instant::now();
        let fp = Arc::clone(&entry.fp);
        let session = entry.session.as_mut().expect("session built above");
        match CodeSpace::build(&fp).and_then(|space| space.prove(session, budget, &token)) {
            Ok(proof) => {
                match &proof.outcome {
                    CodeSpaceOutcome::ProvenAll => {
                        on_event(&JobEvent::CodeSpaceProven {
                            circuit: name.clone(),
                            conflicts: proof.conflicts,
                            millis: started.elapsed().as_millis() as u64,
                        });
                    }
                    other => {
                        on_event(&JobEvent::CodeSpaceFallback {
                            circuit: name.clone(),
                            reason: other.name().to_owned(),
                        });
                    }
                }
                entry.proof = Some(proof);
            }
            Err(e) => {
                // Not an attempt failure: an unprovable code space
                // (entangled locations, odd cell mix) is a legitimate
                // circuit property; buyers verify individually.
                on_event(&JobEvent::CodeSpaceFallback {
                    circuit: name.clone(),
                    reason: e.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Verifies one buyer through the per-buyer session path — the verdict
/// oracle delta mode falls back to when no code-space proof is
/// available. Returns `None` when the buyer is poisoned (journalled and
/// reported, campaign continues).
#[allow(clippy::too_many_arguments)]
fn fallback_buyer(
    manifest: &Manifest,
    name: &str,
    buyer: u64,
    fp: &Arc<Fingerprinter>,
    cache: &mut CampaignCache,
    policy: &crate::verify::VerifyPolicy,
    journal: &mut Journal,
    summary: &mut CampaignSummary,
    on_event: &mut dyn FnMut(&JobEvent),
) -> Result<Option<Verdict>, CampaignError> {
    let job = format!("{name}#{buyer}");
    let attempts = manifest.retries + 1;
    let mut last_error = String::new();
    for attempt in 1..=attempts {
        let token = match manifest.deadline {
            Some(limit) => CancelToken::with_timeout(limit),
            None => CancelToken::new(),
        };
        let entry = cache.circuits.get_mut(name).expect("cached circuit");
        if entry.session.is_none() {
            match VerifySession::new(entry.fp.base()) {
                Ok(s) => entry.session = Some(s),
                Err(e) => {
                    last_error = format!("rebuilding verify session: {e}");
                    continue;
                }
            }
        }
        let session = entry.session.as_mut().expect("session present");
        let bits = mint_bits(manifest, fp.locations().len(), buyer);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fp.embed_with_session_cancellable(session, &bits, policy, &token)
                .map_err(|e| format!("embedding: {e}"))
                .and_then(|(_, verdict)| {
                    if matches!(verdict, Verdict::Refuted { .. }) {
                        Err("verification REFUTED the minted copy — embedding produced a \
                             non-equivalent netlist"
                            .to_owned())
                    } else if token.is_cancelled() {
                        Err("deadline exceeded during embed/verify".to_owned())
                    } else {
                        Ok(verdict)
                    }
                })
        }))
        .unwrap_or_else(|payload| Err(format!("panicked: {}", panic_text(payload))));
        match outcome {
            Ok(verdict) => return Ok(Some(verdict)),
            Err(error) => {
                // The session may be mid-query after a panic or
                // deadline; rebuild next attempt.
                cache.circuits.get_mut(name).expect("cached").session = None;
                odcfp_obs::point("campaign.attempt.failed")
                    .field("job", job.as_str())
                    .field("attempt", u64::from(attempt))
                    .field("error", error.as_str())
                    .emit();
                on_event(&JobEvent::AttemptFailed {
                    job: job.clone(),
                    attempt,
                    error: error.clone(),
                });
                last_error = error;
                if attempt < attempts {
                    std::thread::sleep(retry_backoff(
                        manifest.buyer_seed(buyer as usize),
                        attempt,
                    ));
                }
            }
        }
    }
    let diagnostic = format!("{last_error} (after {attempts} attempts)");
    journal
        .append(&Record::JobPoisoned {
            job: job.clone(),
            attempts,
            diagnostic: diagnostic.clone(),
        })
        .map_err(io_err("journalling quarantine"))?;
    odcfp_obs::point("campaign.quarantine")
        .field("job", job.as_str())
        .field("attempts", u64::from(attempts))
        .field("diagnostic", diagnostic.as_str())
        .emit();
    summary.poisoned.push((job.clone(), diagnostic.clone()));
    on_event(&JobEvent::Poisoned { job, diagnostic });
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::super::{run, CampaignOptions};
    use super::*;
    use crate::codebook::{codebook_file, unpack_bits, CodebookReader};
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::{CellLibrary, Netlist};
    use std::fs;
    use std::path::PathBuf;

    fn fig1(name: &str) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new(name, lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).expect("and2");
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).expect("or2");
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    fn emit(n: &Netlist) -> String {
        let mut out = format!("// {}\n", n.name());
        for (_, gate) in n.gates() {
            out.push_str(gate.name());
            for &input in gate.inputs() {
                out.push(' ');
                out.push_str(n.net(input).name());
            }
            out.push('\n');
        }
        out
    }

    fn load_fig1(c: &ManifestCircuit) -> Result<Netlist, String> {
        match &c.source {
            CircuitSource::Path(_) => Ok(fig1(&c.name)),
            CircuitSource::Probe(_) => Err("probes are not loadable".into()),
        }
    }

    fn env(load: &(dyn Fn(&ManifestCircuit) -> Result<Netlist, String> + Sync)) -> CampaignEnv<'_> {
        CampaignEnv { load, emit: &emit }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("odcfp-population-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quiet() -> impl FnMut(&JobEvent) {
        |_| {}
    }

    const DELTA: &str =
        "circuit fig1 path:fig1.v\nbuyers 8\nseed 7\nretries 0\nverify strict\n\
         artifacts delta\nwindow 3\n";
    const FULL: &str = "circuit fig1 path:fig1.v\nbuyers 8\nseed 7\nretries 0\nverify strict\n";

    /// Reads the codebook back: (golden record, codes by buyer).
    fn read_codebook(dir: &Path, circuit: &str) -> (CodebookRecord, Vec<CodebookRecord>) {
        let mut r = CodebookReader::open(&dir.join(codebook_file(circuit))).expect("open");
        let golden = r.next_record().expect("io").expect("golden header");
        assert!(matches!(golden, CodebookRecord::Golden { .. }));
        let mut codes = Vec::new();
        while let Some(rec) = r.next_record().expect("io") {
            codes.push(rec);
        }
        assert_eq!(r.discarded(), 0, "durable codebook has no torn lines");
        (golden, codes)
    }

    #[test]
    fn delta_campaign_expands_bit_identically_to_full_artifacts() {
        // Full-mode reference artifacts.
        let full_dir = tmpdir("expand-full");
        let mf = Manifest::parse(FULL).expect("manifest");
        run(&mf, &full_dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("full run");

        // Delta campaign over the same circuits/seed.
        let dir = tmpdir("expand-delta");
        let md = Manifest::parse(DELTA).expect("manifest");
        let summary =
            run(&md, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
                .expect("delta run");
        assert_eq!(summary.completed, 8);
        assert!(summary.is_clean());
        assert_eq!(summary.verdicts.get("proven"), Some(&8));

        // Golden artifact on disk matches its journalled digest.
        let golden_text = fs::read(dir.join(format!("{ARTIFACT_DIR}/fig1.golden.v")))
            .expect("golden artifact");
        let (golden, codes) = read_codebook(&dir, "fig1");
        let CodebookRecord::Golden { digest: gd, locations, .. } = golden else {
            unreachable!()
        };
        assert_eq!(Digest128::of(&golden_text), gd);
        assert_eq!(codes.len(), 8);

        // Each code re-mints, through the public embed path, the exact
        // bytes full mode wrote for that buyer.
        let fp = Fingerprinter::new(fig1("fig1")).expect("fingerprinter");
        assert_eq!(fp.locations().len() as u64, locations);
        for (i, code) in codes.iter().enumerate() {
            let CodebookRecord::Code { buyer, bits, verdict, digest } = code else {
                panic!("non-code record {code:?}")
            };
            assert_eq!(*buyer, i as u64);
            assert_eq!(verdict, "proven");
            let bits = unpack_bits(bits, fp.locations().len()).expect("bits");
            assert_eq!(bits, mint_bits(&md, fp.locations().len(), *buyer));
            assert_eq!(*digest, artifact_identity(gd, &bits));
            let expanded = emit(fp.embed(&bits).expect("embed").netlist());
            let full = fs::read_to_string(
                full_dir.join(format!("{ARTIFACT_DIR}/fig1_b{buyer}.v")),
            )
            .expect("full artifact");
            assert_eq!(expanded, full, "buyer {buyer}");
        }
    }

    #[test]
    fn interrupted_delta_campaign_resumes_to_byte_identical_codebook() {
        let md = Manifest::parse(DELTA).expect("manifest");
        let ref_dir = tmpdir("resume-ref");
        run(&md, &ref_dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
            .expect("reference");

        let dir = tmpdir("resume-cut");
        let first = run(
            &md,
            &dir,
            &env(&load_fig1),
            &CampaignOptions { stop_after: Some(1), ..CampaignOptions::default() },
            &mut quiet(),
        )
        .expect("first leg");
        assert_eq!(first.executed, 3, "one window of 3 buyers");
        assert_eq!(first.remaining, 5);

        // Simulate a crash mid-window: stray bytes past the durable
        // offset, as a SIGKILLed writer leaves behind.
        let cb = dir.join(codebook_file("fig1"));
        let mut torn = fs::read(&cb).expect("codebook");
        torn.extend_from_slice(b"{\"crc\":\"0000");
        fs::write(&cb, &torn).expect("tear");

        let mut events = Vec::new();
        let second = run(
            &md,
            &dir,
            &env(&load_fig1),
            &CampaignOptions { resume: true, ..CampaignOptions::default() },
            &mut |e| events.push(e.clone()),
        )
        .expect("resume leg");
        assert_eq!(second.completed, 8);
        assert_eq!(second.skipped, 3);
        assert_eq!(second.executed, 5);
        assert!(second.is_clean());
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::WindowCompleted { from: 3, .. })));

        // Byte-identical to the uninterrupted run: codebook and golden.
        assert_eq!(
            fs::read(&cb).expect("resumed"),
            fs::read(ref_dir.join(codebook_file("fig1"))).expect("reference"),
        );
        assert_eq!(
            fs::read(dir.join(format!("{ARTIFACT_DIR}/fig1.golden.v"))).expect("golden"),
            fs::read(ref_dir.join(format!("{ARTIFACT_DIR}/fig1.golden.v"))).expect("golden"),
        );
    }

    #[test]
    fn delta_campaign_quarantines_probes_like_full_mode() {
        let dir = tmpdir("probes");
        let m = Manifest::parse(
            "circuit fig1 path:fig1.v\ncircuit bomb probe:panic\nbuyers 2\nseed 7\n\
             retries 0\nartifacts delta\n",
        )
        .expect("manifest");
        let summary =
            run(&m, &dir, &env(&load_fig1), &CampaignOptions::default(), &mut quiet())
                .expect("run");
        assert_eq!(summary.completed, 2, "fig1 buyers complete");
        assert_eq!(summary.poisoned.len(), 2, "both bomb jobs quarantined");
        assert!(summary.poisoned.iter().all(|(j, _)| j.starts_with("bomb#")));
    }

    #[test]
    fn failing_loader_quarantines_circuit_and_stays_quarantined() {
        let dir = tmpdir("bad-loader");
        let m = Manifest::parse(
            "circuit bad path:bad.v\ncircuit good path:good.v\nbuyers 4\nseed 7\n\
             retries 0\nartifacts delta\nwindow 2\n",
        )
        .expect("manifest");
        let load = |c: &ManifestCircuit| -> Result<Netlist, String> {
            if c.name == "bad" {
                Err("synthetic parse error".into())
            } else {
                load_fig1(c)
            }
        };
        let summary = run(&m, &dir, &env(&load), &CampaignOptions::default(), &mut quiet())
            .expect("run");
        assert_eq!(summary.completed, 4, "good circuit unaffected");
        assert_eq!(summary.poisoned.len(), 1);
        assert_eq!(summary.poisoned[0].0, "bad#*");
        assert!(summary.poisoned[0].1.contains("synthetic parse error"));

        // Resume: the quarantine holds without re-running setup.
        let resumed = run(
            &m,
            &dir,
            &env(&load),
            &CampaignOptions { resume: true, ..CampaignOptions::default() },
            &mut quiet(),
        )
        .expect("resume");
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.poisoned.len(), 1);
    }
}
