//! Incremental location analysis across embedding steps.
//!
//! Re-running [`find_locations`](crate::find_locations) after every wiring
//! step re-probes the whole netlist, although one modification can only
//! change the answer inside a bounded *dirty region*. This module tracks
//! that region:
//!
//! * **Changed set `C`** of a modification: the widened target gate, the
//!   gate drivers of every added net (their fanout counts grew), and any
//!   freshly minted inverter gates.
//! * **Invalidation rule**: a gate's location entry can only change if the
//!   gate lies in the transitive fanout of `C`. Every ingredient of a
//!   probe — pin drivers, `feeds_only` fanout counts, FFC membership
//!   (fanout-dominator structure of the cone's fanin), trigger-gate
//!   inputs, and the duplicate-literal checks of `applicable` — depends
//!   only on structure inside the probed gate's fanin region, and every
//!   element of `C` whose structure changed reaches the probed gate
//!   through fanout edges. Modifications only *add* edges, so computing
//!   the fanout on the post-modification adjacency over-approximates
//!   safely, even with several modifications batched between flushes.
//!
//! Re-analysis is lazy: [`IncrementalLocations::apply`] just records the
//! seeds, and the next [`IncrementalLocations::locations`] call rebuilds
//! the (linear-cost) [`AnalysisEngine`] once and re-probes only dirty
//! gates. The fault-injection battery's circuits gate this in CI: after
//! every embedding step the incremental view must equal a from-scratch
//! [`find_locations`](crate::find_locations) run.

use odcfp_analysis::AnalysisEngine;
use odcfp_netlist::{GateId, NetDriver, Netlist};

use crate::embed::{check_verdict, Fingerprinter, FingerprintedCopy, VerifyLevel};
use crate::location::{FingerprintLocation, LocationProbe};
use crate::modify::{apply_modification, Modification};
use crate::verify::{verify_equivalent, Verdict, VerifyPolicy, VerifySession};
use crate::FingerprintError;

/// A netlist under modification with a per-gate cache of location entries,
/// invalidated by dirty region instead of recomputed wholesale.
#[derive(Debug, Clone)]
pub struct IncrementalLocations {
    netlist: Netlist,
    engine: AnalysisEngine,
    /// Location entry per gate id; `None` = not a location.
    cache: Vec<Option<FingerprintLocation>>,
    /// Changed-set seeds accumulated since the last flush.
    pending: Vec<GateId>,
}

impl IncrementalLocations {
    /// Builds the view and runs the initial full analysis.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation.
    pub fn new(netlist: Netlist) -> Result<IncrementalLocations, FingerprintError> {
        netlist.validate()?;
        let engine = AnalysisEngine::new(&netlist)?;
        let mut probe = LocationProbe::default();
        let cache = (0..netlist.num_gates())
            .map(|i| probe.location_of(&netlist, &engine, GateId::from_index(i)))
            .collect();
        Ok(IncrementalLocations {
            netlist,
            engine,
            cache,
            pending: Vec::new(),
        })
    }

    /// The current netlist snapshot (with all applied modifications).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the view, returning the modified netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Applies a modification and records its changed set; the re-analysis
    /// itself is deferred to the next [`IncrementalLocations::locations`]
    /// call, so consumers that never re-query (e.g. delay-trial loops) pay
    /// nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`apply_modification`] errors; the netlist is unchanged
    /// on error.
    pub fn apply(&mut self, m: &Modification) -> Result<(), FingerprintError> {
        let before = self.netlist.num_gates();
        let mut seeds = vec![m.target()];
        for &net in m.added_nets() {
            if let NetDriver::Gate(g) = self.netlist.net(net).driver() {
                seeds.push(g);
            }
        }
        apply_modification(&mut self.netlist, m)?;
        // Freshly minted inverters (complemented literals).
        seeds.extend((before..self.netlist.num_gates()).map(GateId::from_index));
        self.pending.extend(seeds);
        Ok(())
    }

    /// The current fingerprint locations, identical (order and content) to
    /// `find_locations(self.netlist())` — but only gates in the dirty
    /// region of modifications applied since the last call are re-probed.
    ///
    /// # Errors
    ///
    /// Returns an error if an applied modification left the netlist cyclic
    /// (impossible for locations discovered on the same netlist).
    pub fn locations(&mut self) -> Result<Vec<FingerprintLocation>, FingerprintError> {
        self.flush()?;
        Ok(self.cache.iter().flatten().cloned().collect())
    }

    /// Re-probes the dirty region if any modifications are pending.
    fn flush(&mut self) -> Result<(), FingerprintError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        // The engine rebuild is one linear sweep; the expensive part — the
        // per-gate candidate enumeration — is what the dirty region limits.
        self.engine = AnalysisEngine::new(&self.netlist)?;
        let n = self.netlist.num_gates();
        self.cache.resize(n, None);
        // Multi-source transitive fanout of the accumulated changed sets.
        let mut dirty = vec![false; n];
        let mut queue: Vec<GateId> = Vec::new();
        for &g in &self.pending {
            if !dirty[g.index()] {
                dirty[g.index()] = true;
                queue.push(g);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            for &s in self.engine.csr().fanouts(g) {
                if !dirty[s.index()] {
                    dirty[s.index()] = true;
                    queue.push(s);
                }
            }
        }
        // Deterministic: the dirty region is a structural BFS, independent
        // of thread count.
        odcfp_obs::count("engine.dirty_gates", queue.len() as u64);
        let mut probe = LocationProbe::default();
        for (i, flag) in dirty.iter().enumerate() {
            if *flag {
                self.cache[i] =
                    probe.location_of(&self.netlist, &self.engine, GateId::from_index(i));
            }
        }
        self.pending.clear();
        Ok(())
    }
}

/// An in-progress embedding over a [`Fingerprinter`]: set bits one at a
/// time, inspect the evolving netlist between steps, and re-query the
/// location analysis incrementally instead of from scratch.
///
/// Obtained from [`Fingerprinter::embed_session`]. The batch API
/// ([`Fingerprinter::embed`]) remains the cheapest way to mint a copy when
/// no intermediate state is needed.
#[derive(Debug)]
pub struct EmbedSession<'a> {
    fp: &'a Fingerprinter,
    inc: IncrementalLocations,
    bits: Vec<bool>,
}

impl Fingerprinter {
    /// Starts an incremental embedding session on a copy of the base.
    ///
    /// # Errors
    ///
    /// Returns an error if the base netlist fails validation.
    pub fn embed_session(&self) -> Result<EmbedSession<'_>, FingerprintError> {
        Ok(EmbedSession {
            fp: self,
            inc: IncrementalLocations::new(self.base().clone())?,
            bits: vec![false; self.locations().len()],
        })
    }
}

impl EmbedSession<'_> {
    /// The netlist carrying every modification set so far.
    pub fn netlist(&self) -> &Netlist {
        self.inc.netlist()
    }

    /// The bit per location set so far.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Sets location `index`'s bit by applying its selected modification.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::CannotApply`] when the index is out of
    /// range or the bit is already set, and propagates application errors.
    pub fn set_bit(&mut self, index: usize) -> Result<(), FingerprintError> {
        let m = self
            .fp
            .selected_modifications()
            .get(index)
            .ok_or_else(|| FingerprintError::CannotApply {
                gate: GateId::from_index(0),
                reason: format!(
                    "location index {index} out of range ({} locations)",
                    self.bits.len()
                ),
            })?;
        if self.bits[index] {
            return Err(FingerprintError::CannotApply {
                gate: m.target(),
                reason: format!("location {index} already set in this session"),
            });
        }
        self.inc.apply(m)?;
        self.bits[index] = true;
        Ok(())
    }

    /// The fingerprint locations of the *current* (partially embedded)
    /// netlist, re-analyzed incrementally — the residual capacity left to
    /// later embedding steps.
    ///
    /// # Errors
    ///
    /// Propagates [`IncrementalLocations::locations`] errors.
    pub fn residual_locations(&mut self) -> Result<Vec<FingerprintLocation>, FingerprintError> {
        self.inc.locations()
    }

    /// Validates and (optionally) verifies the session netlist against the
    /// base, returning it as a fingerprinted copy.
    ///
    /// The copy is structurally identical to the batch
    /// [`Fingerprinter::embed_verified`] result for the same bits; only
    /// the auto-generated names of complement inverters can differ, as
    /// they record application order.
    ///
    /// # Errors
    ///
    /// Returns an error on failed validation or verification.
    pub fn finish(self, verify: VerifyLevel) -> Result<FingerprintedCopy, FingerprintError> {
        let netlist = self.inc.into_netlist();
        netlist.validate()?;
        if let Some(policy) = verify.policy() {
            check_verdict(verify_equivalent(self.fp.base(), &netlist, &policy)?)?;
        }
        Ok(FingerprintedCopy::from_parts(netlist, self.bits))
    }

    /// Like [`EmbedSession::finish`], but verifies through a persistent
    /// [`VerifySession`] so the proof machinery (strash store, learnt
    /// clauses, shared base encoding) carries over to the next copy.
    ///
    /// The session must have been built from the same base netlist. The
    /// verdict the policy's budget earned is returned alongside the copy;
    /// [`Verdict::Refuted`] is promoted to an error, exactly as in
    /// [`Fingerprinter::embed_with_policy`].
    ///
    /// # Errors
    ///
    /// Returns an error on failed validation or a refuted equivalence
    /// check.
    pub fn finish_with_session(
        self,
        session: &mut VerifySession,
        policy: &VerifyPolicy,
    ) -> Result<(FingerprintedCopy, Verdict), FingerprintError> {
        let netlist = self.inc.into_netlist();
        netlist.validate()?;
        let report = session.verify(&netlist, policy)?;
        if let Verdict::Refuted { counterexample } = report.verdict {
            return Err(FingerprintError::NotEquivalent {
                counterexample: Some(counterexample),
            });
        }
        Ok((
            FingerprintedCopy::from_parts(netlist, self.bits),
            report.verdict,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_locations;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    #[test]
    fn incremental_matches_from_scratch_after_each_step() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(55));
        let fp = Fingerprinter::new(base).unwrap();
        assert!(!fp.locations().is_empty());
        let mut inc = IncrementalLocations::new(fp.base().clone()).unwrap();
        assert_eq!(inc.locations().unwrap(), find_locations(fp.base()));
        for m in fp.selected_modifications() {
            inc.apply(m).unwrap();
            assert_eq!(
                inc.locations().unwrap(),
                find_locations(inc.netlist()),
                "after applying {m:?}"
            );
        }
    }

    #[test]
    fn session_matches_batch_embed() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(56));
        let fp = Fingerprinter::new(base).unwrap();
        let n = fp.locations().len();
        assert!(n >= 2);
        // Set every other bit through a session; batch-embed the same bits.
        let bits: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut session = fp.embed_session().unwrap();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                session.set_bit(i).unwrap();
            }
        }
        let copy = session.finish(VerifyLevel::Simulation).unwrap();
        assert_eq!(copy.bits(), &bits[..]);
        assert_eq!(fp.extract(copy.netlist()), bits);
        let batch = fp.embed(&bits).unwrap();
        assert_eq!(copy.netlist().num_gates(), batch.netlist().num_gates());
    }

    #[test]
    fn set_bit_rejects_double_set_and_out_of_range() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(57));
        let fp = Fingerprinter::new(base).unwrap();
        let mut session = fp.embed_session().unwrap();
        session.set_bit(0).unwrap();
        assert!(matches!(
            session.set_bit(0),
            Err(FingerprintError::CannotApply { .. })
        ));
        assert!(matches!(
            session.set_bit(usize::MAX),
            Err(FingerprintError::CannotApply { .. })
        ));
    }

    #[test]
    fn residual_capacity_never_grows() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(58));
        let fp = Fingerprinter::new(base).unwrap();
        let mut session = fp.embed_session().unwrap();
        let mut last = session.residual_locations().unwrap().len();
        for i in 0..fp.locations().len() {
            session.set_bit(i).unwrap();
            let now = session.residual_locations().unwrap().len();
            // A wiring step can consume locations (shared structure) but
            // the paper's construction never mints brand-new primaries
            // faster than it spends them on these circuits.
            assert!(now <= last + 1, "step {i}: {last} -> {now}");
            last = now;
        }
    }
}
