//! Verify-ladder differential suite for the solver tier: on
//! fault-battery circuits, every `--solver-profile`, every portfolio
//! width, and every analysis thread count must produce the **same
//! verdict** — and that verdict must match brute-force ground truth.
//!
//! This is the end-to-end face of the contract unit-tested in
//! `crates/sat/tests/differential.rs`: heuristics and racing change the
//! search, never the conclusion, so campaign journals and attack
//! scorecards stay byte-identical whichever backend configuration runs.

use odcfp_analysis::engine::set_thread_override;
use odcfp_core::faults::FaultInjector;
use odcfp_core::{verify_equivalent, Verdict, VerifyPolicy};
use odcfp_logic::sim;
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_sat::SolverConfig;
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// Brute-force functional comparison — the independent ground truth.
fn ground_truth_equal(a: &Netlist, b: &Netlist) -> bool {
    let n = a.primary_inputs().len();
    assert!(n <= 16, "ground truth requires a small input space");
    let patterns = sim::exhaustive_patterns(n);
    let va = a.simulate(&patterns);
    let vb = b.simulate(&patterns);
    a.primary_outputs()
        .iter()
        .zip(b.primary_outputs())
        .all(|(&oa, &ob)| va[oa.index()] == vb[ob.index()])
}

/// The circuit pairs under test: clean copies and injected faults, some
/// function-preserving (ODC-masked) and some function-changing.
fn battery() -> Vec<(String, Netlist, Netlist)> {
    let mut pairs = Vec::new();
    for seed in [3u64, 7, 11] {
        let base = random_dag(CellLibrary::standard(), DagParams::small(seed));
        pairs.push((format!("clean_{seed}"), base.clone(), base.clone()));
        let mut inj = FaultInjector::new(seed);
        let (stuck, net, value) = inj.random_stuck_at(&base).expect("injectable");
        pairs.push((format!("stuck_{seed}_{net:?}={value}"), base.clone(), stuck));
        let (wrong, gate) = inj.random_wrong_cell(&base).expect("injectable");
        pairs.push((format!("wrong_{seed}_{gate:?}"), base, wrong));
    }
    pairs
}

/// Verdicts compare by kind; refutations also prove themselves on the
/// netlists, so two refuting configurations agree even when their
/// counterexamples differ.
fn check(golden: &Netlist, candidate: &Netlist, policy: &VerifyPolicy, label: &str) -> bool {
    let truth = ground_truth_equal(golden, candidate);
    match verify_equivalent(golden, candidate, policy).expect("valid pair") {
        Verdict::Proven => {
            assert!(truth, "{label}: proved a function-changing fault");
            true
        }
        Verdict::Refuted { counterexample } => {
            assert!(!truth, "{label}: refuted a harmless pair");
            assert_ne!(
                golden.eval(&counterexample),
                candidate.eval(&counterexample),
                "{label}: counterexample does not witness the difference"
            );
            false
        }
        other => panic!("{label}: unbounded verify returned {other}"),
    }
}

/// One test (not one per axis) so the global thread override is never
/// mutated concurrently by the harness's parallel test runner.
#[test]
fn profiles_portfolios_and_thread_counts_agree_with_ground_truth() {
    let pairs = battery();
    // The ladder is exercised on both rungs: the sweep fast path and the
    // cold whole-circuit miter, with and without a portfolio.
    let policies: Vec<(String, VerifyPolicy)> = {
        let mut all = Vec::new();
        for (profile, config) in SolverConfig::profiles() {
            for fast in [true, false] {
                all.push((
                    format!("{profile}/{}", if fast { "fast" } else { "cold" }),
                    VerifyPolicy {
                        use_fast_path: fast,
                        solver: config,
                        ..VerifyPolicy::strict()
                    },
                ));
            }
        }
        for width in [2usize, 4] {
            all.push((
                format!("portfolio_{width}"),
                VerifyPolicy {
                    use_fast_path: false,
                    // Starve the first attempt so the race actually runs.
                    sat_initial_conflicts: Some(1),
                    sat_max_attempts: 1,
                    portfolio: width,
                    ..VerifyPolicy::strict()
                },
            ));
        }
        all
    };
    for threads in [1usize, 8] {
        set_thread_override(Some(threads));
        for (name, golden, candidate) in &pairs {
            let mut reference: Option<bool> = None;
            for (policy_name, policy) in &policies {
                let label = format!("{name} @{threads}t {policy_name}");
                let equal = check(golden, candidate, policy, &label);
                match reference {
                    None => reference = Some(equal),
                    Some(expect) => assert_eq!(equal, expect, "{label}: verdict flipped"),
                }
            }
        }
    }
    set_thread_override(None);
}
