//! The fault-injection battery: every fault class from
//! [`odcfp_core::faults`] must be caught by *some* layer of the pipeline
//! — SAT/simulation refutes it, the ECC decoder localizes it, or a parser
//! reports a typed error. Verdicts are graded against brute-force ground
//! truth, so an ODC-masked (functionally harmless) fault instance must be
//! proven harmless, and a function-changing one must be refuted: nothing
//! is ever *silently* accepted, and nothing panics.

use odcfp_core::faults::{FaultClass, FaultInjector};
use odcfp_core::robust::{self, Code};
use odcfp_core::{verify_equivalent, Fingerprinter, FlexibleDesign, Verdict, VerifyPolicy};
use odcfp_logic::sim;
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// Brute-force functional comparison over every input assignment — the
/// independent ground truth the ladder's verdicts are graded against.
/// Exhaustive-pattern padding bits replicate the all-zeros row in both
/// netlists, so plain stream equality is exact.
fn ground_truth_equal(a: &Netlist, b: &Netlist) -> bool {
    let n = a.primary_inputs().len();
    assert!(n <= 16, "ground truth requires a small input space");
    let patterns = sim::exhaustive_patterns(n);
    let va = a.simulate(&patterns);
    let vb = b.simulate(&patterns);
    a.primary_outputs()
        .iter()
        .zip(b.primary_outputs())
        .all(|(&oa, &ob)| va[oa.index()] == vb[ob.index()])
}

fn small_base(seed: u64) -> Netlist {
    random_dag(CellLibrary::standard(), DagParams::small(seed))
}

/// Grades one faulty netlist against ground truth: the verdict must agree
/// with the truth exactly. Returns whether the fault changed the function.
fn grade(base: &Netlist, faulty: &Netlist, label: &str) -> bool {
    let truth_equal = ground_truth_equal(base, faulty);
    match verify_equivalent(base, faulty, &VerifyPolicy::strict()).unwrap() {
        Verdict::Proven => {
            assert!(truth_equal, "{label}: accepted a function-changing fault");
            false
        }
        Verdict::Refuted { counterexample } => {
            assert!(!truth_equal, "{label}: refuted a harmless fault");
            assert_ne!(
                base.eval(&counterexample),
                faulty.eval(&counterexample),
                "{label}: counterexample does not witness the difference"
            );
            true
        }
        other => panic!("{label}: strict policy must decide, got {other}"),
    }
}

#[test]
fn stuck_at_faults_match_ground_truth() {
    let mut refuted = 0;
    for seed in 0..8 {
        let base = small_base(40 + seed);
        let mut inj = FaultInjector::new(seed);
        let (faulty, net, value) = inj.random_stuck_at(&base).unwrap();
        faulty.validate().unwrap();
        if grade(&base, &faulty, &format!("stuck-at seed {seed} ({net:?}={value})")) {
            refuted += 1;
        }
    }
    assert!(refuted >= 1, "no stuck-at instance was function-changing");
}

#[test]
fn wrong_cell_faults_match_ground_truth() {
    let mut refuted = 0;
    for seed in 0..8 {
        let base = small_base(50 + seed);
        let mut inj = FaultInjector::new(seed);
        let (faulty, gate) = inj.random_wrong_cell(&base).unwrap();
        faulty.validate().unwrap();
        if grade(&base, &faulty, &format!("wrong-cell seed {seed} ({gate:?})")) {
            refuted += 1;
        }
    }
    assert!(refuted >= 1, "no wrong-cell instance was function-changing");
}

#[test]
fn stuck_at_inside_fingerprinted_copy_is_refuted() {
    // The production scenario: a defect lands in a *fingerprinted* die.
    let fp = Fingerprinter::new(small_base(60)).unwrap();
    let copy = fp.embed(&vec![true; fp.locations().len()]).unwrap();
    let mut inj = FaultInjector::new(61);
    let mut seen_refutation = false;
    for _ in 0..8 {
        let (faulty, _, _) = inj.random_stuck_at(copy.netlist()).unwrap();
        seen_refutation |= grade(fp.base(), &faulty, "stuck-at in copy");
    }
    assert!(seen_refutation);
}

/// Fingerprint-wire faults (dropped or duplicated optional connections)
/// preserve the circuit function by construction — equivalence checking
/// *must* pass, and the ECC layer must localize the fault instead.
fn wire_fault_battery(drop: bool) {
    let base = random_dag(
        CellLibrary::standard(),
        DagParams {
            inputs: 10,
            gates: 200,
            outputs: 8,
            window: 40,
            seed: 70,
        },
    );
    let fp = Fingerprinter::new(base).unwrap();
    let n = fp.locations().len();
    let code = Code::Repetition(3);
    let payload_len = code.payload_capacity(n);
    assert!(payload_len >= 1, "need capacity, got {n} locations");
    let payload: Vec<bool> = (0..payload_len).map(|i| i % 3 != 0).collect();
    let intended = robust::encode(code, &payload, n).unwrap();

    let mut inj = FaultInjector::new(71);
    let (faulty_bits, at) = if drop {
        inj.drop_random_wire(&intended).unwrap()
    } else {
        inj.duplicate_random_wire(&intended).unwrap()
    };
    // The faulty die: the wire set differs from the intended one.
    let faulty_copy = fp.embed(&faulty_bits).unwrap();

    // Layer 1 (equivalence) passes — the fault is ODC-masked by design...
    let verdict =
        verify_equivalent(fp.base(), faulty_copy.netlist(), &VerifyPolicy::strict()).unwrap();
    assert!(verdict.is_pass(), "wire faults never change the function");

    // ...so layer 2 (extraction + ECC) must catch and localize it.
    let extracted = fp.extract(faulty_copy.netlist());
    assert_ne!(extracted, intended, "extraction must expose the fault");
    let decoded = robust::decode(code, &extracted, payload_len);
    if at < code.payload_capacity(n) * 3 {
        // Inside the coded region: corrected and localized.
        assert_eq!(decoded.payload, payload, "single wire fault is corrected");
        assert_eq!(decoded.tampered_locations, vec![at]);
    }
}

#[test]
fn dropped_fingerprint_wire_is_localized_by_ecc() {
    wire_fault_battery(true);
}

#[test]
fn duplicated_fingerprint_wire_is_localized_by_ecc() {
    wire_fault_battery(false);
}

#[test]
fn fuse_bit_flip_is_localized_by_ecc() {
    let base = random_dag(
        CellLibrary::standard(),
        DagParams {
            inputs: 10,
            gates: 200,
            outputs: 8,
            window: 40,
            seed: 80,
        },
    );
    let fp = Fingerprinter::new(base).unwrap();
    let flexible = FlexibleDesign::build(&fp).unwrap();
    let n = fp.locations().len();
    let code = Code::Repetition(3);
    let payload_len = code.payload_capacity(n);
    let payload: Vec<bool> = (0..payload_len).map(|i| i % 2 == 0).collect();
    let intended = robust::encode(code, &payload, n).unwrap();

    let mut inj = FaultInjector::new(81);
    let (flipped, at) = inj.random_bit_flip(&intended).unwrap();

    // Both fuse maps program into functioning, base-equivalent silicon —
    // the flip is invisible to equivalence checking...
    let (_, verdict) = flexible
        .program_verified(&flipped, &VerifyPolicy::strict())
        .unwrap();
    assert!(verdict.is_pass(), "fuse flips never change the function");

    // ...and the fuse-map read-back plus ECC decode localizes it.
    let decoded = robust::decode(code, &flipped, payload_len);
    if at < payload_len * 3 {
        assert_eq!(decoded.payload, payload, "single fuse flip is corrected");
        assert_eq!(decoded.tampered_locations, vec![at]);
    } else {
        assert_eq!(decoded.payload, payload, "padding flips don't touch data");
    }
}

#[test]
fn truncated_blif_never_reaches_the_pipeline_silently() {
    let source = "\
.model battery
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
10 1
01 1
.names a c z
00 1
.end
";
    let golden_network = odcfp_blif::parse_blif(source).unwrap();
    let golden = odcfp_synth::map_network(&golden_network, CellLibrary::standard()).unwrap();

    // Cuts at or past the end of the last cover row only shave off
    // `.end`/whitespace; the model is semantically complete and *should*
    // verify as equivalent.
    let semantic_end = source.rfind("00 1").unwrap() + "00 1".len();

    let mut inj = FaultInjector::new(90);
    let mut rejected = 0;
    let mut complete = 0;
    for round in 0..64 {
        let cut = inj.truncate_source(source);
        // Layer 1: the parser reports a typed, located error...
        let network = match odcfp_blif::parse_blif(&cut) {
            Err(e) => {
                assert!(e.line >= 1, "round {round}: error must carry a line");
                assert!(!e.to_string().is_empty());
                rejected += 1;
                continue;
            }
            Ok(network) => network,
        };
        // ...layer 2: network validation inside mapping rejects it...
        let mapped = match odcfp_synth::map_network(&network, CellLibrary::standard()) {
            Err(e) => {
                assert!(!e.to_string().is_empty());
                rejected += 1;
                continue;
            }
            Ok(mapped) => mapped,
        };
        // ...layer 3: a truncated-but-parsable model can never pass a
        // functional comparison against the golden design (unless only
        // trailing boilerplate was cut).
        match verify_equivalent(&golden, &mapped, &VerifyPolicy::strict()) {
            Err(_) | Ok(Verdict::Refuted { .. }) => rejected += 1,
            Ok(verdict) if cut.len() >= semantic_end => {
                assert!(verdict.is_pass(), "round {round}: complete model: {verdict}");
                complete += 1;
            }
            Ok(other) => panic!("round {round}: truncation accepted as {other}"),
        }
    }
    assert_eq!(
        rejected + complete,
        64,
        "every truncation must be caught or provably complete"
    );
    assert!(rejected > complete, "most cuts must lose semantic content");
    assert!(FaultClass::ALL.len() >= 6);
}

#[test]
fn starved_verification_is_undecided_never_wrong() {
    // A starved budget must degrade to Undecided (with accounting) — it
    // must never claim equivalence it did not establish, and whatever it
    // *does* decide within budget must match ground truth.
    let base = small_base(95);
    let mut inj = FaultInjector::new(96);
    let (faulty, _, _) = inj.random_stuck_at(&base).unwrap();
    let starved = VerifyPolicy {
        sim_words: 0,
        exhaustive_max_inputs: 0,
        sat_initial_conflicts: Some(1),
        sat_max_attempts: 1,
        sat_conflict_cap: Some(1),
        ..VerifyPolicy::strict()
    };
    match verify_equivalent(&base, &faulty, &starved).unwrap() {
        Verdict::Undecided { elapsed, .. } => {
            assert!(elapsed > std::time::Duration::ZERO);
        }
        Verdict::Proven => assert!(ground_truth_equal(&base, &faulty)),
        Verdict::Refuted { counterexample } => {
            assert_ne!(base.eval(&counterexample), faulty.eval(&counterexample));
        }
        Verdict::ProbablyEquivalent { .. } => {
            panic!("no simulation ran, so nothing is 'probably' anything")
        }
    }
}

#[test]
fn incremental_reanalysis_matches_from_scratch_on_battery_circuits() {
    // The incremental dirty-region layer must be indistinguishable from a
    // full re-analysis after every single embedding step, on the same
    // circuit family the fault battery grades verdicts with.
    for seed in [40, 47, 50, 63, 95] {
        let base = small_base(seed);
        let fp = Fingerprinter::new(base).unwrap();
        let mut inc = odcfp_core::IncrementalLocations::new(fp.base().clone()).unwrap();
        assert_eq!(
            inc.locations().unwrap(),
            odcfp_core::find_locations(fp.base()),
            "seed {seed}: initial analysis"
        );
        for (step, m) in fp.selected_modifications().iter().enumerate() {
            inc.apply(m).unwrap();
            assert_eq!(
                inc.locations().unwrap(),
                odcfp_core::find_locations(inc.netlist()),
                "seed {seed}: divergence after step {step}"
            );
        }
        // The fully embedded netlist still verifies against the base.
        let verdict =
            verify_equivalent(fp.base(), inc.netlist(), &VerifyPolicy::strict()).unwrap();
        assert_eq!(verdict, Verdict::Proven, "seed {seed}");
    }
}
