//! Batch-verification differential suite: for every circuit pair in the
//! fault battery, [`VerifySession::verify_many_cancellable`] — the one
//! warm-miter probe pass `odcfp serve` uses to coalesce concurrent
//! verify requests — must return exactly the verdicts the per-request
//! [`VerifySession::verify_cancellable`] path returns, at every
//! analysis thread count. Batching buys throughput, never answers.

use odcfp_analysis::engine::set_thread_override;
use odcfp_core::faults::FaultInjector;
use odcfp_core::{CancelToken, Verdict, VerifyPolicy, VerifySession};
use odcfp_logic::sim;
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// Brute-force functional comparison — the independent ground truth.
fn ground_truth_equal(a: &Netlist, b: &Netlist) -> bool {
    let n = a.primary_inputs().len();
    assert!(n <= 16, "ground truth requires a small input space");
    let patterns = sim::exhaustive_patterns(n);
    let va = a.simulate(&patterns);
    let vb = b.simulate(&patterns);
    a.primary_outputs()
        .iter()
        .zip(b.primary_outputs())
        .all(|(&oa, &ob)| va[oa.index()] == vb[ob.index()])
}

/// Candidate batteries per golden: the golden itself, a stuck-at fault,
/// and a wrong-cell fault — mixing proven and refuted slots in one
/// batch, the shape the serve gather window produces.
fn battery(seed: u64) -> (Netlist, Vec<(String, Netlist)>) {
    let base = random_dag(CellLibrary::standard(), DagParams::small(seed));
    let mut inj = FaultInjector::new(seed);
    let (stuck, net, value) = inj.random_stuck_at(&base).expect("injectable");
    let (wrong, gate) = inj.random_wrong_cell(&base).expect("injectable");
    let candidates = vec![
        ("clean_a".to_owned(), base.clone()),
        (format!("stuck_{net:?}={value}"), stuck),
        ("clean_b".to_owned(), base.clone()),
        (format!("wrong_{gate:?}"), wrong),
    ];
    (base, candidates)
}

/// One test (not one per axis) so the global thread override is never
/// mutated concurrently by the harness's parallel test runner.
#[test]
fn batched_verdicts_match_per_candidate_and_ground_truth() {
    for threads in [1usize, 8] {
        set_thread_override(Some(threads));
        for seed in [3u64, 7, 11] {
            let (golden, candidates) = battery(seed);
            let policy = VerifyPolicy::strict();

            // Per-candidate reference, each on a fresh token.
            let mut session = VerifySession::new(&golden).expect("valid golden");
            let single: Vec<Verdict> = candidates
                .iter()
                .map(|(name, candidate)| {
                    session
                        .verify_cancellable(candidate, &policy, &CancelToken::new())
                        .unwrap_or_else(|e| panic!("{name} @{threads}t: {e}"))
                        .verdict
                })
                .collect();

            // The same candidates through one warm batch pass.
            let mut session = VerifySession::new(&golden).expect("valid golden");
            let tokens: Vec<CancelToken> =
                candidates.iter().map(|_| CancelToken::new()).collect();
            let refs: Vec<(&Netlist, &CancelToken)> = candidates
                .iter()
                .zip(&tokens)
                .map(|((_, candidate), token)| (candidate, token))
                .collect();
            let batched = session.verify_many_cancellable(&refs, &policy);
            assert_eq!(batched.len(), candidates.len(), "one verdict per slot");

            for (((name, candidate), single), batched) in
                candidates.iter().zip(&single).zip(batched)
            {
                let label = format!("seed {seed} {name} @{threads}t");
                let batched = batched
                    .unwrap_or_else(|e| panic!("{label}: batch slot failed: {e}"))
                    .verdict;
                let truth = ground_truth_equal(&golden, candidate);
                match (&batched, single) {
                    (Verdict::Proven, Verdict::Proven) => {
                        assert!(truth, "{label}: both paths proved a real fault");
                    }
                    (
                        Verdict::Refuted { counterexample },
                        Verdict::Refuted { .. },
                    ) => {
                        assert!(!truth, "{label}: both paths refuted a harmless pair");
                        assert_ne!(
                            golden.eval(counterexample),
                            candidate.eval(counterexample),
                            "{label}: batch counterexample must witness the difference"
                        );
                    }
                    (b, s) => panic!("{label}: batch said {b}, per-candidate said {s}"),
                }
            }
        }
    }
    set_thread_override(None);
}
