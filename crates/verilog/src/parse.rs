//! Parser for the structural Verilog subset.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use odcfp_netlist::{CellId, CellLibrary, NetId, Netlist};

use crate::pin_index;

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseVerilogErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseVerilogErrorKind {
    /// Expected a different token.
    Expected {
        /// What the parser wanted.
        wanted: String,
        /// What it found.
        found: String,
    },
    /// An instance references a cell absent from the library.
    UnknownCell(String),
    /// An unknown pin name in a named port connection.
    UnknownPin(String),
    /// An instance's connections don't match its cell (missing output,
    /// wrong input count, duplicate pin).
    BadConnections(String),
    /// A net is driven more than once.
    MultipleDrivers(String),
    /// The file ended unexpectedly.
    UnexpectedEof,
    /// Input ended without a module.
    Empty,
    /// A construct outside the supported subset (vectors, behavioral code).
    Unsupported(String),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verilog parse error at line {}: ", self.line)?;
        match &self.kind {
            ParseVerilogErrorKind::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found {found:?}")
            }
            ParseVerilogErrorKind::UnknownCell(c) => write!(f, "unknown cell {c:?}"),
            ParseVerilogErrorKind::UnknownPin(p) => write!(f, "unknown pin {p:?}"),
            ParseVerilogErrorKind::BadConnections(m) => write!(f, "bad connections: {m}"),
            ParseVerilogErrorKind::MultipleDrivers(n) => {
                write!(f, "net {n:?} has multiple drivers")
            }
            ParseVerilogErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseVerilogErrorKind::Empty => write!(f, "no module found"),
            ParseVerilogErrorKind::Unsupported(w) => write!(f, "unsupported construct: {w}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
    Literal(bool),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(c) => write!(f, "{c}"),
            Tok::Literal(b) => write!(f, "1'b{}", u8::from(*b)),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseVerilogError> {
    let mut toks = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                chars.next();
                let mut prev = ' ';
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                    }
                    if prev == '*' && c2 == '/' {
                        break;
                    }
                    prev = c2;
                }
            }
            '(' | ')' | ',' | ';' | '.' | '=' => toks.push((line, Tok::Punct(c))),
            '1' if src[i..].starts_with("1'b0") || src[i..].starts_with("1'b1") => {
                let bit = src.as_bytes()[i + 3] == b'1';
                toks.push((line, Tok::Literal(bit)));
                chars.next();
                chars.next();
                chars.next();
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
                let mut s = String::new();
                if c == '\\' {
                    // Escaped identifier: runs to whitespace.
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_whitespace() {
                            break;
                        }
                        s.push(c2);
                        chars.next();
                    }
                } else {
                    s.push(c);
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '$' {
                            s.push(c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                toks.push((line, Tok::Ident(s)));
            }
            other => {
                return Err(ParseVerilogError {
                    line,
                    kind: ParseVerilogErrorKind::Unsupported(format!("character {other:?}")),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.1)
    }

    fn next(&mut self) -> Result<&'a Tok, ParseVerilogError> {
        let t = self.toks.get(self.pos).ok_or(ParseVerilogError {
            line: self.toks.last().map_or(1, |t| t.0),
            kind: ParseVerilogErrorKind::UnexpectedEof,
        })?;
        self.pos += 1;
        Ok(&t.1)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseVerilogError> {
        let line = self.line();
        match self.next()? {
            Tok::Punct(p) if *p == c => Ok(()),
            other => Err(ParseVerilogError {
                line,
                kind: ParseVerilogErrorKind::Expected {
                    wanted: format!("{c:?}"),
                    found: other.to_string(),
                },
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<&'a str, ParseVerilogError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseVerilogError {
                line,
                kind: ParseVerilogErrorKind::Expected {
                    wanted: "identifier".into(),
                    found: other.to_string(),
                },
            }),
        }
    }

    /// Parses `name, name, ... ;` returning the names.
    fn ident_list_until_semi(&mut self) -> Result<Vec<&'a str>, ParseVerilogError> {
        let mut names = vec![self.expect_ident()?];
        loop {
            let line = self.line();
            match self.next()? {
                Tok::Punct(';') => return Ok(names),
                Tok::Punct(',') => names.push(self.expect_ident()?),
                other => {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::Expected {
                            wanted: "',' or ';'".into(),
                            found: other.to_string(),
                        },
                    })
                }
            }
        }
    }
}

/// Parses a single flat gate-level module into a [`Netlist`] over `library`.
///
/// See the [crate documentation](crate) for the accepted subset. The
/// returned netlist is validated structurally before being returned.
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] with a 1-based line number on syntax
/// errors, unknown cells/pins, arity mismatches, multiply-driven nets, and
/// unsupported constructs.
pub fn parse_verilog(
    src: &str,
    library: Arc<CellLibrary>,
) -> Result<Netlist, ParseVerilogError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
    };

    // module NAME ( ports ) ;
    let line = p.line();
    match p.peek() {
        Some(Tok::Ident(k)) if k == "module" => {
            p.next()?;
        }
        _ => {
            return Err(ParseVerilogError {
                line,
                kind: ParseVerilogErrorKind::Empty,
            })
        }
    }
    let module_name = p.expect_ident()?.to_owned();
    p.expect_punct('(')?;
    // Skip the port list (names repeated in input/output declarations).
    loop {
        match p.next()? {
            Tok::Punct(')') => break,
            Tok::Ident(_) | Tok::Punct(',') => {}
            other => {
                return Err(ParseVerilogError {
                    line: p.line(),
                    kind: ParseVerilogErrorKind::Expected {
                        wanted: "port name".into(),
                        found: other.to_string(),
                    },
                })
            }
        }
    }
    p.expect_punct(';')?;

    let mut netlist = Netlist::new(module_name, library.clone());
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pending_outputs: Vec<String> = Vec::new();
    // Instances seen before all declarations are unusual but legal in our
    // subset because we require declarations first; enforce that.
    #[derive(PartialEq)]
    enum Phase {
        Decls,
        Body,
    }
    let mut phase = Phase::Decls;
    let mut instance_counter = 0usize;

    loop {
        let line = p.line();
        let tok = p.next()?.clone();
        match tok {
            Tok::Ident(k) if k == "endmodule" => break,
            Tok::Ident(k) if k == "input" => {
                if phase == Phase::Body {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::Unsupported(
                            "declaration after instances".into(),
                        ),
                    });
                }
                for name in p.ident_list_until_semi()? {
                    if nets.contains_key(name) {
                        return Err(ParseVerilogError {
                            line,
                            kind: ParseVerilogErrorKind::MultipleDrivers(name.to_owned()),
                        });
                    }
                    let id = netlist.add_primary_input(name);
                    nets.insert(name.to_owned(), id);
                }
            }
            Tok::Ident(k) if k == "output" => {
                if phase == Phase::Body {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::Unsupported(
                            "declaration after instances".into(),
                        ),
                    });
                }
                for name in p.ident_list_until_semi()? {
                    pending_outputs.push(name.to_owned());
                    if !nets.contains_key(name) {
                        let id = netlist.add_net(name);
                        nets.insert(name.to_owned(), id);
                    }
                }
            }
            Tok::Ident(k) if k == "wire" => {
                if phase == Phase::Body {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::Unsupported(
                            "declaration after instances".into(),
                        ),
                    });
                }
                for name in p.ident_list_until_semi()? {
                    if !nets.contains_key(name) {
                        let id = netlist.add_net(name);
                        nets.insert(name.to_owned(), id);
                    }
                }
            }
            Tok::Ident(k) if k == "assign" => {
                phase = Phase::Body;
                // assign net = 1'b0 ; | assign net = net2 ; (buffer alias is
                // unsupported: netlists use BUF cells instead).
                let name = p.expect_ident()?.to_owned();
                p.expect_punct('=')?;
                let val_line = p.line();
                let value = match p.next()? {
                    Tok::Literal(b) => *b,
                    other => {
                        return Err(ParseVerilogError {
                            line: val_line,
                            kind: ParseVerilogErrorKind::Unsupported(format!(
                                "assign from {other}"
                            )),
                        })
                    }
                };
                p.expect_punct(';')?;
                if nets.contains_key(&name) {
                    // The net was declared as wire/output; re-create it as a
                    // constant by checking it is undriven later (the netlist
                    // arena has no "retype" so we only allow assign-before-use
                    // on declared nets via a fresh constant net aliasing).
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::Unsupported(
                            "assign to a declared net (declare via assign only)".into(),
                        ),
                    });
                }
                let id = netlist.add_constant(&name, value);
                nets.insert(name, id);
            }
            Tok::Ident(cell_name) => {
                phase = Phase::Body;
                let cell = library.cell_by_name(&cell_name).ok_or(ParseVerilogError {
                    line,
                    kind: ParseVerilogErrorKind::UnknownCell(cell_name.clone()),
                })?;
                let inst_name = match p.peek() {
                    Some(Tok::Ident(_)) => p.expect_ident()?.to_owned(),
                    _ => {
                        instance_counter += 1;
                        format!("_u{instance_counter}")
                    }
                };
                let (inputs, output) =
                    parse_connections(&mut p, &mut netlist, &mut nets, &library, cell, line)?;
                let out_driven = !matches!(
                    netlist.net(output).driver(),
                    odcfp_netlist::NetDriver::None
                );
                if out_driven {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::MultipleDrivers(
                            netlist.net(output).name().to_owned(),
                        ),
                    });
                }
                netlist.add_gate_driving(inst_name, cell, &inputs, output);
            }
            other => {
                return Err(ParseVerilogError {
                    line,
                    kind: ParseVerilogErrorKind::Expected {
                        wanted: "declaration, instance or endmodule".into(),
                        found: other.to_string(),
                    },
                })
            }
        }
    }

    // The grammar is one flat module: anything after `endmodule` (a
    // second module, stray text) is rejected rather than silently
    // dropped, so concatenated or corrupted files cannot half-parse.
    if let Some(tok) = p.peek() {
        return Err(ParseVerilogError {
            line: p.line(),
            kind: ParseVerilogErrorKind::Unsupported(format!(
                "trailing input after endmodule (starting with {tok})"
            )),
        });
    }

    for name in pending_outputs {
        let id = nets[&name];
        netlist.set_primary_output(id);
    }
    netlist.validate().map_err(|e| ParseVerilogError {
        line: 1,
        kind: ParseVerilogErrorKind::BadConnections(e.to_string()),
    })?;
    Ok(netlist)
}

fn parse_connections(
    p: &mut Parser<'_>,
    netlist: &mut Netlist,
    nets: &mut HashMap<String, NetId>,
    library: &CellLibrary,
    cell: CellId,
    inst_line: usize,
) -> Result<(Vec<NetId>, NetId), ParseVerilogError> {
    let arity = library.cell(cell).arity();
    p.expect_punct('(')?;
    let mut named: Vec<(Option<usize>, NetId)> = Vec::new(); // None = output pin
    let mut positional: Vec<NetId> = Vec::new();
    let mut is_named = None;
    loop {
        let line = p.line();
        match p.next()? {
            Tok::Punct(')') => break,
            Tok::Punct(',') => {}
            Tok::Punct('.') => {
                if is_named == Some(false) {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::BadConnections(
                            "mixed named and positional ports".into(),
                        ),
                    });
                }
                is_named = Some(true);
                let pin_name = p.expect_ident()?.to_owned();
                p.expect_punct('(')?;
                let net_name = p.expect_ident()?.to_owned();
                p.expect_punct(')')?;
                let net = *nets.entry(net_name.clone()).or_insert_with(|| {
                    // Implicitly declared wire.
                    netlist.add_net(&net_name)
                });
                if pin_name.eq_ignore_ascii_case("Y") {
                    named.push((None, net));
                } else {
                    let idx = pin_index(&pin_name).ok_or(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::UnknownPin(pin_name.clone()),
                    })?;
                    if idx >= arity {
                        return Err(ParseVerilogError {
                            line,
                            kind: ParseVerilogErrorKind::UnknownPin(pin_name),
                        });
                    }
                    named.push((Some(idx), net));
                }
            }
            Tok::Ident(net_name) => {
                if is_named == Some(true) {
                    return Err(ParseVerilogError {
                        line,
                        kind: ParseVerilogErrorKind::BadConnections(
                            "mixed named and positional ports".into(),
                        ),
                    });
                }
                is_named = Some(false);
                let net = *nets
                    .entry(net_name.clone())
                    .or_insert_with(|| netlist.add_net(net_name));
                positional.push(net);
            }
            other => {
                return Err(ParseVerilogError {
                    line,
                    kind: ParseVerilogErrorKind::Expected {
                        wanted: "port connection".into(),
                        found: other.to_string(),
                    },
                })
            }
        }
    }
    p.expect_punct(';')?;

    if is_named == Some(true) {
        let mut output = None;
        let mut inputs: Vec<Option<NetId>> = vec![None; arity];
        for (pin, net) in named {
            match pin {
                None => {
                    if output.replace(net).is_some() {
                        return Err(ParseVerilogError {
                            line: inst_line,
                            kind: ParseVerilogErrorKind::BadConnections(
                                "duplicate output pin".into(),
                            ),
                        });
                    }
                }
                Some(i) => {
                    if inputs[i].replace(net).is_some() {
                        return Err(ParseVerilogError {
                            line: inst_line,
                            kind: ParseVerilogErrorKind::BadConnections(format!(
                                "duplicate input pin {}",
                                crate::input_pin_name(i)
                            )),
                        });
                    }
                }
            }
        }
        let output = output.ok_or(ParseVerilogError {
            line: inst_line,
            kind: ParseVerilogErrorKind::BadConnections("missing output pin Y".into()),
        })?;
        let inputs: Option<Vec<NetId>> = inputs.into_iter().collect();
        let inputs = inputs.ok_or(ParseVerilogError {
            line: inst_line,
            kind: ParseVerilogErrorKind::BadConnections("missing input pin".into()),
        })?;
        Ok((inputs, output))
    } else {
        // Positional: output first, then inputs.
        if positional.len() != arity + 1 {
            return Err(ParseVerilogError {
                line: inst_line,
                kind: ParseVerilogErrorKind::BadConnections(format!(
                    "expected {} connections, found {}",
                    arity + 1,
                    positional.len()
                )),
            });
        }
        let output = positional.remove(0);
        Ok((positional, output))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::standard()
    }

    #[test]
    fn named_ports() {
        let src = "\
module m (a, b, y);
  input a, b;
  output y;
  wire t;
  AND2 u1 (.A(a), .B(b), .Y(t));
  INV u2 (.A(t), .Y(y));
endmodule
";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.name(), "m");
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.eval(&[true, true]), vec![false]);
        assert_eq!(n.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn trailing_input_after_endmodule_is_rejected() {
        let one = "module m (a, y);\ninput a;\noutput y;\nINV u1 (.A(a), .Y(y));\nendmodule\n";
        assert!(parse_verilog(one, lib()).is_ok());
        for trailing in [
            // A second module (concatenated files) must not half-parse.
            "module m2 (b, z);\ninput b;\noutput z;\nINV u2 (.A(b), .Y(z));\nendmodule\n",
            "garbage\n",
        ] {
            let e = parse_verilog(&format!("{one}{trailing}"), lib()).unwrap_err();
            assert!(
                e.to_string().contains("trailing input after endmodule"),
                "{e}"
            );
        }
    }

    #[test]
    fn positional_ports_output_first() {
        let src = "module m (a, y);\ninput a;\noutput y;\nINV u1 (y, a);\nendmodule\n";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.eval(&[false]), vec![true]);
    }

    #[test]
    fn comments_and_shuffled_pin_order() {
        let src = "\
// line comment
module m (a, b, y); /* block
   comment */
  input a, b; output y;
  NOR2 u1 (.Y(y), .B(b), .A(a));
endmodule
";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn constants_via_assign() {
        let src = "\
module m (a, y);
  input a;
  output y;
  assign one = 1'b1;
  AND2 u1 (.A(a), .B(one), .Y(y));
endmodule
";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.eval(&[true]), vec![true]);
        assert_eq!(n.eval(&[false]), vec![false]);
    }

    #[test]
    fn unknown_cell_rejected() {
        let src = "module m (y);\noutput y;\nMUX21 u1 (.Y(y));\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::UnknownCell(_)));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_pin_rejected() {
        let src =
            "module m (a, y);\ninput a;\noutput y;\nINV u1 (.Q(y), .A(a));\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::UnknownPin(_)));
    }

    #[test]
    fn pin_out_of_arity_rejected() {
        let src = "module m (a, y);\ninput a;\noutput y;\nINV u1 (.B(a), .Y(y));\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::UnknownPin(_)));
    }

    #[test]
    fn missing_output_rejected() {
        let src = "module m (a, b);\ninput a, b;\nAND2 u1 (.A(a), .B(b));\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::BadConnections(_)));
    }

    #[test]
    fn double_driver_rejected() {
        let src = "\
module m (a, y);
  input a;
  output y;
  INV u1 (.A(a), .Y(y));
  INV u2 (.A(a), .Y(y));
endmodule
";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::MultipleDrivers(_)));
    }

    #[test]
    fn wrong_positional_count_rejected() {
        let src = "module m (a, y);\ninput a;\noutput y;\nAND2 u1 (y, a);\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::BadConnections(_)));
    }

    #[test]
    fn empty_input_rejected() {
        let e = parse_verilog("// nothing\n", lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::Empty));
    }

    #[test]
    fn eof_mid_module_rejected() {
        let e = parse_verilog("module m (a);\ninput a;\n", lib()).unwrap_err();
        assert!(matches!(e.kind, ParseVerilogErrorKind::UnexpectedEof));
    }

    #[test]
    fn escaped_identifiers() {
        let src = "module m (\\a[0] , y);\ninput \\a[0] ;\noutput y;\nINV u1 (.A(\\a[0] ), .Y(y));\nendmodule\n";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.primary_inputs().len(), 1);
        assert_eq!(n.net(n.primary_inputs()[0]).name(), "a[0]");
        assert_eq!(n.eval(&[true]), vec![false]);
    }

    #[test]
    fn block_comment_line_numbers_tracked() {
        let src = "module m (a, y);\n/* one\n   two\n   three */\ninput a;\noutput y;\nMUX21 u (.Y(y));\nendmodule\n";
        let e = parse_verilog(src, lib()).unwrap_err();
        assert_eq!(e.line, 7, "line numbers must survive block comments");
    }

    #[test]
    fn anonymous_instances_get_names() {
        let src = "module m (a, y);\ninput a;\noutput y;\nINV (.A(a), .Y(y));\nendmodule\n";
        let n = parse_verilog(src, lib()).unwrap();
        assert_eq!(n.num_gates(), 1);
        assert!(n.gate_by_name("_u1").is_some());
    }
}
