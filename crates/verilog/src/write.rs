//! Writer for the structural Verilog subset.

use std::collections::HashMap;
use std::fmt::Write as _;

use odcfp_netlist::{NetDriver, NetId, Netlist};

use crate::input_pin_name;

/// Emits a netlist as a flat gate-level Verilog module with named ports.
///
/// Net and instance names are sanitized to legal simple identifiers
/// (alphanumerics and `_`; anything else becomes `_`) and uniquified with
/// numeric suffixes when sanitization collides, so any netlist — including
/// ones built from BLIF files with bracketed names — round-trips through
/// [`crate::parse_verilog`] functionally (names may differ textually).
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut namer = Namer::default();
    // Reserve language keywords and cell names up front.
    for kw in [
        "module",
        "endmodule",
        "input",
        "output",
        "wire",
        "assign",
    ] {
        namer.reserve(kw);
    }
    for (_, cell) in netlist.library().iter() {
        namer.reserve(cell.name());
    }

    let mut net_names: HashMap<NetId, String> = HashMap::new();
    for (id, net) in netlist.nets() {
        net_names.insert(id, namer.fresh(net.name()));
    }

    let mut out = String::new();
    let module = sanitize(netlist.name());
    let ports: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .chain(netlist.primary_outputs())
        .map(|n| net_names[n].clone())
        .collect();
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));

    let list = |ids: &[NetId]| -> String {
        ids.iter()
            .map(|n| net_names[n].as_str())
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !netlist.primary_inputs().is_empty() {
        let _ = writeln!(out, "  input {};", list(netlist.primary_inputs()));
    }
    if !netlist.primary_outputs().is_empty() {
        let _ = writeln!(out, "  output {};", list(netlist.primary_outputs()));
    }
    let wires: Vec<NetId> = netlist
        .nets()
        .filter(|(_, n)| {
            matches!(n.driver(), NetDriver::Gate(_)) && !n.is_primary_output()
        })
        .map(|(id, _)| id)
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", list(&wires));
    }
    for (id, net) in netlist.nets() {
        if let NetDriver::Const(v) = net.driver() {
            let _ = writeln!(out, "  assign {} = 1'b{};", net_names[&id], u8::from(v));
        }
    }
    out.push('\n');

    for (_, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell());
        let inst = namer.fresh(gate.name());
        let mut conns: Vec<String> = gate
            .inputs()
            .iter()
            .enumerate()
            .map(|(pin, n)| format!(".{}({})", input_pin_name(pin), net_names[n]))
            .collect();
        conns.push(format!(".Y({})", net_names[&gate.output()]));
        let _ = writeln!(out, "  {} {} ({});", cell.name(), inst, conns.join(", "));
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[derive(Default)]
struct Namer {
    used: HashMap<String, usize>,
}

impl Namer {
    fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_owned(), 0);
    }

    fn fresh(&mut self, want: &str) -> String {
        let base = sanitize(want);
        if !self.used.contains_key(&base) {
            self.used.insert(base.clone(), 0);
            return base;
        }
        loop {
            let counter = self.used.get_mut(&base).expect("base present");
            *counter += 1;
            let candidate = format!("{base}_{counter}");
            if !self.used.contains_key(&candidate) {
                self.used.insert(candidate.clone(), 0);
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_verilog;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    fn sample() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("sample", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b[0]"); // hostile name
        let one = n.add_constant("tie1", true);
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let g1 = n.add_gate("u1", nand2, &[a, b]);
        let g2 = n.add_gate("u 2", and3, &[n.gate_output(g1), b, one]);
        n.set_primary_output(n.gate_output(g2));
        n
    }

    #[test]
    fn roundtrip_functionality() {
        let n = sample();
        let text = write_verilog(&n);
        let back = parse_verilog(&text, n.library().clone()).unwrap();
        assert_eq!(back.num_gates(), n.num_gates());
        for i in 0..4usize {
            let bits: Vec<bool> = (0..2).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!(back.eval(&bits), n.eval(&bits), "assignment {i}");
        }
    }

    #[test]
    fn hostile_names_sanitized_and_unique() {
        let text = write_verilog(&sample());
        assert!(text.contains("b_0_"), "bracketed name sanitized: {text}");
        assert!(!text.contains('['));
        assert!(text.contains("assign"));
    }

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize("a[3]"), "a_3_");
        assert_eq!(sanitize("3x"), "n3x");
        assert_eq!(sanitize(""), "n");
    }

    #[test]
    fn namer_uniquifies() {
        let mut n = Namer::default();
        assert_eq!(n.fresh("x"), "x");
        assert_eq!(n.fresh("x"), "x_1");
        assert_eq!(n.fresh("x"), "x_2");
        n.reserve("y");
        assert_eq!(n.fresh("y"), "y_1");
    }

    #[test]
    fn keywords_avoided() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("kw", lib);
        let w = n.add_primary_input("wire");
        n.set_primary_output(w);
        let text = write_verilog(&n);
        assert!(text.contains("input wire_1;"), "{text}");
    }
}
