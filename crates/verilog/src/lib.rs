//! Structural Verilog netlist I/O.
//!
//! The paper's circuit modifier consumes and produces gate-level Verilog
//! netlists ("Input: Circuit in Verilog netlist format / Output: Circuit in
//! Verilog netlist format with fingerprints inserted", Fig. 6). This crate
//! implements that interchange layer for mapped [`odcfp_netlist::Netlist`]s:
//!
//! * [`parse_verilog`] — parses a single flat module of standard-cell
//!   instances (named `.A(net)` or positional port lists), `input` /
//!   `output` / `wire` declarations, and constant `assign net = 1'b0/1'b1`
//!   ties;
//! * [`write_verilog`] — emits the same subset with named ports; the writer
//!   sanitizes identifiers so arbitrary BLIF-derived names stay legal.
//!
//! Cell pins follow the workspace convention: inputs are `A`, `B`, `C`, `D`
//! (pin order 0–3) and the output is `Y`. Positional instances list the
//! output first, like Verilog gate primitives.
//!
//! # Example
//!
//! ```
//! use odcfp_netlist::CellLibrary;
//! use odcfp_verilog::{parse_verilog, write_verilog};
//!
//! let src = "\
//! module tiny (a, b, y);
//!   input a, b;
//!   output y;
//!   NAND2 u1 (.A(a), .B(b), .Y(y));
//! endmodule
//! ";
//! let n = parse_verilog(src, CellLibrary::standard())?;
//! assert_eq!(n.eval(&[true, true]), vec![false]);
//! let text = write_verilog(&n);
//! assert!(text.contains("NAND2"));
//! # Ok::<(), odcfp_verilog::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod write;

pub use parse::{parse_verilog, ParseVerilogError, ParseVerilogErrorKind};
pub use write::write_verilog;

/// The input pin name for pin index `i` under the workspace convention.
///
/// # Panics
///
/// Panics if `i >= 26` (no standard cell has that many pins).
pub fn input_pin_name(i: usize) -> char {
    assert!(i < 26, "pin index out of range");
    (b'A' + i as u8) as char
}

/// The output pin name under the workspace convention.
pub const OUTPUT_PIN: char = 'Y';

/// The pin index for a named input pin, if it is one.
pub fn pin_index(name: &str) -> Option<usize> {
    let mut chars = name.chars();
    let c = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    let c = c.to_ascii_uppercase();
    if c.is_ascii_uppercase() && c != OUTPUT_PIN {
        Some((c as u8 - b'A') as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_names() {
        assert_eq!(input_pin_name(0), 'A');
        assert_eq!(input_pin_name(3), 'D');
        assert_eq!(pin_index("A"), Some(0));
        assert_eq!(pin_index("d"), Some(3));
        assert_eq!(pin_index("Y"), None);
        assert_eq!(pin_index("AB"), None);
    }
}
