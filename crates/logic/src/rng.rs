//! A tiny deterministic PRNG.
//!
//! Every randomized procedure in the workspace (random simulation vectors,
//! the reactive heuristic's random restarts, benchmark generators) is seeded
//! explicitly, so reproducing a table from the paper is always a pure
//! function of the seed. We implement xoshiro256** + SplitMix64 locally
//! rather than pulling in `rand`, because the exact stream then cannot drift
//! with an external crate's version (and the algorithms are ~40 lines).

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
///
/// # Example
///
/// ```
/// use odcfp_logic::rng::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from_u64(7);
/// let mut b = Xoshiro256::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce an all-zero expansion from any seed, but
        // guard anyway: xoshiro's all-zero state is absorbing.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256 { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Unbiased rejection sampling (Lemire's method simplified).
        let bound = bound as u64;
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = widening_mul(r, bound);
            if lo >= threshold {
                return hi as usize;
            }
        }
    }

    /// A uniformly random Boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len())])
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 must stay stable forever: experiments
        // depend on this stream.
        let mut r = Xoshiro256::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(first.len(), 4);
        let mut r2 = Xoshiro256::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(1).next_below(0);
    }

    #[test]
    fn f64_range() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let xs = [10, 20, 30];
        assert!(xs.contains(r.choose(&xs).unwrap()));
    }

    #[test]
    fn rough_uniformity_of_bits() {
        let mut r = Xoshiro256::seed_from_u64(77);
        let mut ones = 0u64;
        const N: u64 = 4096;
        for _ in 0..N {
            ones += r.next_u64().count_ones() as u64;
        }
        let total = N * 64;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit bias: {frac}");
    }
}
