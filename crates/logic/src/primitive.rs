//! Primitive Boolean functions realized by standard-cell library gates.

use std::fmt;
use std::str::FromStr;

use crate::TruthTable;

/// The Boolean function of a library cell, independent of arity.
///
/// The n-ary semantics are the natural ones: `And`/`Nand` over all inputs,
/// `Or`/`Nor` over all inputs, `Xor` is odd parity and `Xnor` even parity.
/// `Buf` and `Inv` are the single-input identity and complement.
///
/// Two properties of these functions drive the fingerprinting method:
///
/// * the **controlling value** ([`PrimitiveFn::controlling_value`]): a value
///   which, applied to *any one* input, fixes the output and therefore makes
///   every other input an Observability Don't Care;
/// * the **neutral value** ([`PrimitiveFn::neutral_input_value`]): a value
///   which, supplied on an *additional* input, leaves the function over the
///   original inputs unchanged — this is what lets a trigger signal be wired
///   into a gate without altering its useful behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveFn {
    /// Single-input identity.
    Buf,
    /// Single-input complement.
    Inv,
    /// n-ary conjunction.
    And,
    /// n-ary disjunction.
    Or,
    /// Complemented conjunction.
    Nand,
    /// Complemented disjunction.
    Nor,
    /// Odd parity.
    Xor,
    /// Even parity.
    Xnor,
}

impl PrimitiveFn {
    /// All primitive functions, in a fixed order.
    pub const ALL: [PrimitiveFn; 8] = [
        PrimitiveFn::Buf,
        PrimitiveFn::Inv,
        PrimitiveFn::And,
        PrimitiveFn::Or,
        PrimitiveFn::Nand,
        PrimitiveFn::Nor,
        PrimitiveFn::Xor,
        PrimitiveFn::Xnor,
    ];

    /// True for the single-input functions `Buf` and `Inv`.
    pub fn is_single_input(self) -> bool {
        matches!(self, PrimitiveFn::Buf | PrimitiveFn::Inv)
    }

    /// The smallest legal arity: 1 for `Buf`/`Inv`, 2 otherwise.
    pub fn min_arity(self) -> usize {
        if self.is_single_input() {
            1
        } else {
            2
        }
    }

    /// Evaluates the function 64 assignments at a time (bit-parallel).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the function.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(
            inputs.len() >= self.min_arity(),
            "{self} needs at least {} inputs",
            self.min_arity()
        );
        match self {
            PrimitiveFn::Buf => {
                assert_eq!(inputs.len(), 1, "Buf takes exactly one input");
                inputs[0]
            }
            PrimitiveFn::Inv => {
                assert_eq!(inputs.len(), 1, "Inv takes exactly one input");
                !inputs[0]
            }
            PrimitiveFn::And => inputs.iter().fold(u64::MAX, |a, &b| a & b),
            PrimitiveFn::Or => inputs.iter().fold(0, |a, &b| a | b),
            PrimitiveFn::Nand => !inputs.iter().fold(u64::MAX, |a, &b| a & b),
            PrimitiveFn::Nor => !inputs.iter().fold(0, |a, &b| a | b),
            PrimitiveFn::Xor => inputs.iter().fold(0, |a, &b| a ^ b),
            PrimitiveFn::Xnor => !inputs.iter().fold(0, |a, &b| a ^ b),
        }
    }

    /// Evaluates the function 256 assignments at a time: the 4-lane block
    /// counterpart of [`PrimitiveFn::eval_words`]. Lanes are independent,
    /// so the loop body is branch-free and auto-vectorizes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the function.
    pub fn eval_blocks(self, inputs: &[crate::sim::Block]) -> crate::sim::Block {
        use crate::sim::{Block, BLOCK_LANES};
        assert!(
            inputs.len() >= self.min_arity(),
            "{self} needs at least {} inputs",
            self.min_arity()
        );
        fn fold(inputs: &[Block], init: u64, f: impl Fn(u64, u64) -> u64) -> Block {
            let mut acc = [init; BLOCK_LANES];
            for inp in inputs {
                for lane in 0..BLOCK_LANES {
                    acc[lane] = f(acc[lane], inp[lane]);
                }
            }
            acc
        }
        match self {
            PrimitiveFn::Buf => {
                assert_eq!(inputs.len(), 1, "Buf takes exactly one input");
                inputs[0]
            }
            PrimitiveFn::Inv => {
                assert_eq!(inputs.len(), 1, "Inv takes exactly one input");
                inputs[0].map(|w| !w)
            }
            PrimitiveFn::And => fold(inputs, u64::MAX, |a, b| a & b),
            PrimitiveFn::Or => fold(inputs, 0, |a, b| a | b),
            PrimitiveFn::Nand => fold(inputs, u64::MAX, |a, b| a & b).map(|w| !w),
            PrimitiveFn::Nor => fold(inputs, 0, |a, b| a | b).map(|w| !w),
            PrimitiveFn::Xor => fold(inputs, 0, |a, b| a ^ b),
            PrimitiveFn::Xnor => fold(inputs, 0, |a, b| a ^ b).map(|w| !w),
        }
    }

    /// Evaluates the function on Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the function.
    pub fn eval(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_words(&words) & 1 == 1
    }

    /// The complete truth table of the `arity`-input version.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is not legal for the function or exceeds
    /// [`crate::MAX_VARS`].
    pub fn truth_table(self, arity: usize) -> TruthTable {
        TruthTable::from_fn(arity, |i| {
            let bits: Vec<bool> = (0..arity).map(|v| (i >> v) & 1 == 1).collect();
            self.eval(&bits)
        })
    }

    /// The controlling input value, if the function has one.
    ///
    /// Applying the controlling value to any single input fixes the output
    /// at [`PrimitiveFn::controlled_output`] regardless of all other inputs;
    /// those other inputs then satisfy their ODC condition. `Xor`, `Xnor`,
    /// `Buf` and `Inv` have no controlling value (every input is always
    /// observable), which is exactly why the paper's Definition 1 excludes
    /// them as *primary* gates.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            PrimitiveFn::And | PrimitiveFn::Nand => Some(false),
            PrimitiveFn::Or | PrimitiveFn::Nor => Some(true),
            _ => None,
        }
    }

    /// The output value forced when any input takes the controlling value.
    ///
    /// Returns `None` for functions without a controlling value.
    pub fn controlled_output(self) -> Option<bool> {
        match self {
            PrimitiveFn::And => Some(false),
            PrimitiveFn::Nand => Some(true),
            PrimitiveFn::Or => Some(true),
            PrimitiveFn::Nor => Some(false),
            _ => None,
        }
    }

    /// True if an `arity`-input instance has a non-zero ODC condition with
    /// respect to each input — i.e. there exist values of the other inputs
    /// that make an input unobservable (the paper's "Table I" gates).
    pub fn has_nonzero_odc(self, arity: usize) -> bool {
        arity >= 2 && self.controlling_value().is_some()
    }

    /// The value which, supplied on one *extra* input of the widened
    /// function, leaves the function of the original inputs unchanged.
    ///
    /// For the AND-plane (`And`, `Nand`) this is 1; for the OR- and
    /// XOR-planes (`Or`, `Nor`, `Xor`, `Xnor`) this is 0. `Buf` and `Inv`
    /// cannot be widened in place (they must be converted to `And`/`Nand`
    /// first) and return `None`.
    ///
    /// # Example
    ///
    /// ```
    /// use odcfp_logic::PrimitiveFn;
    ///
    /// assert_eq!(PrimitiveFn::And.neutral_input_value(), Some(true));
    /// assert_eq!(PrimitiveFn::Nor.neutral_input_value(), Some(false));
    /// assert_eq!(PrimitiveFn::Inv.neutral_input_value(), None);
    /// ```
    pub fn neutral_input_value(self) -> Option<bool> {
        match self {
            PrimitiveFn::And | PrimitiveFn::Nand => Some(true),
            PrimitiveFn::Or | PrimitiveFn::Nor | PrimitiveFn::Xor | PrimitiveFn::Xnor => {
                Some(false)
            }
            PrimitiveFn::Buf | PrimitiveFn::Inv => None,
        }
    }

    /// The widened form of the function used when a trigger input is added.
    ///
    /// `Buf` widens to `And` and `Inv` to `Nand` (with a constant-one-like
    /// neutral trigger); every other function keeps its kind at arity + 1.
    pub fn widened(self) -> PrimitiveFn {
        match self {
            PrimitiveFn::Buf => PrimitiveFn::And,
            PrimitiveFn::Inv => PrimitiveFn::Nand,
            other => other,
        }
    }

    /// True if the output is the complement of the underlying plane
    /// (`Nand`, `Nor`, `Xnor`, `Inv`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            PrimitiveFn::Nand | PrimitiveFn::Nor | PrimitiveFn::Xnor | PrimitiveFn::Inv
        )
    }

    /// For an AND-like or OR-like function, the value `v` such that the
    /// output equal to `f(nc, nc, ...)`-with-one-input-`x` is a *transparent*
    /// function of `x`... more precisely: given that the function's output is
    /// `o` when some input is at its controlling value `c`, this returns
    /// `(c, o)` as a pair for convenience in ODC reasoning.
    ///
    /// Returns `None` for functions without a controlling value.
    pub fn control_pair(self) -> Option<(bool, bool)> {
        Some((self.controlling_value()?, self.controlled_output()?))
    }

    /// Canonical lowercase name (`"and"`, `"nor"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveFn::Buf => "buf",
            PrimitiveFn::Inv => "inv",
            PrimitiveFn::And => "and",
            PrimitiveFn::Or => "or",
            PrimitiveFn::Nand => "nand",
            PrimitiveFn::Nor => "nor",
            PrimitiveFn::Xor => "xor",
            PrimitiveFn::Xnor => "xnor",
        }
    }
}

impl fmt::Display for PrimitiveFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`PrimitiveFn`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrimitiveFnError(pub String);

impl fmt::Display for ParsePrimitiveFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown primitive function name: {:?}", self.0)
    }
}

impl std::error::Error for ParsePrimitiveFnError {}

impl FromStr for PrimitiveFn {
    type Err = ParsePrimitiveFnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "buf" | "buff" => Ok(PrimitiveFn::Buf),
            "inv" | "not" => Ok(PrimitiveFn::Inv),
            "and" => Ok(PrimitiveFn::And),
            "or" => Ok(PrimitiveFn::Or),
            "nand" => Ok(PrimitiveFn::Nand),
            "nor" => Ok(PrimitiveFn::Nor),
            "xor" => Ok(PrimitiveFn::Xor),
            "xnor" => Ok(PrimitiveFn::Xnor),
            other => Err(ParsePrimitiveFnError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_truth_tables() {
        for f in PrimitiveFn::ALL {
            let arities: &[usize] = if f.is_single_input() { &[1] } else { &[2, 3, 4] };
            for &n in arities {
                let tt = f.truth_table(n);
                for i in 0..(1usize << n) {
                    let bits: Vec<bool> = (0..n).map(|v| (i >> v) & 1 == 1).collect();
                    assert_eq!(tt.eval(i), f.eval(&bits), "{f} arity {n} row {i}");
                }
            }
        }
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        // Pack all 16 assignments of a 4-input function into one word per pin.
        for f in [
            PrimitiveFn::And,
            PrimitiveFn::Or,
            PrimitiveFn::Nand,
            PrimitiveFn::Nor,
            PrimitiveFn::Xor,
            PrimitiveFn::Xnor,
        ] {
            let mut pins = [0u64; 4];
            for i in 0..16 {
                for (v, pin) in pins.iter_mut().enumerate() {
                    if (i >> v) & 1 == 1 {
                        *pin |= 1 << i;
                    }
                }
            }
            let out = f.eval_words(&pins);
            for i in 0..16 {
                let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
                assert_eq!((out >> i) & 1 == 1, f.eval(&bits), "{f} row {i}");
            }
        }
    }

    #[test]
    fn controlling_values_control() {
        for f in PrimitiveFn::ALL {
            if let Some(c) = f.controlling_value() {
                let o = f.controlled_output().unwrap();
                for n in 2..=4 {
                    for i in 0..(1usize << n) {
                        for pin in 0..n {
                            let mut bits: Vec<bool> = (0..n).map(|v| (i >> v) & 1 == 1).collect();
                            bits[pin] = c;
                            assert_eq!(f.eval(&bits), o, "{f} pin {pin} row {i}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn neutral_value_is_neutral() {
        for f in [
            PrimitiveFn::And,
            PrimitiveFn::Or,
            PrimitiveFn::Nand,
            PrimitiveFn::Nor,
            PrimitiveFn::Xor,
            PrimitiveFn::Xnor,
        ] {
            let nv = f.neutral_input_value().unwrap();
            for n in 2..=3 {
                for i in 0..(1usize << n) {
                    let bits: Vec<bool> = (0..n).map(|v| (i >> v) & 1 == 1).collect();
                    let mut wide = bits.clone();
                    wide.push(nv);
                    assert_eq!(f.eval(&bits), f.eval(&wide), "{f} arity {n} row {i}");
                }
            }
        }
    }

    #[test]
    fn widening_buf_inv_preserves_function() {
        // Buf(a) == And(a, 1) and Inv(a) == Nand(a, 1).
        for a in [false, true] {
            assert_eq!(
                PrimitiveFn::Buf.eval(&[a]),
                PrimitiveFn::Buf.widened().eval(&[a, true])
            );
            assert_eq!(
                PrimitiveFn::Inv.eval(&[a]),
                PrimitiveFn::Inv.widened().eval(&[a, true])
            );
        }
    }

    #[test]
    fn nonzero_odc_table() {
        // The paper's Table I: AND/OR/NAND/NOR have exploitable ODCs,
        // XOR/XNOR do not, BUF/INV are "single input gates".
        assert!(PrimitiveFn::And.has_nonzero_odc(2));
        assert!(PrimitiveFn::Nor.has_nonzero_odc(4));
        assert!(!PrimitiveFn::Xor.has_nonzero_odc(2));
        assert!(!PrimitiveFn::Xnor.has_nonzero_odc(3));
        assert!(!PrimitiveFn::Inv.has_nonzero_odc(1));
        assert!(!PrimitiveFn::And.has_nonzero_odc(1));
    }

    #[test]
    fn odc_from_truth_table_matches_controlling_reasoning() {
        // For And(x0, x1, x2): ODC of x0 == (x1' | x2').
        let f = PrimitiveFn::And.truth_table(3);
        let odc0 = f.odc(0);
        let expect = &!&TruthTable::var(1, 3) | &!&TruthTable::var(2, 3);
        assert_eq!(odc0, expect);
        // For Nor(x0, x1): ODC of x0 == x1.
        let g = PrimitiveFn::Nor.truth_table(2);
        assert_eq!(g.odc(0), TruthTable::var(1, 2));
    }

    #[test]
    fn parse_roundtrip() {
        for f in PrimitiveFn::ALL {
            assert_eq!(f.name().parse::<PrimitiveFn>().unwrap(), f);
            assert_eq!(f.name().to_uppercase().parse::<PrimitiveFn>().unwrap(), f);
        }
        assert!("mux".parse::<PrimitiveFn>().is_err());
    }
}
