//! Bit-packed complete truth tables.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum number of variables a [`TruthTable`] may have.
///
/// 16 variables corresponds to a 64 Ki-bit (8 KiB) table, which is more than
/// enough for the *local* Boolean reasoning the fingerprinting method needs
/// (library cells have at most a handful of pins, and ODC windows are small).
pub const MAX_VARS: usize = 16;

/// A complete truth table over `num_vars` Boolean variables.
///
/// Bit `i` of the table is the value of the function on the input assignment
/// whose binary encoding is `i`, with variable 0 as the least significant
/// bit. Tables are stored in 64-bit words; for fewer than 6 variables only
/// the low `2^num_vars` bits of the single word are meaningful and the rest
/// are kept zeroed (a *normalized* representation), so `Eq`/`Hash` are
/// structural.
///
/// # Example
///
/// ```
/// use odcfp_logic::TruthTable;
///
/// let x = TruthTable::var(0, 2);
/// let y = TruthTable::var(1, 2);
/// let f = &x & &y;
/// assert!(f.eval(0b11));
/// assert!(!f.eval(0b01));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn num_words(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

/// Mask selecting the meaningful bits of the (single) word of a table with
/// `num_vars <= 6` variables.
fn tail_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

/// Patterns of variable `v < 6` within one 64-bit word: bit `i` is the value
/// of variable `v` in assignment `i`.
const VAR_PATTERN: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Creates the constant-zero function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn zero(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "too many truth table variables");
        TruthTable {
            num_vars,
            words: vec![0; num_words(num_vars)],
        }
    }

    /// Creates the constant-one function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn one(num_vars: usize) -> Self {
        let mut t = TruthTable::zero(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.normalize();
        t
    }

    /// Creates the projection function of variable `var` over `num_vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > MAX_VARS`.
    pub fn var(var: usize, num_vars: usize) -> Self {
        assert!(var < num_vars, "variable index out of range");
        let mut t = TruthTable::zero(num_vars);
        if var < 6 {
            for w in &mut t.words {
                *w = VAR_PATTERN[var];
            }
        } else {
            let stride = 1 << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / stride) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.normalize();
        t
    }

    /// Builds a table by evaluating `f` on every input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut t = TruthTable::zero(num_vars);
        for i in 0..(1usize << num_vars) {
            if f(i) {
                t.words[i >> 6] |= 1 << (i & 63);
            }
        }
        t
    }

    /// The number of variables of this function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of input assignments (`2^num_vars`).
    pub fn num_rows(&self) -> usize {
        1 << self.num_vars
    }

    /// Evaluates the function on the assignment encoded by the low
    /// `num_vars` bits of `assignment` (variable 0 is the LSB).
    pub fn eval(&self, assignment: usize) -> bool {
        let i = assignment & (self.num_rows() - 1);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// The number of satisfying assignments (the size of the on-set).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant one.
    pub fn is_one(&self) -> bool {
        self.count_ones() == self.num_rows()
    }

    /// True if the function is constant (zero or one).
    pub fn is_constant(&self) -> bool {
        self.is_zero() || self.is_one()
    }

    /// The positive cofactor (`value = true`) or negative cofactor
    /// (`value = false`) with respect to `var`.
    ///
    /// The result has the same variable count; it simply no longer depends
    /// on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.num_vars, "variable index out of range");
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            let pat = VAR_PATTERN[var];
            for w in &mut out.words {
                if value {
                    let hi = *w & pat;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !pat;
                    *w = lo | (lo << shift);
                }
            }
        } else {
            let stride = 1 << (var - 6);
            let n = out.words.len();
            for block in (0..n).step_by(2 * stride) {
                for k in 0..stride {
                    let src = if value { block + stride + k } else { block + k };
                    let v = out.words[src];
                    out.words[block + k] = v;
                    out.words[block + stride + k] = v;
                }
            }
        }
        out.normalize();
        out
    }

    /// The Boolean difference `∂F/∂x = F_x ^ F_x'` with respect to `var`.
    ///
    /// The difference is one exactly on the assignments (of the *other*
    /// variables) where toggling `var` toggles the function, i.e. where
    /// `var` is observable.
    pub fn boolean_difference(&self, var: usize) -> Self {
        &self.cofactor(var, true) ^ &self.cofactor(var, false)
    }

    /// The Observability Don't Care condition of `var`: equation (1) of the
    /// paper, `ODC_x = (∂F/∂x)'`.
    ///
    /// The result is one on the assignments where the value of `var` cannot
    /// be observed at the function output.
    ///
    /// # Example
    ///
    /// ```
    /// use odcfp_logic::{PrimitiveFn, TruthTable};
    ///
    /// // For a 2-input OR, input 0 is unobservable when input 1 is 1.
    /// let f = PrimitiveFn::Or.truth_table(2);
    /// assert_eq!(f.odc(0), TruthTable::var(1, 2));
    /// ```
    pub fn odc(&self, var: usize) -> Self {
        !&self.boolean_difference(var)
    }

    /// True if the function actually depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        !self.boolean_difference(var).is_zero()
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Returns the same function extended to `num_vars` variables (the new
    /// variables are don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is smaller than the current variable count or
    /// larger than [`MAX_VARS`].
    pub fn extended_to(&self, num_vars: usize) -> Self {
        assert!(num_vars >= self.num_vars, "cannot shrink a truth table");
        let mut out = TruthTable::zero(num_vars);
        let rows = self.num_rows();
        for i in 0..out.num_rows() {
            if self.eval(i % rows) {
                out.words[i >> 6] |= 1 << (i & 63);
            }
        }
        out
    }

    /// Returns the function with inputs `a` and `b` swapped.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn swapped(&self, a: usize, b: usize) -> Self {
        assert!(a < self.num_vars && b < self.num_vars);
        if a == b {
            return self.clone();
        }
        TruthTable::from_fn(self.num_vars, |i| {
            let bit_a = (i >> a) & 1;
            let bit_b = (i >> b) & 1;
            let j = (i & !(1 << a) & !(1 << b)) | (bit_b << a) | (bit_a << b);
            self.eval(j)
        })
    }

    /// Composes `self` with `g` substituted for variable `var`.
    ///
    /// `g` must have the same variable count as `self`; the result is
    /// `self[var := g]`, the standard Boolean function composition used to
    /// propagate ODC conditions through a window.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ or `var` is out of range.
    pub fn compose(&self, var: usize, g: &TruthTable) -> Self {
        assert_eq!(self.num_vars, g.num_vars, "mismatched variable counts");
        assert!(var < self.num_vars);
        let f1 = self.cofactor(var, true);
        let f0 = self.cofactor(var, false);
        &(&f1 & g) | &(&f0 & &!g)
    }

    fn normalize(&mut self) {
        let m = tail_mask(self.num_vars);
        if let Some(w) = self.words.first_mut() {
            *w &= m;
        }
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.normalize();
        out
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_op:tt) => {
        impl $trait<&TruthTable> for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(
                    self.num_vars, rhs.num_vars,
                    "mismatched truth table variable counts"
                );
                let mut out = self.clone();
                for (w, r) in out.words.iter_mut().zip(&rhs.words) {
                    *w $assign_op *r;
                }
                out
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &=);
impl_binop!(BitOr, bitor, |=);
impl_binop!(BitXor, bitxor, ^=);

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars: ", self.num_vars)?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    /// Hexadecimal on-set encoding, most significant row first (the format
    /// used by ABC's `print_truth`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.num_rows().max(4)) / 4;
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let nibble = (self.words[d / 16] >> ((d % 16) * 4)) & 0xF;
            // A masked nibble is always < 16, so the digit always exists.
            s.push(char::from_digit(nibble as u32, 16).unwrap_or('?'));
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..=8 {
            assert!(TruthTable::zero(n).is_zero());
            assert!(TruthTable::one(n).is_one());
            assert_eq!(TruthTable::one(n).count_ones(), 1 << n);
            assert!(!TruthTable::zero(n).is_one() || n == usize::MAX);
        }
    }

    #[test]
    fn var_projection() {
        for n in 1..=9 {
            for v in 0..n {
                let t = TruthTable::var(v, n);
                for i in 0..(1usize << n) {
                    assert_eq!(t.eval(i), (i >> v) & 1 == 1, "n={n} v={v} i={i}");
                }
            }
        }
    }

    #[test]
    fn ops_match_bitwise_semantics() {
        let n = 7;
        let a = TruthTable::from_fn(n, |i| i.count_ones() % 3 == 0);
        let b = TruthTable::from_fn(n, |i| i % 5 < 2);
        for i in 0..(1usize << n) {
            assert_eq!((&a & &b).eval(i), a.eval(i) && b.eval(i));
            assert_eq!((&a | &b).eval(i), a.eval(i) || b.eval(i));
            assert_eq!((&a ^ &b).eval(i), a.eval(i) ^ b.eval(i));
            assert_eq!((!&a).eval(i), !a.eval(i));
        }
    }

    #[test]
    fn cofactor_small_and_large_vars() {
        let n = 8;
        let f = TruthTable::from_fn(n, |i| (i * 2654435761) & 0x10 != 0);
        for v in 0..n {
            let c1 = f.cofactor(v, true);
            let c0 = f.cofactor(v, false);
            for i in 0..(1usize << n) {
                assert_eq!(c1.eval(i), f.eval(i | (1 << v)), "v={v} i={i}");
                assert_eq!(c0.eval(i), f.eval(i & !(1 << v)), "v={v} i={i}");
                // Cofactors do not depend on v.
                assert!(!c1.depends_on(v));
                assert!(!c0.depends_on(v));
            }
        }
    }

    #[test]
    fn odc_of_and_gate_is_complement_of_other_input() {
        // Paper Figure 3 / Section III-A: for F = x & y, ODC_x = y'.
        let x = TruthTable::var(0, 2);
        let y = TruthTable::var(1, 2);
        let f = &x & &y;
        assert_eq!(f.odc(0), !&y);
        assert_eq!(f.odc(1), !&x);
    }

    #[test]
    fn odc_of_xor_is_empty() {
        let f = &TruthTable::var(0, 2) ^ &TruthTable::var(1, 2);
        assert!(f.odc(0).is_zero());
        assert!(f.odc(1).is_zero());
    }

    #[test]
    fn boolean_difference_definition() {
        let n = 6;
        let f = TruthTable::from_fn(n, |i| ((i >> 1) ^ (i >> 3)) & 1 == 1 || i % 7 == 0);
        for v in 0..n {
            let bd = f.boolean_difference(v);
            for i in 0..(1usize << n) {
                let toggles = f.eval(i) != f.eval(i ^ (1 << v));
                assert_eq!(bd.eval(i), toggles);
                assert_eq!(f.odc(v).eval(i), !toggles);
            }
        }
    }

    #[test]
    fn support_and_depends() {
        let n = 5;
        let f = &TruthTable::var(1, n) & &TruthTable::var(3, n);
        assert_eq!(f.support(), vec![1, 3]);
        assert!(!f.depends_on(0));
        assert!(f.depends_on(3));
        assert!(TruthTable::one(n).support().is_empty());
    }

    #[test]
    fn extend_preserves_function() {
        let f = &TruthTable::var(0, 2) ^ &TruthTable::var(1, 2);
        let g = f.extended_to(5);
        assert_eq!(g.num_vars(), 5);
        for i in 0..32 {
            assert_eq!(g.eval(i), f.eval(i & 3));
        }
        assert!(!g.depends_on(4));
    }

    #[test]
    fn swap_vars() {
        let n = 4;
        let f = TruthTable::from_fn(n, |i| i % 3 == 1);
        let g = f.swapped(1, 3);
        for i in 0..(1usize << n) {
            let b1 = (i >> 1) & 1;
            let b3 = (i >> 3) & 1;
            let j = (i & !0b1010) | (b3 << 1) | (b1 << 3);
            assert_eq!(g.eval(i), f.eval(j));
        }
        assert_eq!(g.swapped(1, 3), f);
    }

    #[test]
    fn compose_substitutes() {
        // f = a & b, substitute b := a | c  =>  a & (a | c) = a.
        let n = 3;
        let a = TruthTable::var(0, n);
        let b = TruthTable::var(1, n);
        let c = TruthTable::var(2, n);
        let f = &a & &b;
        let g = &a | &c;
        assert_eq!(f.compose(1, &g), a);
    }

    #[test]
    fn max_vars_tables_work() {
        let t = TruthTable::var(MAX_VARS - 1, MAX_VARS);
        assert_eq!(t.count_ones(), 1 << (MAX_VARS - 1));
        let u = !&t;
        assert_eq!((&t & &u).count_ones(), 0);
        assert!((&t | &u).is_one());
        assert!(t.depends_on(MAX_VARS - 1));
        assert!(!t.depends_on(0));
    }

    #[test]
    #[should_panic(expected = "too many truth table variables")]
    fn too_many_vars_rejected() {
        let _ = TruthTable::zero(MAX_VARS + 1);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrinking_rejected() {
        let t = TruthTable::zero(4);
        let _ = t.extended_to(2);
    }

    #[test]
    fn display_hex() {
        let f = PrimAnd2::table();
        assert_eq!(f.to_string(), "8");
        let or3 = crate::PrimitiveFn::Or.truth_table(3);
        assert_eq!(or3.to_string(), "fe");
    }

    struct PrimAnd2;
    impl PrimAnd2 {
        fn table() -> TruthTable {
            &TruthTable::var(0, 2) & &TruthTable::var(1, 2)
        }
    }
}
