//! Helpers for 64-way bit-parallel logic simulation.
//!
//! A *pattern word* carries 64 independent input assignments, one per bit.
//! Simulating a netlist over `w` words therefore evaluates `64·w` random
//! vectors in one topological sweep — the workhorse behind both the fast
//! (probabilistic) equivalence check and the switching-activity power model.

use crate::rng::Xoshiro256;

/// Number of 64-bit lanes in a simulation [`Block`].
pub const BLOCK_LANES: usize = 4;

/// A 256-bit simulation block: four independent pattern words evaluated
/// together, so the inner gate-evaluation loop amortizes per-gate dispatch
/// over 256 patterns and the compiler can keep the lanes in vector
/// registers.
pub type Block = [u64; BLOCK_LANES];

/// The all-zeros block.
pub const ZERO_BLOCK: Block = [0; BLOCK_LANES];

/// Gathers lanes `word..word + BLOCK_LANES` of `stream` into a block,
/// zero-padding past the end of the stream.
pub fn gather_block(stream: &[u64], word: usize) -> Block {
    let mut b = ZERO_BLOCK;
    for (lane, slot) in b.iter_mut().enumerate() {
        if let Some(&w) = stream.get(word + lane) {
            *slot = w;
        }
    }
    b
}

/// Fills `words` with uniformly random pattern bits.
pub fn fill_random(rng: &mut Xoshiro256, words: &mut [u64]) {
    for w in words.iter_mut() {
        *w = rng.next_u64();
    }
}

/// Allocates `num_words` random pattern words.
pub fn random_words(rng: &mut Xoshiro256, num_words: usize) -> Vec<u64> {
    let mut v = vec![0u64; num_words];
    fill_random(rng, &mut v);
    v
}

/// Generates the first `2^num_vars` exhaustive patterns for `num_vars`
/// signals, packed into words: element `[v][w]` is pattern word `w` of
/// signal `v`. Useful for exhaustively simulating small circuits.
///
/// # Panics
///
/// Panics if `num_vars > 16` (the exhaustive pattern set would exceed
/// practical sizes).
pub fn exhaustive_patterns(num_vars: usize) -> Vec<Vec<u64>> {
    assert!(num_vars <= 16, "exhaustive simulation limited to 16 inputs");
    let rows = 1usize << num_vars;
    let num_words = rows.div_ceil(64);
    let mut out = vec![vec![0u64; num_words]; num_vars];
    for (v, signal) in out.iter_mut().enumerate() {
        for row in 0..rows {
            if (row >> v) & 1 == 1 {
                signal[row >> 6] |= 1 << (row & 63);
            }
        }
    }
    out
}

/// Number of bit positions that differ between two equally-long pattern
/// streams.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn count_mismatches(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "pattern stream length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x ^ y).count_ones() as usize)
        .sum()
}

/// Number of 0↔1 transitions a signal makes across consecutive patterns
/// within each word (the toggle count used by the power model).
///
/// Bit `i` and bit `i+1` of each word are treated as consecutive time steps;
/// word boundaries also chain (bit 63 of word `w` precedes bit 0 of word
/// `w+1`).
pub fn toggle_count(words: &[u64]) -> usize {
    let mut toggles = 0usize;
    let mut prev_msb: Option<bool> = None;
    for &w in words {
        // `w ^ (w >> 1)` compares bit i with bit i+1; bit 63 of the XOR
        // compares against a shifted-in zero and must be discarded.
        toggles += ((w ^ (w >> 1)) & (u64::MAX >> 1)).count_ones() as usize;
        if let Some(p) = prev_msb {
            if p != (w & 1 == 1) {
                toggles += 1;
            }
        }
        prev_msb = Some(w >> 63 == 1);
    }
    toggles
}

/// Fraction of one-bits in a pattern stream (signal probability estimate).
pub fn one_density(words: &[u64]) -> f64 {
    if words.is_empty() {
        return 0.0;
    }
    let ones: usize = words.iter().map(|w| w.count_ones() as usize).sum();
    ones as f64 / (words.len() * 64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_patterns_enumerate_assignments() {
        let pats = exhaustive_patterns(3);
        assert_eq!(pats.len(), 3);
        assert_eq!(pats[0].len(), 1);
        for row in 0..8usize {
            for (v, pat) in pats.iter().enumerate() {
                let bit = (pat[0] >> row) & 1 == 1;
                assert_eq!(bit, (row >> v) & 1 == 1, "row {row} var {v}");
            }
        }
    }

    #[test]
    fn exhaustive_patterns_multiword() {
        let pats = exhaustive_patterns(8);
        assert_eq!(pats[0].len(), 4);
        for row in [0usize, 63, 64, 200, 255] {
            for (v, pat) in pats.iter().enumerate() {
                let bit = (pat[row >> 6] >> (row & 63)) & 1 == 1;
                assert_eq!(bit, (row >> v) & 1 == 1);
            }
        }
    }

    #[test]
    fn mismatch_count() {
        assert_eq!(count_mismatches(&[0b1010], &[0b1010]), 0);
        assert_eq!(count_mismatches(&[0b1010], &[0b0110]), 2);
        assert_eq!(count_mismatches(&[u64::MAX, 0], &[0, 0]), 64);
    }

    #[test]
    fn toggles_within_word() {
        // 0b0011: one transition (bit1 -> bit2).
        assert_eq!(toggle_count(&[0b0011]), 1);
        // 0b0101: transitions at every step among low 3 bits + step to 0s.
        // bits: 1,0,1,0,0,...  -> 1->0, 0->1, 1->0 = 3 transitions.
        assert_eq!(toggle_count(&[0b0101]), 3);
        assert_eq!(toggle_count(&[0]), 0);
        assert_eq!(toggle_count(&[u64::MAX]), 0);
    }

    #[test]
    fn toggles_across_word_boundary() {
        // Word 0 ends in 1 (MSB set), word 1 starts with 0.
        let w0 = 1u64 << 63;
        // Inside w0: bits 0..62 are 0, bit 63 is 1 -> one transition.
        assert_eq!(toggle_count(&[w0]), 1);
        assert_eq!(toggle_count(&[w0, 0]), 2);
        // [1<<63, 1]: ...0→1 at the top of word 0, then 1→1 across the
        // boundary (no toggle), then 1→0 inside word 1.
        assert_eq!(toggle_count(&[w0, 1]), 2);
    }

    #[test]
    fn density() {
        assert_eq!(one_density(&[]), 0.0);
        assert_eq!(one_density(&[u64::MAX]), 1.0);
        assert!((one_density(&[0xFFFF_FFFF_0000_0000]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_fill_uses_rng() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let a = random_words(&mut rng, 8);
        let mut rng2 = Xoshiro256::seed_from_u64(11);
        let b = random_words(&mut rng2, 8);
        assert_eq!(a, b);
        assert!(a.iter().any(|&w| w != 0));
    }
}
