//! Boolean-function substrate for the ODC-fingerprint workspace.
//!
//! This crate provides the low-level Boolean machinery every other crate in
//! the workspace builds on:
//!
//! * [`TruthTable`] — a bit-packed complete truth table over up to
//!   [`MAX_VARS`] variables, with cofactors, the Boolean difference and the
//!   Observability Don't Care (ODC) operator from equation (1) of the paper:
//!   `ODC_x(F) = !(F_x ^ F_x')`.
//! * [`PrimitiveFn`] — the Boolean functions realizable by the standard-cell
//!   library (AND/OR/NAND/NOR/XOR/XNOR/BUF/INV) together with the
//!   *controlling value* and *neutral value* notions that the fingerprinting
//!   method relies on.
//! * [`Sop`] / [`Cube`] — sum-of-products covers in the style of BLIF
//!   `.names` rows.
//! * [`rng::Xoshiro256`] — a tiny, dependency-free, deterministic PRNG so
//!   every experiment in the workspace is exactly reproducible.
//! * [`sim`] — helpers for 64-way bit-parallel logic simulation.
//!
//! # Example
//!
//! Computing the ODC of one input of a 2-input AND (the paper's Figure 3):
//!
//! ```
//! use odcfp_logic::{PrimitiveFn, TruthTable};
//!
//! // F(x, y) = x & y; the ODC of x is y' — x is unobservable when y = 0.
//! let f = PrimitiveFn::And.truth_table(2);
//! let odc_x = f.odc(0);
//! assert_eq!(odc_x, !&TruthTable::var(1, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod primitive;
pub mod rng;
pub mod sim;
mod tt;

pub use cube::{Cube, CubeLit, ParseCubeError, Sop};
pub use primitive::PrimitiveFn;
pub use tt::{TruthTable, MAX_VARS};
