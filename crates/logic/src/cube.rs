//! Cubes and sum-of-products covers in the style of BLIF `.names` bodies.

use std::fmt;

use crate::TruthTable;

/// A single literal position inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubeLit {
    /// The input must be 0 (`0` in BLIF).
    Zero,
    /// The input must be 1 (`1` in BLIF).
    One,
    /// The input is not tested (`-` in BLIF).
    DontCare,
}

impl CubeLit {
    fn matches_word(self, word: u64) -> u64 {
        match self {
            CubeLit::Zero => !word,
            CubeLit::One => word,
            CubeLit::DontCare => u64::MAX,
        }
    }

    fn to_char(self) -> char {
        match self {
            CubeLit::Zero => '0',
            CubeLit::One => '1',
            CubeLit::DontCare => '-',
        }
    }
}

/// Error produced when a cube or cover row fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    /// The offending character.
    pub found: char,
    /// Its position within the row.
    pub position: usize,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} at position {}",
            self.found, self.position
        )
    }
}

impl std::error::Error for ParseCubeError {}

/// A product term over an ordered set of inputs.
///
/// # Example
///
/// ```
/// use odcfp_logic::Cube;
///
/// let c: Cube = "1-0".parse()?;
/// assert!(c.eval(&[true, true, false]));
/// assert!(c.eval(&[true, false, false]));
/// assert!(!c.eval(&[true, true, true]));
/// # Ok::<(), odcfp_logic::ParseCubeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<CubeLit>,
}

impl Cube {
    /// Creates a cube from its literals.
    pub fn new(lits: Vec<CubeLit>) -> Self {
        Cube { lits }
    }

    /// The all-don't-care cube of the given width (the constant-one product).
    pub fn tautology(width: usize) -> Self {
        Cube {
            lits: vec![CubeLit::DontCare; width],
        }
    }

    /// The number of input positions.
    pub fn width(&self) -> usize {
        self.lits.len()
    }

    /// The literals of this cube.
    pub fn lits(&self) -> &[CubeLit] {
        &self.lits
    }

    /// The number of tested (non-don't-care) positions.
    pub fn num_literals(&self) -> usize {
        self.lits
            .iter()
            .filter(|l| !matches!(l, CubeLit::DontCare))
            .count()
    }

    /// Evaluates the cube on Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.width()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.width(), "cube width mismatch");
        self.lits.iter().zip(inputs).all(|(l, &b)| match l {
            CubeLit::Zero => !b,
            CubeLit::One => b,
            CubeLit::DontCare => true,
        })
    }

    /// Evaluates the cube on 64 assignments at once.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.width()`.
    pub fn eval_words(&self, inputs: &[u64]) -> u64 {
        assert_eq!(inputs.len(), self.width(), "cube width mismatch");
        self.lits
            .iter()
            .zip(inputs)
            .fold(u64::MAX, |acc, (l, &w)| acc & l.matches_word(w))
    }
}

impl std::str::FromStr for Cube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lits = Vec::with_capacity(s.len());
        for (position, ch) in s.chars().enumerate() {
            lits.push(match ch {
                '0' => CubeLit::Zero,
                '1' => CubeLit::One,
                '-' | '~' | '2' => CubeLit::DontCare,
                found => return Err(ParseCubeError { found, position }),
            });
        }
        Ok(Cube { lits })
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lits {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

/// A sum-of-products cover: the function is `output_value` whenever any cube
/// matches, and `!output_value` otherwise (BLIF on-set/off-set semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    num_inputs: usize,
    cubes: Vec<Cube>,
    output_value: bool,
}

impl Sop {
    /// Creates a cover from cubes.
    ///
    /// `output_value = true` means the cubes describe the on-set (the common
    /// case); `false` means they describe the off-set.
    ///
    /// # Panics
    ///
    /// Panics if any cube's width differs from `num_inputs`.
    pub fn new(num_inputs: usize, cubes: Vec<Cube>, output_value: bool) -> Self {
        for c in &cubes {
            assert_eq!(c.width(), num_inputs, "cube width mismatch");
        }
        Sop {
            num_inputs,
            cubes,
            output_value,
        }
    }

    /// The constant function with no cubes: evaluates to `!output_value`
    /// everywhere. A BLIF `.names` with no rows is constant 0.
    pub fn constant(num_inputs: usize, value: bool) -> Self {
        if value {
            // Constant one: a single tautology cube in the on-set.
            Sop::new(num_inputs, vec![Cube::tautology(num_inputs)], true)
        } else {
            Sop::new(num_inputs, Vec::new(), true)
        }
    }

    /// The number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Whether the cubes describe the on-set (`true`) or off-set (`false`).
    pub fn output_value(&self) -> bool {
        self.output_value
    }

    /// Evaluates the cover on Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        let hit = self.cubes.iter().any(|c| c.eval(inputs));
        hit == self.output_value
    }

    /// Evaluates the cover on 64 assignments at once.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_words(&self, inputs: &[u64]) -> u64 {
        let hit = self
            .cubes
            .iter()
            .fold(0u64, |acc, c| acc | c.eval_words(inputs));
        if self.output_value {
            hit
        } else {
            !hit
        }
    }

    /// The complete truth table of the cover.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs >` [`crate::MAX_VARS`].
    pub fn truth_table(&self) -> TruthTable {
        TruthTable::from_fn(self.num_inputs, |i| {
            let bits: Vec<bool> = (0..self.num_inputs).map(|v| (i >> v) & 1 == 1).collect();
            self.eval(&bits)
        })
    }

    /// The total number of cube rows.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_parse_and_display_roundtrip() {
        let c: Cube = "10-1".parse().unwrap();
        assert_eq!(c.to_string(), "10-1");
        assert_eq!(c.width(), 4);
        assert_eq!(c.num_literals(), 3);
        let err = "10x".parse::<Cube>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.found, 'x');
    }

    #[test]
    fn cube_eval_scalar_and_words_agree() {
        let c: Cube = "1-0".parse().unwrap();
        let mut pins = [0u64; 3];
        for i in 0..8usize {
            for (v, p) in pins.iter_mut().enumerate() {
                if (i >> v) & 1 == 1 {
                    *p |= 1 << i;
                }
            }
        }
        let words = c.eval_words(&pins);
        for i in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!((words >> i) & 1 == 1, c.eval(&bits), "row {i}");
        }
    }

    #[test]
    fn sop_onset_semantics() {
        // f = a'b + c (three inputs a=0, b=1, c=2).
        let sop = Sop::new(
            3,
            vec!["01-".parse().unwrap(), "--1".parse().unwrap()],
            true,
        );
        assert!(sop.eval(&[false, true, false]));
        assert!(sop.eval(&[true, true, true]));
        assert!(!sop.eval(&[true, true, false]));
        let tt = sop.truth_table();
        assert_eq!(tt.count_ones(), 5);
    }

    #[test]
    fn sop_offset_semantics() {
        // Cubes describe when the output is 0: f = !(a & b).
        let sop = Sop::new(2, vec!["11".parse().unwrap()], false);
        assert!(sop.eval(&[false, true]));
        assert!(!sop.eval(&[true, true]));
        assert_eq!(
            sop.truth_table(),
            crate::PrimitiveFn::Nand.truth_table(2)
        );
    }

    #[test]
    fn empty_cover_is_constant() {
        let zero = Sop::constant(2, false);
        let one = Sop::constant(2, true);
        assert!(zero.truth_table().is_zero());
        assert!(one.truth_table().is_one());
    }

    #[test]
    fn accessors() {
        let c = Cube::tautology(3);
        assert_eq!(c.num_literals(), 0);
        assert_eq!(c.lits().len(), 3);
        assert_eq!(c.to_string(), "---");
        let sop = Sop::new(2, vec!["11".parse().unwrap()], true);
        assert_eq!(sop.num_inputs(), 2);
        assert_eq!(sop.num_cubes(), 1);
        assert!(sop.output_value());
        assert_eq!(sop.cubes().len(), 1);
        let err = ParseCubeError { found: 'z', position: 4 };
        assert!(err.to_string().contains("'z'"));
    }

    #[test]
    fn sop_words_match_truth_table() {
        let sop = Sop::new(
            4,
            vec![
                "1--0".parse().unwrap(),
                "0110".parse().unwrap(),
                "---1".parse().unwrap(),
            ],
            true,
        );
        let tt = sop.truth_table();
        let mut pins = [0u64; 4];
        for i in 0..16usize {
            for (v, p) in pins.iter_mut().enumerate() {
                if (i >> v) & 1 == 1 {
                    *p |= 1 << i;
                }
            }
        }
        let w = sop.eval_words(&pins);
        for i in 0..16usize {
            assert_eq!((w >> i) & 1 == 1, tt.eval(i));
        }
    }
}
