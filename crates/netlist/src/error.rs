//! Structural validation errors.

use std::fmt;

use crate::{GateId, NetId};

/// A structural defect found by [`crate::Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net has no driver (neither a gate, a primary input, nor a constant).
    UndrivenNet {
        /// The floating net.
        net: NetId,
        /// Its name.
        name: String,
    },
    /// A gate's input count does not match its cell's arity.
    ArityMismatch {
        /// The offending gate.
        gate: GateId,
        /// The cell's declared arity.
        expected: usize,
        /// The connected input count.
        found: usize,
    },
    /// The gate graph contains a combinational cycle.
    CombinationalCycle {
        /// A gate participating in the cycle.
        gate: GateId,
    },
    /// A primary output net does not exist or is unconnected.
    DanglingOutput {
        /// The output net.
        net: NetId,
    },
    /// A net's recorded sink list disagrees with gate input connections.
    InconsistentSinks {
        /// The inconsistent net.
        net: NetId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet { net, name } => {
                write!(f, "net {net} ({name:?}) has no driver")
            }
            NetlistError::ArityMismatch {
                gate,
                expected,
                found,
            } => write!(
                f,
                "gate {gate} connects {found} inputs but its cell has arity {expected}"
            ),
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::DanglingOutput { net } => {
                write!(f, "primary output {net} is dangling")
            }
            NetlistError::InconsistentSinks { net } => {
                write!(f, "sink bookkeeping for net {net} is inconsistent")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
