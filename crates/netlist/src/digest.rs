//! Stable content digests for artifacts and journal records.
//!
//! Campaign runs persist fingerprinted netlists to disk and journal
//! every step; both need a digest that is (a) identical across runs,
//! platforms, and Rust releases — unlike `std::hash` hashers, whose
//! output is explicitly unstable — and (b) dependency-free. FNV-1a over
//! 64 bits fits: trivially portable, fast on short records, and strong
//! enough to flag torn writes, truncation, and bit rot (the threat model
//! here is *corruption*, not an adversary forging collisions — suspect
//! netlists are re-verified functionally, never trusted by digest).
//!
//! Digests render as `fnv1a64:<16 lowercase hex digits>` so journals
//! stay self-describing if the algorithm is ever upgraded.
//!
//! Two widths exist with distinct roles:
//!
//! * [`Digest`] (64-bit) — torn-write and corruption detection: journal
//!   line CRCs, resume-time artifact intactness. Collisions only matter
//!   if corruption happens to collide, so 64 bits is ample.
//! * [`Digest128`] (128-bit) — artifact *identity* at population scale.
//!   With n distinct artifacts the 64-bit birthday bound is about
//!   n²/2^65 (≈ 2.7×10⁻⁸ at n = 10⁶ — small per campaign, but a fleet
//!   of campaigns multiplies it, and an identity collision silently
//!   aliases two buyers). At 128 bits the bound is n²/2^129 ≈ 5×10⁻²⁷:
//!   negligible forever. Codebooks therefore key artifact identity by
//!   `fnv1a128:<32 hex>`.

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime: 2^88 + 2^8 + 0x3b.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 64-bit FNV-1a content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub u64);

impl Digest {
    /// Digests a byte string in one call.
    pub fn of(bytes: &[u8]) -> Digest {
        let mut d = Digester::new();
        d.update(bytes);
        d.finish()
    }

    /// Parses the `fnv1a64:<hex>` rendering back into a digest.
    ///
    /// Returns `None` for any other shape — unknown scheme, wrong width,
    /// non-hex digits — so journal readers treat malformed digests as
    /// corruption rather than guessing.
    pub fn parse(text: &str) -> Option<Digest> {
        let hex = text.strip_prefix("fnv1a64:")?;
        if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(Digest)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fnv1a64:{:016x}", self.0)
    }
}

/// Incremental FNV-1a 64 state, for digesting streams without buffering.
#[derive(Debug, Clone)]
pub struct Digester {
    state: u64,
}

impl Digester {
    /// Fresh state at the FNV offset basis.
    pub fn new() -> Digester {
        Digester { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for Digester {
    fn default() -> Self {
        Digester::new()
    }
}

/// A 128-bit FNV-1a content digest, for artifact identity.
///
/// See the module docs for when to prefer this over [`Digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest128(pub u128);

impl Digest128 {
    /// Digests a byte string in one call.
    pub fn of(bytes: &[u8]) -> Digest128 {
        let mut d = Digester128::new();
        d.update(bytes);
        d.finish()
    }

    /// Parses the `fnv1a128:<hex>` rendering back into a digest.
    ///
    /// Returns `None` for any other shape — unknown scheme, wrong width,
    /// non-hex digits — mirroring [`Digest::parse`].
    pub fn parse(text: &str) -> Option<Digest128> {
        let hex = text.strip_prefix("fnv1a128:")?;
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Digest128)
    }
}

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fnv1a128:{:032x}", self.0)
    }
}

/// Incremental FNV-1a 128 state, for digesting streams without buffering.
#[derive(Debug, Clone)]
pub struct Digester128 {
    state: u128,
}

impl Digester128 {
    /// Fresh state at the FNV-1a 128 offset basis.
    pub fn new() -> Digester128 {
        Digester128 {
            state: FNV128_OFFSET,
        }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        self.state = h;
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> Digest128 {
        Digest128(self.state)
    }
}

impl Default for Digester128 {
    fn default() -> Self {
        Digester128::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Noll).
        assert_eq!(Digest::of(b"").0, 0xcbf29ce484222325);
        assert_eq!(Digest::of(b"a").0, 0xaf63dc4c8601ec8c);
        assert_eq!(Digest::of(b"foobar").0, 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut d = Digester::new();
        d.update(b"foo");
        d.update(b"");
        d.update(b"bar");
        assert_eq!(d.finish(), Digest::of(b"foobar"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let d = Digest::of(b"campaign");
        let text = d.to_string();
        assert!(text.starts_with("fnv1a64:"));
        assert_eq!(text.len(), "fnv1a64:".len() + 16);
        assert_eq!(Digest::parse(&text), Some(d));
    }

    #[test]
    fn parse_rejects_malformed_renderings() {
        for bad in [
            "",
            "fnv1a64:",
            "fnv1a64:123",                      // too short
            "fnv1a64:00000000000000000",        // too long
            "fnv1a64:00000000000000zz",         // non-hex
            "sha256:0000000000000000",          // wrong scheme
            "0000000000000000",                 // no scheme
        ] {
            assert_eq!(Digest::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn matches_published_fnv1a128_vectors() {
        // Reference vectors from the FNV specification (Noll), 128-bit.
        assert_eq!(Digest128::of(b"").0, 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(Digest128::of(b"a").0, 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(
            Digest128::of(b"foobar").0,
            0x343e1662793c64bf6f0d3597ba446f18
        );
    }

    #[test]
    fn digest128_streaming_display_parse_roundtrip() {
        let mut d = Digester128::new();
        d.update(b"camp");
        d.update(b"aign");
        let one = d.finish();
        assert_eq!(one, Digest128::of(b"campaign"));
        let text = one.to_string();
        assert!(text.starts_with("fnv1a128:"));
        assert_eq!(text.len(), "fnv1a128:".len() + 32);
        assert_eq!(Digest128::parse(&text), Some(one));
        // 64-bit renderings must not parse as 128-bit and vice versa.
        assert_eq!(Digest128::parse(&Digest::of(b"campaign").to_string()), None);
        assert_eq!(Digest::parse(&text), None);
    }

    #[test]
    fn distinct_content_distinct_digest() {
        // Not a collision-resistance claim — just a sanity check that
        // nearby inputs (the realistic corruption shapes) separate.
        let base = Digest::of(b"module m(); endmodule\n");
        assert_ne!(Digest::of(b"module m(); endmodule"), base); // truncated
        assert_ne!(Digest::of(b"module n(); endmodule\n"), base); // bit flip
    }
}
