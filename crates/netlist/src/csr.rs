//! A compressed-sparse-row (CSR) adjacency view of a [`Netlist`].
//!
//! The analysis hot loops (fanout-free cones, location discovery,
//! dirty-region invalidation) are graph walks over the gate graph. Walking
//! through [`Netlist`] accessors means chasing `Vec<PinRef>` sink lists and
//! net indirections per step; this view flattens both directions into four
//! arrays built in one pass, so a traversal touches contiguous memory and
//! performs no hashing. The view is immutable and positional: it snapshots
//! the netlist it was built from and must be rebuilt (or patched by the
//! incremental analysis layer) after any mutation.

use crate::{GateId, NetDriver, Netlist, NetlistError};

/// Flat fanin/fanout adjacency arrays plus the topological order, built
/// once per netlist.
///
/// Row `g` of the fanin CSR lists the *gate* drivers of gate `g`'s input
/// pins in pin order (primary-input and constant drivers are skipped); row
/// `g` of the fanout CSR lists the sink gates of `g`'s output net in sink
/// order, with one entry per sink *pin* (a net feeding two pins of one gate
/// contributes two entries).
#[derive(Debug, Clone)]
pub struct CsrView {
    fanin_offsets: Vec<u32>,
    fanin: Vec<GateId>,
    fanout_offsets: Vec<u32>,
    fanout: Vec<GateId>,
    /// Net-level fanout of each gate's output: gate sink pins plus one if
    /// the net is a primary output.
    fanout_counts: Vec<u32>,
    /// Whether each gate's output net is (also) a primary output.
    drives_po: Vec<bool>,
    topo: Vec<GateId>,
    /// Position of each gate in `topo`, indexed by `GateId::index`.
    topo_pos: Vec<u32>,
}

impl CsrView {
    /// Builds the view from a netlist in `O(gates + pins)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gate graph is
    /// cyclic — every downstream analysis needs the topological order.
    pub fn build(netlist: &Netlist) -> Result<CsrView, NetlistError> {
        let n = netlist.num_gates();
        let topo = netlist.topo_order()?;
        let mut topo_pos = vec![0u32; n];
        for (pos, &g) in topo.iter().enumerate() {
            topo_pos[g.index()] = pos as u32;
        }

        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin = Vec::new();
        let mut fanout_counts = vec![0u32; n];
        let mut drives_po = vec![false; n];
        fanin_offsets.push(0);
        for (g, gate) in netlist.gates() {
            for &i in gate.inputs() {
                if let NetDriver::Gate(src) = netlist.net(i).driver() {
                    fanin.push(src);
                }
            }
            fanin_offsets.push(fanin.len() as u32);
            let out = netlist.net(gate.output());
            fanout_counts[g.index()] =
                (out.sinks().len() + usize::from(out.is_primary_output())) as u32;
            drives_po[g.index()] = out.is_primary_output();
        }

        let mut fanout_offsets = Vec::with_capacity(n + 1);
        let mut fanout = Vec::new();
        fanout_offsets.push(0);
        for (_, gate) in netlist.gates() {
            for p in netlist.net(gate.output()).sinks() {
                fanout.push(p.gate);
            }
            fanout_offsets.push(fanout.len() as u32);
        }

        Ok(CsrView {
            fanin_offsets,
            fanin,
            fanout_offsets,
            fanout,
            fanout_counts,
            drives_po,
            topo,
            topo_pos,
        })
    }

    /// The number of gates the view covers.
    pub fn num_gates(&self) -> usize {
        self.fanout_counts.len()
    }

    /// The gate drivers of `g`'s input pins, in pin order (primary inputs
    /// and constants omitted).
    pub fn fanins(&self, g: GateId) -> &[GateId] {
        let lo = self.fanin_offsets[g.index()] as usize;
        let hi = self.fanin_offsets[g.index() + 1] as usize;
        &self.fanin[lo..hi]
    }

    /// The sink gates of `g`'s output net, one entry per sink pin.
    pub fn fanouts(&self, g: GateId) -> &[GateId] {
        let lo = self.fanout_offsets[g.index()] as usize;
        let hi = self.fanout_offsets[g.index() + 1] as usize;
        &self.fanout[lo..hi]
    }

    /// Net-level fanout of `g`'s output (sink pins + primary output).
    pub fn fanout_count(&self, g: GateId) -> u32 {
        self.fanout_counts[g.index()]
    }

    /// Whether `g`'s output net is a primary output.
    pub fn drives_po(&self, g: GateId) -> bool {
        self.drives_po[g.index()]
    }

    /// True if `g`'s output feeds exactly one gate pin — `primary`'s — and
    /// is not a primary output (Definition 1, criterion 2).
    pub fn feeds_only(&self, g: GateId, primary: GateId) -> bool {
        !self.drives_po(g) && self.fanouts(g) == [primary]
    }

    /// The gates in topological order (inputs before outputs).
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The position of `g` in [`CsrView::topo_order`].
    pub fn topo_pos(&self, g: GateId) -> u32 {
        self.topo_pos[g.index()]
    }
}

/// Reusable epoch-stamped visited marks for graph traversals.
///
/// `clear()` bumps an epoch counter instead of zeroing the array, so a
/// traversal over a small region costs only that region regardless of how
/// many times the scratch has been used. One `Scratch` serves one thread;
/// parallel workers each carry their own.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    marks: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    /// A scratch sized for `n` items.
    pub fn new(n: usize) -> Scratch {
        Scratch {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Invalidates all marks (O(1) except after epoch wrap-around) and
    /// ensures capacity for `n` items.
    pub fn clear(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks item `i`; returns `true` if it was not yet marked this epoch.
    pub fn mark(&mut self, i: usize) -> bool {
        if self.marks[i] == self.epoch {
            false
        } else {
            self.marks[i] = self.epoch;
            true
        }
    }

    /// Whether item `i` is marked this epoch.
    pub fn is_marked(&self, i: usize) -> bool {
        self.marks[i] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLibrary;
    use odcfp_logic::PrimitiveFn;

    fn fig1() -> (Netlist, [GateId; 3]) {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        (n, [x, y, f])
    }

    #[test]
    fn adjacency_matches_netlist() {
        let (n, [x, y, f]) = fig1();
        let csr = CsrView::build(&n).unwrap();
        assert_eq!(csr.num_gates(), 3);
        assert_eq!(csr.fanins(x), &[] as &[GateId]);
        assert_eq!(csr.fanins(f), &[x, y]);
        assert_eq!(csr.fanouts(x), &[f]);
        assert_eq!(csr.fanouts(f), &[] as &[GateId]);
        assert_eq!(csr.fanout_count(x), 1);
        assert_eq!(csr.fanout_count(f), 1, "PO counts as fanout");
        assert!(csr.drives_po(f));
        assert!(!csr.drives_po(x));
    }

    #[test]
    fn feeds_only_matches_definition() {
        let (n, [x, y, f]) = fig1();
        let csr = CsrView::build(&n).unwrap();
        assert!(csr.feeds_only(x, f));
        assert!(csr.feeds_only(y, f));
        assert!(!csr.feeds_only(x, y));
        assert!(!csr.feeds_only(f, x), "PO gate never feeds-only");
    }

    #[test]
    fn topo_positions_are_consistent() {
        let (n, _) = fig1();
        let csr = CsrView::build(&n).unwrap();
        for (pos, &g) in csr.topo_order().iter().enumerate() {
            assert_eq!(csr.topo_pos(g) as usize, pos);
        }
        for (g, _) in n.gates() {
            for &src in csr.fanins(g) {
                assert!(csr.topo_pos(src) < csr.topo_pos(g));
            }
        }
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("cyc", lib);
        let a = n.add_primary_input("a");
        let fwd = n.add_net("fwd");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, fwd]);
        n.add_gate_driving("g2", and2, &[n.gate_output(g1), a], fwd);
        assert!(matches!(
            CsrView::build(&n),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn scratch_epochs_do_not_leak_marks() {
        let mut s = Scratch::new(4);
        assert!(s.mark(1));
        assert!(!s.mark(1));
        assert!(s.is_marked(1));
        s.clear(4);
        assert!(!s.is_marked(1));
        assert!(s.mark(1));
        // Growing keeps earlier marks meaningful within the epoch.
        s.clear(8);
        assert!(s.mark(7));
        assert!(!s.mark(7));
    }

    #[test]
    fn duplicate_pins_appear_per_pin() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("dup", lib);
        let a = n.add_primary_input("a");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g1 = n.add_gate("g1", inv, &[a]);
        let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), n.gate_output(g1)]);
        n.set_primary_output(n.gate_output(g2));
        let csr = CsrView::build(&n).unwrap();
        assert_eq!(csr.fanouts(g1), &[g2, g2]);
        assert_eq!(csr.fanins(g2), &[g1, g1]);
        assert_eq!(csr.fanout_count(g1), 2);
        assert!(!csr.feeds_only(g1, g2), "two sink pins is not feeds-only");
    }
}
