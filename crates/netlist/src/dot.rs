//! Graphviz DOT export for visual inspection of (fingerprinted) netlists.

use std::fmt::Write as _;

use crate::netlist::{NetDriver, Netlist};
use crate::GateId;

/// Renders the netlist as a Graphviz `digraph`.
///
/// Gates become boxes labelled with their cell name; primary inputs and
/// outputs become ellipses. Gates listed in `highlight` (e.g. fingerprint
/// modification sites) are drawn filled, which makes before/after diffs easy
/// to eyeball.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist, dot};
///
/// let mut n = Netlist::new("d", CellLibrary::standard());
/// let a = n.add_primary_input("a");
/// n.set_primary_output(a);
/// let text = dot::to_dot(&n, &[]);
/// assert!(text.starts_with("digraph"));
/// ```
pub fn to_dot(netlist: &Netlist, highlight: &[GateId]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(netlist.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    for &pi in netlist.primary_inputs() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=ellipse, color=blue];",
            escape(netlist.net(pi).name())
        );
    }
    for (id, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell());
        let fill = if highlight.contains(&id) {
            ", style=filled, fillcolor=orange"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, label=\"{}\\n{}\"{}];",
            escape(gate.name()),
            escape(gate.name()),
            escape(cell.name()),
            fill
        );
    }
    // Edges: driver -> sink gate, labelled with the net name.
    for (_, gate) in netlist.gates() {
        for &i in gate.inputs() {
            let net = netlist.net(i);
            let src = match net.driver() {
                NetDriver::Gate(g) => escape(netlist.gate(g).name()),
                _ => escape(net.name()),
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                src,
                escape(gate.name()),
                escape(net.name())
            );
        }
    }
    for &po in netlist.primary_outputs() {
        let net = netlist.net(po);
        let sink = format!("PO:{}", net.name());
        let _ = writeln!(out, "  \"{}\" [shape=ellipse, color=red];", escape(&sink));
        let src = match net.driver() {
            NetDriver::Gate(g) => escape(netlist.gate(g).name()),
            _ => escape(net.name()),
        };
        let _ = writeln!(out, "  \"{}\" -> \"{}\";", src, escape(&sink));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLibrary;
    use odcfp_logic::PrimitiveFn;

    #[test]
    fn dot_contains_structure() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("dottest", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let g = n.add_gate("u1", nand2, &[a, b]);
        n.set_primary_output(n.gate_output(g));
        let text = to_dot(&n, &[g]);
        assert!(text.contains("digraph \"dottest\""));
        assert!(text.contains("\"u1\""));
        assert!(text.contains("NAND2"));
        assert!(text.contains("fillcolor=orange"));
        assert!(text.contains("PO:u1_o"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
