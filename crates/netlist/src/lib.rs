//! Gate-level netlist intermediate representation.
//!
//! This crate is the structural substrate of the workspace: a mapped,
//! combinational, gate-level netlist over a standard-cell
//! [`library`](CellLibrary), with
//!
//! * arena-style storage and copyable [`GateId`]/[`NetId`]/[`CellId`] handles,
//! * structural [validation](Netlist::validate) (single drivers, legal pin
//!   counts, acyclicity),
//! * [topological ordering](Netlist::topo_order) and logic
//!   [depth](Netlist::gate_depths),
//! * 64-way bit-parallel [simulation](Netlist::simulate),
//! * Graphviz [DOT export](dot::to_dot).
//!
//! # Example
//!
//! Build the left circuit of the paper's Figure 1, `F = (A·B)·(C+D)`:
//!
//! ```
//! use odcfp_netlist::{CellLibrary, Netlist};
//! use odcfp_logic::PrimitiveFn;
//!
//! let lib = CellLibrary::standard();
//! let mut n = Netlist::new("fig1", lib);
//! let a = n.add_primary_input("A");
//! let b = n.add_primary_input("B");
//! let c = n.add_primary_input("C");
//! let d = n.add_primary_input("D");
//! let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
//! let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
//! let x = n.add_gate("gx", and2, &[a, b]);
//! let y = n.add_gate("gy", or2, &[c, d]);
//! let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
//! n.set_primary_output(n.gate_output(f));
//! n.validate()?;
//! assert_eq!(n.eval(&[true, true, false, true]), vec![true]);
//! # Ok::<(), odcfp_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
pub mod digest;
pub mod dot;
mod error;
pub mod genlib;
mod ids;
mod library;
#[allow(clippy::module_inception)]
mod netlist;
mod stats;

pub use csr::{CsrView, Scratch};
pub use digest::{Digest, Digest128, Digester, Digester128};
pub use error::NetlistError;
pub use ids::{CellId, GateId, NetId, PinRef};
pub use library::{Cell, CellLibrary};
pub use netlist::{Gate, Net, NetDriver, Netlist};
pub use stats::NetlistStats;
