//! Netlist summary statistics.

use std::collections::BTreeMap;
use std::fmt;

use odcfp_logic::PrimitiveFn;

use crate::netlist::Netlist;

/// Summary statistics of a netlist, as printed by design reports.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
///
/// let mut n = Netlist::new("empty", CellLibrary::standard());
/// n.add_primary_input("a");
/// let s = n.stats();
/// assert_eq!(s.num_gates, 0);
/// assert_eq!(s.num_primary_inputs, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total number of gate instances.
    pub num_gates: usize,
    /// Total number of nets.
    pub num_nets: usize,
    /// Number of primary inputs.
    pub num_primary_inputs: usize,
    /// Number of primary outputs.
    pub num_primary_outputs: usize,
    /// Maximum logic depth over all gates (0 for an empty netlist).
    pub max_depth: usize,
    /// Gate count per primitive function.
    pub function_histogram: BTreeMap<PrimitiveFn, usize>,
}

impl NetlistStats {
    pub(crate) fn of(netlist: &Netlist) -> Self {
        let mut function_histogram = BTreeMap::new();
        for (_, g) in netlist.gates() {
            let f = netlist.library().cell(g.cell()).function();
            *function_histogram.entry(f).or_insert(0) += 1;
        }
        let max_depth = netlist
            .gate_depths()
            .map(|d| d.into_iter().max().unwrap_or(0))
            .unwrap_or(0);
        NetlistStats {
            num_gates: netlist.num_gates(),
            num_nets: netlist.num_nets(),
            num_primary_inputs: netlist.primary_inputs().len(),
            num_primary_outputs: netlist.primary_outputs().len(),
            max_depth,
            function_histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gates: {}  nets: {}  PIs: {}  POs: {}  depth: {}",
            self.num_gates,
            self.num_nets,
            self.num_primary_inputs,
            self.num_primary_outputs,
            self.max_depth
        )?;
        for (func, count) in &self.function_histogram {
            writeln!(f, "  {func}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLibrary;

    #[test]
    fn histogram_counts_functions() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("t", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", inv, &[n.gate_output(g1)]);
        n.set_primary_output(n.gate_output(g2));
        let s = n.stats();
        assert_eq!(s.num_gates, 2);
        assert_eq!(s.function_histogram[&PrimitiveFn::And], 1);
        assert_eq!(s.function_histogram[&PrimitiveFn::Inv], 1);
        assert_eq!(s.max_depth, 2);
        let shown = s.to_string();
        assert!(shown.contains("gates: 2"));
        assert!(shown.contains("and: 1"));
    }
}
