//! Standard-cell library: the set of gates a netlist may instantiate,
//! together with the area/delay/power characterization the analysis crate
//! uses.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use odcfp_logic::PrimitiveFn;

use crate::CellId;

/// One library cell: a [`PrimitiveFn`] at a fixed arity with physical
/// characterization.
///
/// The characterization mirrors the MCNC `genlib` style the paper's flow
/// (ABC + standard library) consumed: an area in λ²-like units, an intrinsic
/// propagation delay in ns-like units, a per-fanout load delay slope, and an
/// input capacitance used by the switching-activity power model.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    function: PrimitiveFn,
    arity: usize,
    area: f64,
    intrinsic_delay: f64,
    load_delay: f64,
    input_cap: f64,
}

impl Cell {
    /// Creates a cell description.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is illegal for `function` (e.g. a 3-input inverter)
    /// or any physical quantity is negative.
    pub fn new(
        name: impl Into<String>,
        function: PrimitiveFn,
        arity: usize,
        area: f64,
        intrinsic_delay: f64,
        load_delay: f64,
        input_cap: f64,
    ) -> Self {
        if function.is_single_input() {
            assert_eq!(arity, 1, "{function} must have exactly one input");
        } else {
            assert!(arity >= 2, "{function} needs at least two inputs");
        }
        assert!(
            area >= 0.0 && intrinsic_delay >= 0.0 && load_delay >= 0.0 && input_cap >= 0.0,
            "physical quantities must be non-negative"
        );
        Cell {
            name: name.into(),
            function,
            arity,
            area,
            intrinsic_delay,
            load_delay,
            input_cap,
        }
    }

    /// The cell's library name, e.g. `"NAND3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Boolean function the cell realizes.
    pub fn function(&self) -> PrimitiveFn {
        self.function
    }

    /// The number of input pins.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Cell area in λ²-like units.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Intrinsic propagation delay (zero-load), ns-like units.
    pub fn intrinsic_delay(&self) -> f64 {
        self.intrinsic_delay
    }

    /// Additional delay per fanout sink.
    pub fn load_delay(&self) -> f64 {
        self.load_delay
    }

    /// Input pin capacitance, in unit-inverter loads.
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// The delay of this cell when driving `fanout` sinks.
    pub fn delay(&self, fanout: usize) -> f64 {
        self.intrinsic_delay + self.load_delay * fanout as f64
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}{}, area {}, delay {})",
            self.name, self.function, self.arity, self.area, self.intrinsic_delay
        )
    }
}

/// An immutable collection of [`Cell`]s indexed by `(function, arity)`.
///
/// Libraries are shared between netlists via [`Arc`], so cloning a netlist
/// (e.g. to produce many fingerprinted copies) never duplicates the library.
///
/// # Example
///
/// ```
/// use odcfp_netlist::CellLibrary;
/// use odcfp_logic::PrimitiveFn;
///
/// let lib = CellLibrary::standard();
/// let nand3 = lib.cell_for(PrimitiveFn::Nand, 3).expect("NAND3 exists");
/// assert_eq!(lib.cell(nand3).name(), "NAND3");
/// assert!(lib.cell_for(PrimitiveFn::Xor, 4).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    name: String,
    cells: Vec<Cell>,
    by_fn_arity: HashMap<(PrimitiveFn, usize), CellId>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn empty(name: impl Into<String>) -> Self {
        CellLibrary {
            name: name.into(),
            cells: Vec::new(),
            by_fn_arity: HashMap::new(),
        }
    }

    /// The default standard-cell library used throughout the workspace.
    ///
    /// Functions and relative sizes follow the MCNC `genlib` tradition
    /// (unit-ish inverter of area 928): INV/BUF, NAND/NOR/AND/OR at arities
    /// 2–4, and 2-input XOR/XNOR. NAND/NOR are the fast compact cells;
    /// AND/OR cost an extra stage; XORs are big and slow. These are the
    /// "gates in our library" the paper's Tables I/II refer to.
    pub fn standard() -> Arc<Self> {
        let mut lib = CellLibrary::empty("odcfp-std");
        let mut add = |name: &str, f: PrimitiveFn, n: usize, area: f64, d: f64| {
            // Load slope and input cap scale gently with drive/size.
            lib.push(Cell::new(name, f, n, area, d, 0.12, area / 928.0));
        };
        add("INV", PrimitiveFn::Inv, 1, 928.0, 0.9);
        add("BUF", PrimitiveFn::Buf, 1, 1392.0, 1.6);
        add("NAND2", PrimitiveFn::Nand, 2, 1392.0, 1.0);
        add("NAND3", PrimitiveFn::Nand, 3, 1856.0, 1.1);
        add("NAND4", PrimitiveFn::Nand, 4, 2320.0, 1.2);
        add("NOR2", PrimitiveFn::Nor, 2, 1392.0, 1.3);
        add("NOR3", PrimitiveFn::Nor, 3, 1856.0, 1.5);
        add("NOR4", PrimitiveFn::Nor, 4, 2320.0, 1.7);
        add("AND2", PrimitiveFn::And, 2, 1856.0, 1.8);
        add("AND3", PrimitiveFn::And, 3, 2320.0, 1.9);
        add("AND4", PrimitiveFn::And, 4, 2784.0, 2.0);
        add("OR2", PrimitiveFn::Or, 2, 1856.0, 2.0);
        add("OR3", PrimitiveFn::Or, 3, 2320.0, 2.2);
        add("OR4", PrimitiveFn::Or, 4, 2784.0, 2.4);
        add("XOR2", PrimitiveFn::Xor, 2, 2784.0, 1.9);
        add("XNOR2", PrimitiveFn::Xnor, 2, 2784.0, 2.1);
        Arc::new(lib)
    }

    /// Adds a cell and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same `(function, arity)` already exists.
    pub fn push(&mut self, cell: Cell) -> CellId {
        let key = (cell.function(), cell.arity());
        assert!(
            !self.by_fn_arity.contains_key(&key),
            "duplicate cell for {} arity {}",
            key.0,
            key.1
        );
        let id = CellId::from_index(self.cells.len());
        self.by_fn_arity.insert(key, id);
        self.cells.push(cell);
        id
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a cell by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The cell realizing `function` at exactly `arity` inputs, if any.
    pub fn cell_for(&self, function: PrimitiveFn, arity: usize) -> Option<CellId> {
        self.by_fn_arity.get(&(function, arity)).copied()
    }

    /// The cell by library name (case-insensitive), if any.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(CellId::from_index)
    }

    /// The largest available arity for `function`, if the function exists at
    /// all.
    pub fn max_arity(&self, function: PrimitiveFn) -> Option<usize> {
        self.by_fn_arity
            .keys()
            .filter(|(f, _)| *f == function)
            .map(|&(_, n)| n)
            .max()
    }

    /// The number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_contents() {
        let lib = CellLibrary::standard();
        assert_eq!(lib.len(), 16);
        for f in [
            PrimitiveFn::Nand,
            PrimitiveFn::Nor,
            PrimitiveFn::And,
            PrimitiveFn::Or,
        ] {
            for n in 2..=4 {
                assert!(lib.cell_for(f, n).is_some(), "{f}{n} missing");
            }
            assert_eq!(lib.max_arity(f), Some(4));
        }
        assert!(lib.cell_for(PrimitiveFn::Xor, 2).is_some());
        assert!(lib.cell_for(PrimitiveFn::Xor, 3).is_none());
        assert!(lib.cell_for(PrimitiveFn::Inv, 1).is_some());
        assert_eq!(lib.max_arity(PrimitiveFn::Inv), Some(1));
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        let lib = CellLibrary::standard();
        let a = lib.cell_by_name("nand2").unwrap();
        let b = lib.cell_by_name("NAND2").unwrap();
        assert_eq!(a, b);
        assert!(lib.cell_by_name("MUX21").is_none());
    }

    #[test]
    fn delay_grows_with_fanout() {
        let lib = CellLibrary::standard();
        let c = lib.cell(lib.cell_for(PrimitiveFn::Nand, 2).unwrap());
        assert!(c.delay(4) > c.delay(1));
        assert!((c.delay(0) - c.intrinsic_delay()).abs() < 1e-12);
    }

    #[test]
    fn wider_cells_are_bigger_and_slower() {
        let lib = CellLibrary::standard();
        for f in [PrimitiveFn::Nand, PrimitiveFn::Nor, PrimitiveFn::And, PrimitiveFn::Or] {
            for n in 2..4 {
                let small = lib.cell(lib.cell_for(f, n).unwrap());
                let big = lib.cell(lib.cell_for(f, n + 1).unwrap());
                assert!(big.area() > small.area(), "{f}{}", n + 1);
                assert!(big.intrinsic_delay() > small.intrinsic_delay());
            }
        }
    }

    #[test]
    fn iteration_and_display() {
        let lib = CellLibrary::standard();
        assert_eq!(lib.iter().count(), lib.len());
        assert!(!lib.is_empty());
        assert_eq!(lib.name(), "odcfp-std");
        let (id, cell) = lib.iter().next().unwrap();
        assert_eq!(lib.cell(id).name(), cell.name());
        let shown = cell.to_string();
        assert!(shown.contains(cell.name()));
        assert!(shown.contains("area"));
        let empty = CellLibrary::empty("void");
        assert!(empty.is_empty());
        assert!(empty.max_arity(PrimitiveFn::And).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_fn_arity_rejected() {
        let mut lib = CellLibrary::empty("t");
        lib.push(Cell::new("A", PrimitiveFn::And, 2, 1.0, 1.0, 0.0, 1.0));
        lib.push(Cell::new("B", PrimitiveFn::And, 2, 1.0, 1.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "must have exactly one input")]
    fn bad_inv_arity_rejected() {
        Cell::new("INV3", PrimitiveFn::Inv, 3, 1.0, 1.0, 0.0, 1.0);
    }
}
