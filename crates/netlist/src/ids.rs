//! Copyable handles into a [`crate::Netlist`] and [`crate::CellLibrary`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The arena index of this handle.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds a handle from a raw arena index.
            ///
            /// Handles are only meaningful for the netlist/library that
            /// produced the index; using a stale or foreign index yields
            /// panics or wrong lookups, not undefined behaviour.
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("arena index exceeds u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Handle to a gate instance in a [`crate::Netlist`].
    GateId,
    "g"
);
id_type!(
    /// Handle to a net (signal) in a [`crate::Netlist`].
    NetId,
    "n"
);
id_type!(
    /// Handle to a cell in a [`crate::CellLibrary`].
    CellId,
    "c"
);

/// A reference to one input pin of one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PinRef {
    /// The gate whose pin is referenced.
    pub gate: GateId,
    /// The zero-based input pin index.
    pub pin: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let g = GateId::from_index(7);
        assert_eq!(g.index(), 7);
        assert_eq!(format!("{g}"), "g7");
        assert_eq!(format!("{g:?}"), "g7");
        let n = NetId::from_index(0);
        assert_eq!(format!("{n}"), "n0");
        let c = CellId::from_index(3);
        assert_eq!(format!("{c}"), "c3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(GateId::from_index(1) < GateId::from_index(2));
    }
}
