//! The netlist arena itself.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use odcfp_logic::sim::{gather_block, Block, BLOCK_LANES};
use odcfp_logic::PrimitiveFn;

use crate::{CellId, CellLibrary, GateId, NetId, NetlistError, NetlistStats, PinRef};

/// What produces the value on a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// Nothing drives the net yet (illegal in a validated netlist).
    None,
    /// The net is a primary input of the circuit.
    PrimaryInput,
    /// The net is tied to a constant value.
    Const(bool),
    /// The net is the output of a gate.
    Gate(GateId),
}

/// A signal in the netlist.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: NetDriver,
    sinks: Vec<PinRef>,
    is_primary_output: bool,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives this net.
    pub fn driver(&self) -> NetDriver {
        self.driver
    }

    /// The gate input pins this net fans out to.
    ///
    /// Primary-output consumption is tracked separately via
    /// [`Net::is_primary_output`].
    pub fn sinks(&self) -> &[PinRef] {
        &self.sinks
    }

    /// True if this net is (also) a primary output of the circuit.
    pub fn is_primary_output(&self) -> bool {
        self.is_primary_output
    }

    /// Total fanout as seen by the delay model: gate sinks plus one if the
    /// net is a primary output.
    pub fn fanout(&self) -> usize {
        self.sinks.len() + usize::from(self.is_primary_output)
    }
}

/// A gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    name: String,
    cell: CellId,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library cell this gate instantiates.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A combinational gate-level netlist over a shared [`CellLibrary`].
///
/// See the [crate-level documentation](crate) for a building example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    library: Arc<CellLibrary>,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    /// Memoized topological gate order; recomputed lazily after any
    /// structural mutation (see [`Netlist::cached_topo`]).
    topo_cache: OnceLock<Vec<GateId>>,
}

impl Netlist {
    /// Creates an empty netlist over `library`.
    pub fn new(name: impl Into<String>, library: Arc<CellLibrary>) -> Self {
        Netlist {
            name: name.into(),
            library,
            nets: Vec::new(),
            gates: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            topo_cache: OnceLock::new(),
        }
    }

    /// Drops the memoized topological order; called by every structural
    /// mutator that can change gate dependencies.
    fn invalidate_topo(&mut self) {
        self.topo_cache = OnceLock::new();
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The cell library the netlist is mapped to.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a fresh, undriven net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: NetDriver::None,
            sinks: Vec::new(),
            is_primary_output: false,
        });
        id
    }

    /// Adds a primary input and returns its net.
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].driver = NetDriver::PrimaryInput;
        self.primary_inputs.push(id);
        id
    }

    /// Adds a constant-driven net.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].driver = NetDriver::Const(value);
        id
    }

    /// Adds a gate with an automatically created output net named after the
    /// instance, returning the gate's id. The output net is
    /// [`Netlist::gate_output`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's arity or any input
    /// net id is stale.
    pub fn add_gate(&mut self, name: impl Into<String>, cell: CellId, inputs: &[NetId]) -> GateId {
        let name = name.into();
        let out = self.add_net(format!("{name}_o"));
        self.add_gate_driving(name, cell, inputs, out)
    }

    /// Adds a gate that drives an existing net.
    ///
    /// # Panics
    ///
    /// Panics if the output net is already driven, if `inputs.len()` differs
    /// from the cell's arity, or any net id is stale.
    pub fn add_gate_driving(
        &mut self,
        name: impl Into<String>,
        cell: CellId,
        inputs: &[NetId],
        output: NetId,
    ) -> GateId {
        let arity = self.library.cell(cell).arity();
        assert_eq!(
            inputs.len(),
            arity,
            "cell {} has arity {arity}",
            self.library.cell(cell).name()
        );
        assert!(
            matches!(self.nets[output.index()].driver, NetDriver::None),
            "net {output} already driven"
        );
        self.invalidate_topo();
        let id = GateId::from_index(self.gates.len());
        for (pin, &n) in inputs.iter().enumerate() {
            self.nets[n.index()].sinks.push(PinRef { gate: id, pin });
        }
        self.nets[output.index()].driver = NetDriver::Gate(id);
        self.gates.push(Gate {
            name: name.into(),
            cell,
            inputs: inputs.to_vec(),
            output,
        });
        id
    }

    /// Marks a net as a primary output.
    ///
    /// Marking twice is idempotent; ordering of outputs follows first
    /// marking.
    pub fn set_primary_output(&mut self, net: NetId) {
        let n = &mut self.nets[net.index()];
        if !n.is_primary_output {
            n.is_primary_output = true;
            self.primary_outputs.push(net);
        }
    }

    // ------------------------------------------------------------------
    // Mutation (used by fingerprint embedding)
    // ------------------------------------------------------------------

    /// Re-types a gate and rewires its inputs in one step, keeping all sink
    /// bookkeeping consistent. This is the primitive operation behind every
    /// fingerprint modification (widening a gate to accept a trigger input).
    ///
    /// # Panics
    ///
    /// Panics if `new_inputs.len()` differs from the new cell's arity.
    pub fn replace_gate(&mut self, gate: GateId, new_cell: CellId, new_inputs: &[NetId]) {
        let arity = self.library.cell(new_cell).arity();
        assert_eq!(
            new_inputs.len(),
            arity,
            "cell {} has arity {arity}",
            self.library.cell(new_cell).name()
        );
        self.invalidate_topo();
        let old_inputs = self.gates[gate.index()].inputs.clone();
        for (pin, &n) in old_inputs.iter().enumerate() {
            let sinks = &mut self.nets[n.index()].sinks;
            let at = sinks
                .iter()
                .position(|p| p.gate == gate && p.pin == pin)
                .expect("sink bookkeeping out of sync");
            sinks.swap_remove(at);
        }
        for (pin, &n) in new_inputs.iter().enumerate() {
            self.nets[n.index()].sinks.push(PinRef { gate, pin });
        }
        let g = &mut self.gates[gate.index()];
        g.cell = new_cell;
        g.inputs = new_inputs.to_vec();
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Looks up a gate.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The output net of a gate.
    pub fn gate_output(&self, id: GateId) -> NetId {
        self.gates[id.index()].output
    }

    /// The [`PrimitiveFn`] of a gate's cell.
    pub fn gate_fn(&self, id: GateId) -> PrimitiveFn {
        self.library.cell(self.gates[id.index()].cell).function()
    }

    /// The primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// The primary outputs, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over `(id, gate)` pairs in insertion order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// Iterates over `(id, net)` pairs in insertion order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Finds a net by name (linear scan; intended for tests and I/O).
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(NetId::from_index)
    }

    /// Finds a gate by instance name (linear scan; intended for tests/I/O).
    pub fn gate_by_name(&self, name: &str) -> Option<GateId> {
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(GateId::from_index)
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Gates in topological order (inputs before outputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gate graph is
    /// cyclic.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        self.cached_topo().map(<[GateId]>::to_vec)
    }

    /// Gates in topological order, borrowed from a per-netlist memo.
    ///
    /// The first call after a structural mutation runs Kahn's algorithm;
    /// subsequent calls are free. Simulation, depth computation, validation,
    /// and the SAT encoders all share this order, so hot loops (per-buyer
    /// verification, per-pattern simulation) no longer re-sort the graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gate graph is
    /// cyclic. Errors are not memoized.
    pub fn cached_topo(&self) -> Result<&[GateId], NetlistError> {
        if let Some(order) = self.topo_cache.get() {
            return Ok(order);
        }
        let order = self.compute_topo_order()?;
        // A racing thread may have initialized the cache first; both
        // computed the same order, so either value is fine.
        Ok(self.topo_cache.get_or_init(|| order))
    }

    fn compute_topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        let mut indegree = vec![0usize; n];
        for (gi, g) in self.gates.iter().enumerate() {
            indegree[gi] = g
                .inputs
                .iter()
                .filter(|&&i| matches!(self.nets[i.index()].driver, NetDriver::Gate(_)))
                .count();
        }
        let mut queue: Vec<GateId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(GateId::from_index)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(g);
            let out = self.gates[g.index()].output;
            for p in &self.nets[out.index()].sinks {
                let d = &mut indegree[p.gate.index()];
                *d -= 1;
                if *d == 0 {
                    queue.push(p.gate);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(GateId::from_index)
                .expect("cycle must leave a gate with positive indegree");
            return Err(NetlistError::CombinationalCycle { gate: stuck });
        }
        Ok(order)
    }

    /// Logic depth of every gate: 1 + max depth of gate-driven inputs
    /// (primary inputs and constants have depth 0). Index by
    /// [`GateId::index`].
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is cyclic.
    pub fn gate_depths(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.cached_topo()?;
        let mut depth = vec![0usize; self.gates.len()];
        for &g in order {
            let d = self.gates[g.index()]
                .inputs
                .iter()
                .map(|&i| match self.nets[i.index()].driver {
                    NetDriver::Gate(src) => depth[src.index()] + 1,
                    _ => 1,
                })
                .max()
                .unwrap_or(1);
            depth[g.index()] = d;
        }
        Ok(depth)
    }

    /// Checks structural sanity: every net driven, pin counts match cell
    /// arities, sink bookkeeping consistent, no combinational cycles, and
    /// all primary outputs driven.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (ni, net) in self.nets.iter().enumerate() {
            if matches!(net.driver, NetDriver::None) {
                return Err(NetlistError::UndrivenNet {
                    net: NetId::from_index(ni),
                    name: net.name.clone(),
                });
            }
        }
        for (gi, g) in self.gates.iter().enumerate() {
            let arity = self.library.cell(g.cell).arity();
            if g.inputs.len() != arity {
                return Err(NetlistError::ArityMismatch {
                    gate: GateId::from_index(gi),
                    expected: arity,
                    found: g.inputs.len(),
                });
            }
        }
        // Sink bookkeeping: each gate input pin appears exactly once in its
        // net's sink list, and nothing else does.
        let mut expected: HashMap<NetId, Vec<PinRef>> = HashMap::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for (pin, &net) in g.inputs.iter().enumerate() {
                expected.entry(net).or_default().push(PinRef {
                    gate: GateId::from_index(gi),
                    pin,
                });
            }
        }
        for (ni, net) in self.nets.iter().enumerate() {
            let id = NetId::from_index(ni);
            let mut want = expected.remove(&id).unwrap_or_default();
            let mut have = net.sinks.clone();
            want.sort_unstable();
            have.sort_unstable();
            if want != have {
                return Err(NetlistError::InconsistentSinks { net: id });
            }
        }
        for &po in &self.primary_outputs {
            if matches!(self.nets[po.index()].driver, NetDriver::None) {
                return Err(NetlistError::DanglingOutput { net: po });
            }
        }
        self.cached_topo()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Simulation
    // ------------------------------------------------------------------

    /// Bit-parallel simulation: given one pattern stream (of equal length
    /// `num_words`) per primary input, returns a pattern stream per net,
    /// indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `pi_patterns.len()` differs from the number of primary
    /// inputs, the streams have unequal lengths, or the netlist is cyclic
    /// (validate first).
    pub fn simulate(&self, pi_patterns: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(
            pi_patterns.len(),
            self.primary_inputs.len(),
            "one pattern stream per primary input required"
        );
        let num_words = pi_patterns.first().map_or(0, Vec::len);
        assert!(
            pi_patterns.iter().all(|p| p.len() == num_words),
            "pattern streams must have equal length"
        );
        let mut values = vec![vec![0u64; num_words]; self.nets.len()];
        for (k, &pi) in self.primary_inputs.iter().enumerate() {
            values[pi.index()].copy_from_slice(&pi_patterns[k]);
        }
        for (ni, net) in self.nets.iter().enumerate() {
            if let NetDriver::Const(true) = net.driver {
                values[ni].fill(u64::MAX);
            }
        }
        let order = self.cached_topo().expect("cyclic netlist");
        // 256-bit inner kernel: gather each input's lanes into a reused
        // block buffer and evaluate four words per gate dispatch; a scalar
        // loop mops up the sub-block tail.
        let full_blocks = num_words / BLOCK_LANES;
        let tail_start = full_blocks * BLOCK_LANES;
        let mut in_blocks: Vec<Block> = Vec::new();
        let mut in_words: Vec<u64> = Vec::new();
        for &g in order {
            let gate = &self.gates[g.index()];
            let f = self.library.cell(gate.cell).function();
            let out = gate.output.index();
            for blk in 0..full_blocks {
                let word = blk * BLOCK_LANES;
                in_blocks.clear();
                in_blocks.extend(
                    gate.inputs
                        .iter()
                        .map(|i| gather_block(&values[i.index()], word)),
                );
                let res = f.eval_blocks(&in_blocks);
                values[out][word..word + BLOCK_LANES].copy_from_slice(&res);
            }
            #[allow(clippy::needless_range_loop)] // values is indexed by two axes
            for w in tail_start..num_words {
                in_words.clear();
                in_words.extend(gate.inputs.iter().map(|i| values[i.index()][w]));
                values[out][w] = f.eval_words(&in_words);
            }
        }
        values
    }

    /// Evaluates the netlist on a single input assignment, returning the
    /// primary output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let patterns: Vec<Vec<u64>> = inputs
            .iter()
            .map(|&b| vec![if b { 1 } else { 0 }])
            .collect();
        let values = self.simulate(&patterns);
        self.primary_outputs
            .iter()
            .map(|po| values[po.index()][0] & 1 == 1)
            .collect()
    }

    /// Summary statistics (gate count, per-function histogram, I/O counts).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::sim::exhaustive_patterns;

    fn fig1_left() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn build_and_validate() {
        let n = fig1_left();
        n.validate().unwrap();
        assert_eq!(n.num_gates(), 3);
        assert_eq!(n.primary_inputs().len(), 4);
        assert_eq!(n.primary_outputs().len(), 1);
    }

    #[test]
    fn eval_matches_function() {
        let n = fig1_left();
        for i in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
            let expect = (bits[0] && bits[1]) && (bits[2] || bits[3]);
            assert_eq!(n.eval(&bits), vec![expect], "assignment {i}");
        }
    }

    #[test]
    fn simulate_exhaustive_matches_eval() {
        let n = fig1_left();
        let pats = exhaustive_patterns(4);
        let values = n.simulate(&pats);
        let po = n.primary_outputs()[0];
        for i in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
            let sim_bit = (values[po.index()][0] >> i) & 1 == 1;
            assert_eq!(sim_bit, n.eval(&bits)[0]);
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let n = fig1_left();
        let order = n.topo_order().unwrap();
        let pos: HashMap<GateId, usize> =
            order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for (g, gate) in n.gates() {
            for &i in gate.inputs() {
                if let NetDriver::Gate(src) = n.net(i).driver() {
                    assert!(pos[&src] < pos[&g]);
                }
            }
        }
    }

    #[test]
    fn depths() {
        let n = fig1_left();
        let d = n.gate_depths().unwrap();
        let gx = n.gate_by_name("gx").unwrap();
        let gf = n.gate_by_name("gf").unwrap();
        assert_eq!(d[gx.index()], 1);
        assert_eq!(d[gf.index()], 2);
    }

    #[test]
    fn undriven_net_detected() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("bad", lib);
        let a = n.add_primary_input("a");
        let floating = n.add_net("floating");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        n.add_gate("g", and2, &[a, floating]);
        match n.validate() {
            Err(NetlistError::UndrivenNet { name, .. }) => assert_eq!(name, "floating"),
            other => panic!("expected UndrivenNet, got {other:?}"),
        }
    }

    #[test]
    fn replace_gate_keeps_bookkeeping() {
        let mut n = fig1_left();
        let gx = n.gate_by_name("gx").unwrap();
        let a = n.net_by_name("A").unwrap();
        let b = n.net_by_name("B").unwrap();
        let gy_out = n.gate_output(n.gate_by_name("gy").unwrap());
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        // The paper's Figure 1 right circuit: X = A & B & Y.
        n.replace_gate(gx, and3, &[a, b, gy_out]);
        n.validate().unwrap();
        // Function is unchanged (Y is an ODC trigger for X).
        for i in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
            let expect = (bits[0] && bits[1]) && (bits[2] || bits[3]);
            assert_eq!(n.eval(&bits), vec![expect], "assignment {i}");
        }
    }

    #[test]
    fn constants_simulate() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("consts", lib);
        let a = n.add_primary_input("a");
        let one = n.add_constant("one", true);
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g = n.add_gate("g", and2, &[a, one]);
        n.set_primary_output(n.gate_output(g));
        n.validate().unwrap();
        assert_eq!(n.eval(&[true]), vec![true]);
        assert_eq!(n.eval(&[false]), vec![false]);
    }

    #[test]
    fn cycle_detected() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("cyc", lib);
        let a = n.add_primary_input("a");
        let fwd = n.add_net("fwd");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, fwd]);
        // g2 closes the loop: drives fwd from g1's output.
        n.add_gate_driving("g2", and2, &[n.gate_output(g1), a], fwd);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn accessors_and_lookup_misses() {
        let mut n = fig1_left();
        assert_eq!(n.name(), "fig1");
        n.set_name("renamed");
        assert_eq!(n.name(), "renamed");
        assert!(n.net_by_name("nope").is_none());
        assert!(n.gate_by_name("nope").is_none());
        let gx = n.gate_by_name("gx").unwrap();
        assert_eq!(n.gate_fn(gx), PrimitiveFn::And);
        assert_eq!(n.gate(gx).name(), "gx");
        let c = n.add_constant("tie", true);
        assert_eq!(n.net(c).driver(), NetDriver::Const(true));
        assert!(!n.net(c).is_primary_output());
        n.set_primary_output(c);
        n.set_primary_output(c); // idempotent
        assert_eq!(n.primary_outputs().iter().filter(|&&p| p == c).count(), 1);
    }

    #[test]
    fn num_nets_counts_everything() {
        let n = fig1_left();
        // 4 PIs + 3 gate outputs.
        assert_eq!(n.num_nets(), 7);
    }

    #[test]
    fn fanout_counts_po() {
        let n = fig1_left();
        let gf_out = n.gate_output(n.gate_by_name("gf").unwrap());
        assert_eq!(n.net(gf_out).fanout(), 1);
        let gx_out = n.gate_output(n.gate_by_name("gx").unwrap());
        assert_eq!(n.net(gx_out).fanout(), 1);
        let a = n.net_by_name("A").unwrap();
        assert_eq!(n.net(a).fanout(), 1);
    }
}
