//! Parser for the MCNC/SIS `genlib` cell-library format.
//!
//! The paper's flow feeds ABC "a library of gate cells"; `genlib` is the
//! interchange format those libraries ship in. A library line looks like:
//!
//! ```text
//! GATE NAND2  1392  Y=!(A*B);  PIN * INV 1 999 1.0 0.12 1.0 0.12
//! ```
//!
//! The parser reads each gate's area, function expression and (first) PIN
//! characterization, recognizes the Boolean function by truth-table
//! matching against the primitive set this workspace supports, and builds a
//! [`CellLibrary`]. Gates computing functions outside the primitive set
//! (AOI cells, MUXes, ...) are reported in
//! [`GenlibReport::skipped`] rather than silently dropped.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use odcfp_logic::{PrimitiveFn, TruthTable};

use crate::{Cell, CellLibrary};

/// A `genlib` parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGenlibError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "genlib parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGenlibError {}

/// The result of [`parse_genlib`].
#[derive(Debug, Clone)]
pub struct GenlibReport {
    /// The constructed library.
    pub library: Arc<CellLibrary>,
    /// Gates that could not be admitted, with reasons (unsupported
    /// function, duplicate function/arity, ...).
    pub skipped: Vec<(String, String)>,
}

fn err(line: usize, message: impl Into<String>) -> ParseGenlibError {
    ParseGenlibError {
        line,
        message: message.into(),
    }
}

/// Parses `genlib` text into a [`CellLibrary`].
///
/// # Errors
///
/// Returns an error on malformed syntax. Functionally exotic gates are
/// *skipped*, not errors — see [`GenlibReport::skipped`].
pub fn parse_genlib(src: &str, name: impl Into<String>) -> Result<GenlibReport, ParseGenlibError> {
    let mut library = CellLibrary::empty(name);
    let mut skipped = Vec::new();

    // Statements run from GATE to the next GATE; normalize lines first.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let text = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        if text.trim().is_empty() {
            continue;
        }
        if text.trim_start().starts_with("GATE") || text.trim_start().starts_with("LATCH") {
            if let Some(stmt) = current.take() {
                statements.push(stmt);
            }
            current = Some((line_no, text.trim().to_owned()));
        } else if let Some((_, acc)) = &mut current {
            acc.push(' ');
            acc.push_str(text.trim());
        } else {
            return Err(err(line_no, "text before first GATE"));
        }
    }
    if let Some(stmt) = current.take() {
        statements.push(stmt);
    }

    for (line, stmt) in statements {
        if stmt.starts_with("LATCH") {
            return Err(err(line, "sequential LATCH cells are not supported"));
        }
        match parse_gate(&stmt, line)? {
            ParsedGate::Constant(name) => {
                skipped.push((name, "constant cell (use netlist constants)".into()));
            }
            ParsedGate::Cell(cell) => {
                let key_fn = cell.function();
                let key_ar = cell.arity();
                if library.cell_for(key_fn, key_ar).is_some() {
                    skipped.push((
                        cell.name().to_owned(),
                        format!("duplicate {key_fn}{key_ar} (first wins)"),
                    ));
                } else {
                    library.push(cell);
                }
            }
            ParsedGate::Unsupported(name, reason) => skipped.push((name, reason)),
        }
    }
    Ok(GenlibReport {
        library: Arc::new(library),
        skipped,
    })
}

enum ParsedGate {
    Cell(Cell),
    Constant(String),
    Unsupported(String, String),
}

fn parse_gate(stmt: &str, line: usize) -> Result<ParsedGate, ParseGenlibError> {
    // GATE <name> <area> <out>=<expr> ; [PIN ...]
    let body = stmt.strip_prefix("GATE").expect("statement starts with GATE");
    let (head, tail) = match body.find(';') {
        Some(p) => (&body[..p], &body[p + 1..]),
        None => return Err(err(line, "missing ';' after gate function")),
    };
    let mut toks = head.split_whitespace();
    let name = toks
        .next()
        .ok_or_else(|| err(line, "missing gate name"))?
        .to_owned();
    let area: f64 = toks
        .next()
        .ok_or_else(|| err(line, "missing area"))?
        .parse()
        .map_err(|_| err(line, "invalid area"))?;
    let func_text: String = toks.collect::<Vec<_>>().join(" ");
    let (_, expr_text) = func_text
        .split_once('=')
        .ok_or_else(|| err(line, "missing '=' in gate function"))?;

    let (expr, inputs) = parse_expr(expr_text, line)?;
    if inputs.is_empty() {
        return Ok(ParsedGate::Constant(name));
    }
    let arity = inputs.len();
    if arity > odcfp_logic::MAX_VARS {
        return Ok(ParsedGate::Unsupported(name, "too many inputs".into()));
    }
    let tt = expr.truth_table(&inputs);
    let Some(function) = recognize(&tt, arity) else {
        return Ok(ParsedGate::Unsupported(
            name,
            format!("function {tt} is not a supported primitive"),
        ));
    };
    if function.is_single_input() && arity != 1 {
        return Ok(ParsedGate::Unsupported(name, "degenerate function".into()));
    }

    // PIN characterization: use the first PIN statement's numbers.
    // PIN <name|*> <phase> <input-load> <max-load> <rise-delay>
    //     <rise-fanout-delay> <fall-delay> <fall-fanout-delay>
    let mut intrinsic = 1.0f64;
    let mut slope = 0.1f64;
    let mut cap = 1.0f64;
    if let Some(pin_at) = tail.find("PIN") {
        let nums: Vec<f64> = tail[pin_at..]
            .split_whitespace()
            .skip(3) // "PIN", pin name, phase
            .map_while(|t| t.parse::<f64>().ok())
            .collect();
        if nums.len() >= 6 {
            cap = nums[0];
            intrinsic = (nums[2] + nums[4]) / 2.0;
            slope = (nums[3] + nums[5]) / 2.0;
        }
    }
    Ok(ParsedGate::Cell(Cell::new(
        name, function, arity, area, intrinsic, slope, cap,
    )))
}

fn recognize(tt: &TruthTable, arity: usize) -> Option<PrimitiveFn> {
    PrimitiveFn::ALL
        .into_iter()
        .filter(|f| {
            if f.is_single_input() {
                arity == 1
            } else {
                arity >= 2
            }
        })
        .find(|f| &f.truth_table(arity) == tt)
}

/// A parsed Boolean expression over named inputs.
enum Expr {
    Input(usize),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, assignment: usize) -> bool {
        match self {
            Expr::Input(i) => (assignment >> i) & 1 == 1,
            Expr::Const(b) => *b,
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
        }
    }

    fn truth_table(&self, inputs: &[String]) -> TruthTable {
        TruthTable::from_fn(inputs.len(), |i| self.eval(i))
    }
}

struct ExprParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    inputs: Vec<String>,
    index: HashMap<String, usize>,
    line: usize,
}

/// Parses a genlib expression; returns the tree and input names in first-
/// appearance order (which defines pin order).
fn parse_expr(text: &str, line: usize) -> Result<(Expr, Vec<String>), ParseGenlibError> {
    let mut p = ExprParser {
        chars: text.chars().peekable(),
        inputs: Vec::new(),
        index: HashMap::new(),
        line,
    };
    let e = p.or_expr()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return Err(err(line, "trailing text in expression"));
    }
    Ok((e, p.inputs))
}

impl ExprParser<'_> {
    fn skip_ws(&mut self) {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseGenlibError> {
        let mut acc = self.and_expr()?;
        loop {
            self.skip_ws();
            if self.chars.peek() == Some(&'+') {
                self.chars.next();
                let rhs = self.and_expr()?;
                acc = Expr::Or(Box::new(acc), Box::new(rhs));
            } else if self.chars.peek() == Some(&'^') {
                self.chars.next();
                let rhs = self.and_expr()?;
                acc = Expr::Xor(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Expr, ParseGenlibError> {
        let mut acc = self.factor()?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some('*') => {
                    self.chars.next();
                    let rhs = self.factor()?;
                    acc = Expr::And(Box::new(acc), Box::new(rhs));
                }
                // Juxtaposition also means AND in genlib: `A B` or `A(B+C)`.
                Some(c) if c.is_ascii_alphanumeric() || *c == '(' || *c == '!' || *c == '_' => {
                    let rhs = self.factor()?;
                    acc = Expr::And(Box::new(acc), Box::new(rhs));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseGenlibError> {
        self.skip_ws();
        let mut e = match self.chars.peek() {
            Some('!') => {
                self.chars.next();
                let inner = self.factor()?;
                Expr::Not(Box::new(inner))
            }
            Some('(') => {
                self.chars.next();
                let inner = self.or_expr()?;
                self.skip_ws();
                if self.chars.next() != Some(')') {
                    return Err(err(self.line, "missing ')'"));
                }
                inner
            }
            Some(c) if c.is_ascii_alphanumeric() || *c == '_' => {
                let mut ident = String::new();
                while self
                    .chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    ident.push(self.chars.next().expect("peeked"));
                }
                match ident.as_str() {
                    "CONST0" => Expr::Const(false),
                    "CONST1" => Expr::Const(true),
                    _ => {
                        let next = self.inputs.len();
                        let idx = *self.index.entry(ident.clone()).or_insert_with(|| {
                            self.inputs.push(ident);
                            next
                        });
                        Expr::Input(idx)
                    }
                }
            }
            other => {
                return Err(err(
                    self.line,
                    format!("unexpected {:?} in expression", other.copied().unwrap_or(' ')),
                ))
            }
        };
        // Postfix complement: A'
        loop {
            self.skip_ws();
            if self.chars.peek() == Some(&'\'') {
                self.chars.next();
                e = Expr::Not(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
GATE INVX1   928  Y=!A;          PIN * INV 1.0 999 0.9 0.12 0.9 0.12
GATE NAND2X1 1392 Y=!(A*B);      PIN * INV 1.5 999 1.0 0.12 1.0 0.12
GATE NOR2X1  1392 Y=!(A+B);      PIN * INV 1.5 999 1.3 0.12 1.3 0.12
GATE AND3X1  2320 Y=A*B*C;       PIN * NONINV 2.0 999 1.9 0.12 1.9 0.12
GATE XOR2X1  2784 Y=A*!B + !A*B; PIN * UNKNOWN 2.5 999 1.9 0.14 1.9 0.14
GATE AOI21   1856 Y=!(A*B+C);    PIN * INV 1.5 999 1.2 0.12 1.2 0.12
GATE ONE     0    Y=CONST1;
";

    #[test]
    fn parses_standard_cells_and_skips_exotics() {
        let report = parse_genlib(SAMPLE, "test").unwrap();
        let lib = &report.library;
        assert!(lib.cell_for(PrimitiveFn::Inv, 1).is_some());
        assert!(lib.cell_for(PrimitiveFn::Nand, 2).is_some());
        assert!(lib.cell_for(PrimitiveFn::Nor, 2).is_some());
        assert!(lib.cell_for(PrimitiveFn::And, 3).is_some());
        assert!(lib.cell_for(PrimitiveFn::Xor, 2).is_some());
        let names: Vec<&str> = report.skipped.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"AOI21"), "AOI is not a primitive: {names:?}");
        assert!(names.contains(&"ONE"), "constants are skipped: {names:?}");
    }

    #[test]
    fn characterization_numbers_flow_through() {
        let report = parse_genlib(SAMPLE, "test").unwrap();
        let lib = &report.library;
        let nand2 = lib.cell(lib.cell_for(PrimitiveFn::Nand, 2).unwrap());
        assert_eq!(nand2.name(), "NAND2X1");
        assert!((nand2.area() - 1392.0).abs() < 1e-9);
        assert!((nand2.intrinsic_delay() - 1.0).abs() < 1e-9);
        assert!((nand2.load_delay() - 0.12).abs() < 1e-9);
        assert!((nand2.input_cap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn xor_via_sop_is_recognized() {
        let report = parse_genlib(
            "GATE X 1 Y=A'*B + A*B';\n",
            "t",
        )
        .unwrap();
        assert!(report.library.cell_for(PrimitiveFn::Xor, 2).is_some());
    }

    #[test]
    fn xnor_and_buffer_forms() {
        let report = parse_genlib(
            "GATE XN 1 Y=!(A^B);\nGATE BUFX 1 Y=A;\n",
            "t",
        )
        .unwrap();
        assert!(report.library.cell_for(PrimitiveFn::Xnor, 2).is_some());
        assert!(report.library.cell_for(PrimitiveFn::Buf, 1).is_some());
    }

    #[test]
    fn duplicate_function_first_wins() {
        let report = parse_genlib(
            "GATE N1 1 Y=!(A*B);\nGATE N2 2 Y=!(B*A);\n",
            "t",
        )
        .unwrap();
        let id = report.library.cell_for(PrimitiveFn::Nand, 2).unwrap();
        assert_eq!(report.library.cell(id).name(), "N1");
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn syntax_errors_reported_with_line() {
        let e = parse_genlib("GATE BAD 1 Y=A*\n", "t").unwrap_err();
        assert_eq!(e.line, 1);
        let e2 = parse_genlib("PIN * INV 1 999 1 1 1 1\n", "t").unwrap_err();
        assert!(e2.message.contains("before first GATE"));
        let e3 = parse_genlib("GATE G 1 Y=(A+B;\n", "t").unwrap_err();
        assert!(e3.message.contains("')'"));
    }

    #[test]
    fn latch_rejected() {
        let e = parse_genlib("LATCH DFF 1 Q=D;\n", "t").unwrap_err();
        assert!(e.message.contains("LATCH"));
    }

    #[test]
    fn parsed_library_drives_the_full_pipeline() {
        // A minimal genlib library is enough to build and fingerprint a
        // netlist.
        let src = "\
GATE INV  928  Y=!A;     PIN * INV 1 999 0.9 0.12 0.9 0.12
GATE AND2 1856 Y=A*B;    PIN * NONINV 2 999 1.8 0.12 1.8 0.12
GATE AND3 2320 Y=A*B*C;  PIN * NONINV 2 999 1.9 0.12 1.9 0.12
GATE OR2  1856 Y=A+B;    PIN * NONINV 2 999 2.0 0.12 2.0 0.12
";
        let lib = parse_genlib(src, "mini").unwrap().library;
        let mut n = crate::Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n.validate().unwrap();
        assert_eq!(n.eval(&[true, true, true, false]), vec![true]);
    }
}
