//! Benchmark-scale differential suite for codebook batch verification:
//! the one-shot code-space proof plus per-code combination checks must
//! agree verdict-for-verdict with the per-buyer [`VerifySession`] path
//! that materializes each fingerprinted netlist, on 64-buyer sweeps over
//! c6288 and des and under the PR 1 fault battery (wrong-cell faults in
//! the superposed encoding, bit-flipped buyer codes).
//!
//! The full-size sweeps run in release mode from CI's population smoke
//! job (`cargo test --release -p odcfp-bench --test population_differential
//! -- --ignored`); a small random-DAG sweep keeps the same property in
//! the debug-mode tier-1 run.

use odcfp_bench::netlist_for;
use odcfp_core::faults::FaultInjector;
use odcfp_core::{
    artifact_identity, CancelToken, CodeSpace, CodeSpaceOutcome, Fingerprinter, Verdict,
    VerifyPolicy, VerifySession,
};
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::{CellLibrary, Digest128};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

const BUYERS: u64 = 64;

/// Deterministic buyer codes, mirroring the campaign's seed schedule
/// (`seed ^ (buyer + 1) * golden-ratio` feeding one xoshiro bool per
/// location).
fn buyer_code(seed: u64, buyer: u64, locations: usize) -> Vec<bool> {
    let mixed = seed ^ (buyer + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = Xoshiro256::seed_from_u64(mixed);
    (0..locations).map(|_| rng.next_bool()).collect()
}

fn verdict_kind(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Proven => "proven",
        Verdict::Refuted { .. } => "refuted",
        _ => "undecided",
    }
}

/// The core property: for every buyer code, `check_code` against the
/// code-space proof and a strict per-buyer verify of the materialized
/// netlist return the same verdict kind (and on these circuits, that
/// kind is `proven` — the mint schedule only emits authorized codes).
fn sweep_agrees(name: &str, netlist: odcfp_netlist::Netlist, seed: u64) {
    let fp = Fingerprinter::new(netlist).expect("fingerprinter");
    let locations = fp.selected_modifications().len();
    assert!(locations > 0, "{name}: no fingerprint locations");
    let space = CodeSpace::build(&fp).expect("code space");
    let mut session = VerifySession::new(fp.base()).expect("session");
    let token = CancelToken::new();
    let proof = space.prove(&mut session, None, &token).expect("proof");
    assert_eq!(
        proof.outcome,
        CodeSpaceOutcome::ProvenAll,
        "{name}: ODC-justified code space must prove in one shot"
    );

    let golden_digest = Digest128::of(name.as_bytes());
    let mut codes = std::collections::HashSet::new();
    let mut identities = std::collections::HashSet::new();
    let mut faults = FaultInjector::new(seed ^ 0xFA17);
    for buyer in 0..BUYERS {
        let bits = buyer_code(seed, buyer, locations);
        let batch = session.check_code(&proof, &bits, None, &token);
        let copy = fp.embed(&bits).expect("embed");
        let per_buyer = session
            .verify(copy.netlist(), &VerifyPolicy::strict())
            .expect("per-buyer verify")
            .verdict;
        assert_eq!(
            verdict_kind(&batch),
            verdict_kind(&per_buyer),
            "{name} buyer {buyer}: batch and per-buyer verdicts diverge"
        );
        assert!(
            matches!(batch, Verdict::Proven),
            "{name} buyer {buyer}: authorized code must prove"
        );

        // Fault battery, code tier: a bit-flipped code is still inside
        // the proven space (equivalence holds) but its artifact identity
        // must separate from the honest buyer's.
        if let Some((flipped, _)) = faults.random_bit_flip(&bits) {
            let tampered = session.check_code(&proof, &flipped, None, &token);
            assert!(matches!(tampered, Verdict::Proven));
            assert_ne!(
                artifact_identity(golden_digest, &bits),
                artifact_identity(golden_digest, &flipped),
                "{name} buyer {buyer}: identity digest must catch a code flip"
            );
        }
        // Identity digests must be injective over distinct codes (buyers
        // can legitimately repeat a code when 2^L < population).
        if codes.insert(bits.clone()) {
            assert!(
                identities.insert(artifact_identity(golden_digest, &bits)),
                "{name} buyer {buyer}: duplicate identity digest for a fresh code"
            );
        }
    }
}

/// Fault battery, netlist tier: tamper the superposed encoding with a
/// wrong-cell fault outside the selectable inputs. The one-shot proof
/// must now fail (`SomeCodeDiffers` or a per-code refutation), and every
/// per-code verdict must match a strict per-buyer verify of the equally
/// tampered materialized netlist — verdict for verdict.
fn fault_battery_agrees(name: &str, netlist: odcfp_netlist::Netlist, seed: u64) {
    let fp = Fingerprinter::new(netlist).expect("fingerprinter");
    let locations = fp.selected_modifications().len();
    let space = CodeSpace::build(&fp).expect("code space");
    let mut faults = FaultInjector::new(seed);
    // Deterministically redraw until the fault lands off the widened
    // gates, so the same substitution applies cleanly to both the
    // superposed encoding and each materialized per-buyer copy.
    let (tampered_superposed, gate) = std::iter::from_fn(|| {
        Some(faults.random_wrong_cell(space.superposed()).expect("substitutable gate"))
    })
    .take(32)
    .find(|(_, g)| space.selectable().iter().all(|s| s.gate != *g))
    .expect("a non-selectable gate within 32 draws");

    let mut session = VerifySession::new(fp.base()).expect("session");
    let token = CancelToken::new();
    let proof = session
        .prove_code_space(
            &tampered_superposed,
            space.selectable(),
            space.num_groups(),
            None,
            &token,
        )
        .expect("tampered proof");
    assert!(
        !matches!(proof.outcome, CodeSpaceOutcome::ProvenAll),
        "{name}: wrong-cell fault must break the one-shot proof"
    );

    for buyer in 0..16u64 {
        let bits = buyer_code(seed, buyer, locations);
        let batch = session.check_code(&proof, &bits, None, &token);
        // Per-buyer reference: embed the same code, then apply the same
        // wrong-cell fault to the materialized netlist.
        let copy = fp.embed(&bits).expect("embed");
        let tampered_copy = odcfp_core::faults::substitute_cell(copy.netlist(), gate)
            .expect("same gate must substitute in the materialized copy");
        let per_buyer = session
            .verify(&tampered_copy, &VerifyPolicy::strict())
            .expect("per-buyer verify")
            .verdict;
        assert_eq!(
            verdict_kind(&batch),
            verdict_kind(&per_buyer),
            "{name} buyer {buyer}: fault-battery verdicts diverge"
        );
    }
}

#[test]
fn small_sweep_batch_matches_per_buyer() {
    let netlist = random_dag(
        CellLibrary::standard(),
        DagParams {
            inputs: 10,
            gates: 90,
            outputs: 6,
            window: 24,
            seed: 508,
        },
    );
    sweep_agrees("random-dag", netlist, 11);
}

#[test]
#[ignore = "benchmark scale; run in release from CI's population job"]
fn des_sweep_batch_matches_per_buyer() {
    sweep_agrees("des", netlist_for("des"), 2015);
}

#[test]
#[ignore = "benchmark scale; run in release from CI's population job"]
fn des_fault_battery_batch_matches_per_buyer() {
    fault_battery_agrees("des", netlist_for("des"), 0xBA77);
}

/// c6288 is the known-intractable miter (DESIGN.md §11): the
/// free-selector code-space proof exhausts any reasonable budget, just
/// like its cold whole-circuit miter. The batch-verification contract on
/// such circuits is *fallback*: the proof comes back `Undecided` (never
/// a refutation — the space is genuinely equivalent), and the campaign
/// verifies buyers through the per-buyer fast path, which must prove
/// every authorized buyer and refute the fault battery exactly as in
/// full-artifact mode.
#[test]
#[ignore = "benchmark scale; run in release from CI's population job"]
fn c6288_budgeted_proof_falls_back_to_per_buyer() {
    let name = "c6288";
    let fp = Fingerprinter::new(netlist_for(name)).expect("fingerprinter");
    let locations = fp.selected_modifications().len();
    let space = CodeSpace::build(&fp).expect("code space");
    let mut session = VerifySession::new(fp.base()).expect("session");
    let token = CancelToken::new();
    let proof = space
        .prove(&mut session, Some(20_000), &token)
        .expect("budgeted proof");
    match proof.outcome {
        // A faster solver may someday prove it — then the strong
        // contract applies and the full sweep must agree.
        CodeSpaceOutcome::ProvenAll => sweep_agrees(name, netlist_for(name), 2015),
        CodeSpaceOutcome::SomeCodeDiffers { .. } => {
            panic!("{name}: the code space is equivalent; a refutation is a soundness bug")
        }
        CodeSpaceOutcome::Undecided => {
            // Fallback leg: the per-buyer fast path decides all 64
            // buyers (this is what a delta campaign runs after
            // CodeSpaceFallback) ...
            let policy = VerifyPolicy::strict();
            for buyer in 0..BUYERS {
                let bits = buyer_code(2015, buyer, locations);
                let copy = fp.embed(&bits).expect("embed");
                let verdict = session
                    .verify(copy.netlist(), &policy)
                    .expect("per-buyer verify")
                    .verdict;
                assert!(
                    matches!(verdict, Verdict::Proven),
                    "{name} buyer {buyer}: fallback path must prove an authorized code"
                );
            }
            // ... and still catches the fault battery.
            let mut faults = FaultInjector::new(0xBA77);
            let copy = fp
                .embed(&buyer_code(2015, 0, locations))
                .expect("embed");
            let (faulty, _gate) = faults
                .random_wrong_cell(copy.netlist())
                .expect("substitutable gate");
            let verdict = session
                .verify(&faulty, &policy)
                .expect("verify")
                .verdict;
            assert!(
                matches!(verdict, Verdict::Refuted { .. }),
                "{name}: fallback path must refute a wrong-cell fault"
            );
        }
    }
}
