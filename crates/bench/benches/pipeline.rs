//! Runtime of each fingerprinting stage: location discovery, engine
//! construction (candidate selection), embedding, extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_analysis::{engine, AnalysisEngine};
use odcfp_bench::netlist_for;
use odcfp_core::{find_locations, find_locations_naive, find_locations_with, Fingerprinter};

fn bench_pipeline(c: &mut Criterion) {
    for name in ["c432", "c880", "c1908"] {
        let base = netlist_for(name);
        c.bench_function(format!("find_locations/{name}"), |b| {
            b.iter(|| black_box(find_locations(black_box(&base))))
        });
        c.bench_function(format!("find_locations_naive/{name}"), |b| {
            b.iter(|| black_box(find_locations_naive(black_box(&base))))
        });
        let eng = AnalysisEngine::new(&base).unwrap();
        c.bench_function(format!("find_locations_engine_1t/{name}"), |b| {
            b.iter(|| black_box(find_locations_with(black_box(&base), &eng, 1)))
        });
        let threads = engine::configured_threads();
        c.bench_function(format!("find_locations_engine_{threads}t/{name}"), |b| {
            b.iter(|| black_box(find_locations_with(black_box(&base), &eng, threads)))
        });
        c.bench_function(format!("engine_new/{name}"), |b| {
            b.iter(|| Fingerprinter::new(black_box(base.clone())).unwrap())
        });
        let fp = Fingerprinter::new(base).unwrap();
        c.bench_function(format!("embed_all/{name}"), |b| {
            b.iter(|| fp.embed_all().unwrap())
        });
        let copy = fp.embed_seeded(1).unwrap();
        c.bench_function(format!("extract/{name}"), |b| {
            b.iter(|| black_box(fp.extract(black_box(copy.netlist()))))
        });
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
