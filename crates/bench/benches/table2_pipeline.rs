//! End-to-end runtime of regenerating one Table II row (generation →
//! location discovery → embedding → measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_bench::run_table2;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_row");
    group.sample_size(10);
    for name in ["c432", "c880", "c1908"] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_table2(&[name])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
