//! Runtime of the substrate layers: the SAT solver on classic hard/easy
//! families, BLIF parsing + technology mapping, Verilog I/O, the optimizer,
//! and benchmark generation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_bench::netlist_for;
use odcfp_netlist::CellLibrary;
use odcfp_sat::{CnfBuilder, Lit, SolveResult, Solver};

fn pigeonhole(n: i64) -> CnfBuilder {
    let h = n - 1;
    let mut cnf = CnfBuilder::new();
    let vars = cnf.new_vars((n * h) as usize);
    let p = |i: i64, j: i64| vars[(i * h + j) as usize];
    for i in 0..n {
        cnf.add_clause((0..h).map(|j| Lit::pos(p(i, j))));
    }
    for j in 0..h {
        for a in 0..n {
            for b in (a + 1)..n {
                cnf.add_clause([Lit::neg(p(a, j)), Lit::neg(p(b, j))]);
            }
        }
    }
    cnf
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(10);
    for n in [6i64, 7, 8] {
        let cnf = pigeonhole(n);
        group.bench_function(format!("pigeonhole_{n}"), |b| {
            b.iter(|| {
                let mut s = Solver::from_cnf(black_box(&cnf));
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn bench_flows(c: &mut Criterion) {
    // BLIF parse + map on a generated two-level model.
    let pla = odcfp_synth::benchmarks::pla::two_level(
        CellLibrary::standard(),
        odcfp_synth::benchmarks::pla::PlaParams::vda_like(),
    );
    let verilog_text = odcfp_verilog::write_verilog(&pla);
    c.bench_function("verilog_write/vda", |b| {
        b.iter(|| black_box(odcfp_verilog::write_verilog(black_box(&pla))))
    });
    c.bench_function("verilog_parse/vda", |b| {
        b.iter(|| {
            odcfp_verilog::parse_verilog(black_box(&verilog_text), CellLibrary::standard())
                .unwrap()
        })
    });
    let blif_src = "\
.model bench
.inputs a b c d e
.outputs x y
.names a b c t1
110 1
001 1
.names t1 d t2
11 1
.names t2 e x
1- 1
-1 1
.names a e y
10 1
.end
";
    c.bench_function("blif_parse_map/small", |b| {
        b.iter(|| {
            let net = odcfp_blif::parse_blif(black_box(blif_src)).unwrap();
            odcfp_synth::map_network(&net, CellLibrary::standard()).unwrap()
        })
    });
    let c880 = netlist_for("c880");
    c.bench_function("optimize/c880", |b| {
        b.iter(|| black_box(odcfp_synth::opt::optimize(black_box(&c880))))
    });
    c.bench_function("generate/c6288", |b| {
        b.iter(|| black_box(netlist_for("c6288")))
    });
}

criterion_group!(benches, bench_solver, bench_flows);
criterion_main!(benches);
