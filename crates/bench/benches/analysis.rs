//! Runtime of the analysis substrate: STA, area, power, simulation, FFC
//! sweep — on the largest benchmarks, since these dominate the heuristics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_analysis::{area, cones, power, sta, AnalysisEngine};
use odcfp_bench::netlist_for;
use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::sim;

fn bench_analysis(c: &mut Criterion) {
    for name in ["c880", "c6288"] {
        let n = netlist_for(name);
        c.bench_function(format!("sta/{name}"), |b| {
            b.iter(|| sta::analyze(black_box(&n)).unwrap())
        });
        c.bench_function(format!("area/{name}"), |b| {
            b.iter(|| black_box(area::total_area(black_box(&n))))
        });
        c.bench_function(format!("power_16w/{name}"), |b| {
            b.iter(|| power::estimate_power(black_box(&n), 16, 7))
        });
        let mut rng = Xoshiro256::seed_from_u64(3);
        let patterns: Vec<Vec<u64>> = (0..n.primary_inputs().len())
            .map(|_| sim::random_words(&mut rng, 16))
            .collect();
        c.bench_function(format!("simulate_16w/{name}"), |b| {
            b.iter(|| black_box(n.simulate(black_box(&patterns))))
        });
        let roots: Vec<_> = n.gates().map(|(id, _)| id).take(64).collect();
        c.bench_function(format!("ffc_sweep_64/{name}"), |b| {
            b.iter(|| {
                for &r in &roots {
                    black_box(cones::ffc_of(&n, r));
                }
            })
        });
        // Engine counterparts: one dominator-tree build amortizes every
        // cone query.
        c.bench_function(format!("engine_build/{name}"), |b| {
            b.iter(|| black_box(AnalysisEngine::new(black_box(&n)).unwrap()))
        });
        let eng = AnalysisEngine::new(&n).unwrap();
        c.bench_function(format!("engine_ffc_sweep_64/{name}"), |b| {
            b.iter(|| {
                for &r in &roots {
                    black_box(eng.ffc_of(r));
                }
            })
        });
    }
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
