//! Runtime of the delay-constraint heuristics: the paper's exhaustive
//! reactive method versus the slack-guided approximation and the proactive
//! method.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_bench::netlist_for;
use odcfp_core::heuristics::{
    proactive_delay_embedding, reactive_delay_reduction, ReactiveOptions,
};
use odcfp_core::Fingerprinter;

fn bench_heuristics(c: &mut Criterion) {
    let fp = Fingerprinter::new(netlist_for("c432")).unwrap();
    let mut group = c.benchmark_group("heuristics_c432_10pct");
    group.sample_size(10);
    group.bench_function("reactive_slack_guided", |b| {
        b.iter(|| {
            reactive_delay_reduction(black_box(&fp), 10.0, ReactiveOptions::default()).unwrap()
        })
    });
    group.bench_function("reactive_exhaustive", |b| {
        b.iter(|| {
            reactive_delay_reduction(
                black_box(&fp),
                10.0,
                ReactiveOptions {
                    exhaustive: true,
                    ..ReactiveOptions::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("proactive", |b| {
        b.iter(|| proactive_delay_embedding(black_box(&fp), 10.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
