//! Runtime of the equivalence-checking layer: the fast simulation pre-check
//! and the full SAT miter proof of a fully fingerprinted copy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odcfp_bench::netlist_for;
use odcfp_core::Fingerprinter;
use odcfp_sat::{check_equivalence, probably_equivalent, EquivResult};

fn bench_equiv(c: &mut Criterion) {
    for name in ["c432", "c880"] {
        let fp = Fingerprinter::new(netlist_for(name)).unwrap();
        let copy = fp.embed_all().unwrap();
        c.bench_function(format!("sim_equiv_16w/{name}"), |b| {
            b.iter(|| {
                assert!(probably_equivalent(
                    black_box(fp.base()),
                    black_box(copy.netlist()),
                    16,
                    9
                )
                .unwrap())
            })
        });
        let mut group = c.benchmark_group("sat_miter");
        group.sample_size(10);
        group.bench_function(name, |b| {
            b.iter(|| {
                let verdict =
                    check_equivalence(black_box(fp.base()), black_box(copy.netlist()), None)
                        .unwrap();
                assert_eq!(verdict, EquivResult::Equivalent);
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_equiv);
criterion_main!(benches);
