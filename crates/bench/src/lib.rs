//! Experiment harness regenerating the paper's tables and figures.
//!
//! Every table and figure of the evaluation section has a runner here and a
//! binary wrapping it:
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | Table II (per-circuit capacity + overheads) | [`run_table2`] | `table2` |
//! | Table III (delay-constrained averages) | [`run_table3`] | `table3` |
//! | Fig. 7 (fingerprint bits, unconstrained vs constrained) | [`run_fig7`] | `fig7` |
//! | Policy/heuristic ablations (DESIGN.md §6) | [`run_policy_ablation`], [`run_heuristic_ablation`] | `ablation` |
//!
//! Criterion benches in `benches/` measure the *runtime* of each pipeline
//! stage; these runners measure *design quality*, which is what the paper
//! reports. All runs are deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use odcfp_analysis::DesignMetrics;
use odcfp_core::heuristics::{
    proactive_delay_embedding, reactive_delay_reduction, ReactiveOptions,
};
use odcfp_core::{Fingerprinter, SelectionPolicy};
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_synth::benchmarks;

pub use odcfp_synth::benchmarks::TABLE2_NAMES;

/// The delay-overhead constraints of Table III, in percent.
pub const TABLE3_CONSTRAINTS: [f64; 3] = [10.0, 5.0, 1.0];

/// One reference row: `(name, gates, locations, log2_combinations, area%,
/// delay%, power%)`; power is `None` where the paper reports N/A.
pub type PaperTable2Row = (&'static str, usize, usize, f64, f64, f64, Option<f64>);

/// The paper's Table II reference values for shape comparison.
/// (C6288's power column is N/A in the paper and recorded as `None`.)
pub const PAPER_TABLE2: [PaperTable2Row; 14] = [
    ("c432", 166, 40, 68.07, 11.19, 54.69, Some(6.05)),
    ("c499", 409, 112, 177.16, 9.25, 31.23, Some(10.00)),
    ("c880", 255, 38, 66.58, 6.52, 47.05, Some(5.86)),
    ("c1355", 412, 118, 187.36, 9.86, 30.38, Some(9.44)),
    ("c1908", 395, 88, 151.25, 11.40, 46.53, Some(11.92)),
    ("c3540", 851, 179, 376.79, 10.10, 50.52, Some(9.46)),
    ("c6288", 3056, 420, 635.26, 6.29, 34.33, None),
    ("des", 3544, 782, 1438.62, 11.87, 75.00, Some(8.13)),
    ("k2", 1206, 241, 470.25, 13.36, 78.87, Some(8.64)),
    ("t481", 826, 178, 418.62, 13.49, 74.42, Some(7.08)),
    ("i10", 1600, 316, 601.15, 9.85, 48.70, Some(9.03)),
    ("i8", 1211, 235, 541.13, 9.45, 67.44, Some(10.63)),
    ("dalu", 836, 298, 507.57, 15.97, 47.13, Some(21.45)),
    ("vda", 635, 134, 277.42, 14.24, 58.98, Some(9.75)),
];

/// The paper's Table III reference averages:
/// `(constraint%, fingerprint reduction%, area%, delay%, power%)`.
pub const PAPER_TABLE3: [(f64, f64, f64, f64, f64); 3] = [
    (10.0, 49.00, 5.04, 9.42, 4.99),
    (5.0, 64.30, 3.57, 4.44, 2.46),
    (1.0, 81.03, 2.40, 0.41, 2.65),
];

/// One row of the regenerated Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Original gate count.
    pub gates: usize,
    /// Base metrics (columns 3–5 of the paper).
    pub base: DesignMetrics,
    /// Fingerprint locations found (column 6 analogue).
    pub locations: usize,
    /// `log2` of the possible fingerprint combinations (column 7).
    pub log2_combinations: f64,
    /// Area overhead percent after embedding every location (column 8).
    pub area_overhead_pct: f64,
    /// Delay overhead percent (column 9).
    pub delay_overhead_pct: f64,
    /// Power overhead percent (column 10).
    pub power_overhead_pct: f64,
}

/// Builds the fingerprinting engine for one named benchmark.
///
/// # Panics
///
/// Panics if the name is unknown (callers validate against
/// [`TABLE2_NAMES`]).
pub fn engine_for(name: &str, library: Arc<CellLibrary>) -> Fingerprinter {
    let base = benchmarks::generate(name, library)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    Fingerprinter::new(base).expect("generated benchmarks validate")
}

fn measure_row(name: &str, fp: &Fingerprinter) -> Table2Row {
    let base = DesignMetrics::measure(fp.base());
    let cap = fp.capacity();
    let copy = fp.embed_all().expect("embedding preserves function");
    let marked = DesignMetrics::measure(copy.netlist());
    let oh = marked.overhead_vs(&base);
    Table2Row {
        name: name.to_owned(),
        gates: fp.base().num_gates(),
        base,
        locations: cap.num_locations,
        log2_combinations: cap.log2_combinations,
        area_overhead_pct: oh.area_pct,
        delay_overhead_pct: oh.delay_pct,
        power_overhead_pct: oh.power_pct,
    }
}

/// Regenerates Table II for the named benchmarks.
pub fn run_table2(names: &[&str]) -> Vec<Table2Row> {
    let lib = CellLibrary::standard();
    names
        .iter()
        .map(|name| {
            let fp = engine_for(name, lib.clone());
            measure_row(name, &fp)
        })
        .collect()
}

/// Formats Table II rows (plus averages) in the paper's column layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>10} {:>7} {:>9} {:>6} {:>9} {:>8} {:>8} {:>8}",
        "circuit", "gates", "area", "delay", "power", "locs", "log2(FP)", "area%", "delay%", "power%"
    );
    let mut sums = [0.0f64; 3];
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>10.0} {:>7.2} {:>9.1} {:>6} {:>9.2} {:>8.2} {:>8.2} {:>8.2}",
            r.name,
            r.gates,
            r.base.area,
            r.base.delay,
            r.base.power,
            r.locations,
            r.log2_combinations,
            r.area_overhead_pct,
            r.delay_overhead_pct,
            r.power_overhead_pct
        );
        sums[0] += r.area_overhead_pct;
        sums[1] += r.delay_overhead_pct;
        sums[2] += r.power_overhead_pct;
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>10} {:>7} {:>9} {:>6} {:>9} {:>8.2} {:>8.2} {:>8.2}",
        "AVG", "", "", "", "", "", "", sums[0] / n, sums[1] / n, sums[2] / n
    );
    out
}

/// One row of the regenerated Table III (averages over a benchmark set).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Delay-overhead constraint in percent.
    pub constraint_pct: f64,
    /// Average percentage of fingerprint locations removed.
    pub fingerprint_reduction_pct: f64,
    /// Average surviving area overhead percent.
    pub area_overhead_pct: f64,
    /// Average surviving delay overhead percent.
    pub delay_overhead_pct: f64,
    /// Average surviving power overhead percent.
    pub power_overhead_pct: f64,
}

/// Which §III-D heuristic a Table III run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Table3Method {
    /// The paper's evaluated method (start full, remove until constrained).
    #[default]
    Reactive,
    /// The proactive alternative (add slack-rich locations first).
    Proactive,
}

/// Regenerates Table III: the chosen heuristic applied at each constraint,
/// averaged over the named benchmarks.
pub fn run_table3_with(
    names: &[&str],
    constraints: &[f64],
    method: Table3Method,
) -> Vec<Table3Row> {
    let lib = CellLibrary::standard();
    let engines: Vec<Fingerprinter> = names
        .iter()
        .map(|name| engine_for(name, lib.clone()))
        .collect();
    constraints
        .iter()
        .map(|&pct| {
            let mut sums = [0.0f64; 4];
            for fp in &engines {
                let r = match method {
                    Table3Method::Reactive => {
                        reactive_delay_reduction(fp, pct, ReactiveOptions::default())
                    }
                    Table3Method::Proactive => proactive_delay_embedding(fp, pct),
                }
                .expect("heuristic embeds valid subsets");
                let oh = r.metrics.overhead_vs(&r.base_metrics);
                sums[0] += r.fingerprint_reduction_pct;
                sums[1] += oh.area_pct;
                sums[2] += oh.delay_pct;
                sums[3] += oh.power_pct;
            }
            let n = engines.len().max(1) as f64;
            Table3Row {
                constraint_pct: pct,
                fingerprint_reduction_pct: sums[0] / n,
                area_overhead_pct: sums[1] / n,
                delay_overhead_pct: sums[2] / n,
                power_overhead_pct: sums[3] / n,
            }
        })
        .collect()
}

/// [`run_table3_with`] using the paper's reactive method.
pub fn run_table3(names: &[&str], constraints: &[f64]) -> Vec<Table3Row> {
    run_table3_with(names, constraints, Table3Method::Reactive)
}

/// Formats Table III rows in the paper's layout.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>8} {:>8} {:>8}",
        "constraint", "FP reduce%", "area%", "delay%", "power%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>12.2} {:>8.2} {:>8.2} {:>8.2}",
            format!("{}% delay constraint", r.constraint_pct),
            r.fingerprint_reduction_pct,
            r.area_overhead_pct,
            r.delay_overhead_pct,
            r.power_overhead_pct
        );
    }
    out
}

/// One series of Figure 7: fingerprint size (bits) per circuit, before and
/// after each delay constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Series {
    /// Benchmark name.
    pub name: String,
    /// Unconstrained fingerprint size in bits (`log2` combinations).
    pub unconstrained_bits: f64,
    /// `(constraint%, surviving bits)` per constraint.
    pub constrained_bits: Vec<(f64, f64)>,
}

/// Regenerates Figure 7 for the named benchmarks.
///
/// Surviving bits after a constraint are computed over the locations the
/// reactive heuristic keeps.
pub fn run_fig7(names: &[&str], constraints: &[f64]) -> Vec<Fig7Series> {
    let lib = CellLibrary::standard();
    names
        .iter()
        .map(|name| {
            let fp = engine_for(name, lib.clone());
            let cap = fp.capacity();
            let per_location_bits: Vec<f64> = fp
                .locations()
                .iter()
                .map(|l| (l.num_configurations() as f64).log2())
                .collect();
            let constrained_bits = constraints
                .iter()
                .map(|&pct| {
                    let r = reactive_delay_reduction(&fp, pct, ReactiveOptions::default())
                        .expect("heuristic embeds valid subsets");
                    let bits: f64 = r
                        .copy
                        .bits()
                        .iter()
                        .zip(&per_location_bits)
                        .filter(|(&kept, _)| kept)
                        .map(|(_, &b)| b)
                        .sum::<f64>()
                        .max(0.0);
                    (pct, bits)
                })
                .collect();
            Fig7Series {
                name: (*name).to_owned(),
                unconstrained_bits: cap.log2_combinations,
                constrained_bits,
            }
        })
        .collect()
}

/// Renders Figure 7 as an ASCII bar chart (one group of bars per circuit).
pub fn format_fig7(series: &[Fig7Series]) -> String {
    let max_bits = series
        .iter()
        .map(|s| s.unconstrained_bits)
        .fold(1.0f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(out, "Fingerprint size (bits) before/after delay constraints");
    for s in series {
        let bar = |bits: f64| {
            let w = ((bits / max_bits) * 50.0).round() as usize;
            "#".repeat(w.max(usize::from(bits > 0.0)))
        };
        let _ = writeln!(
            out,
            "{:<8} unconstrained {:>8.1} |{}",
            s.name,
            s.unconstrained_bits,
            bar(s.unconstrained_bits)
        );
        for &(pct, bits) in &s.constrained_bits {
            let _ = writeln!(
                out,
                "{:<8} {:>3.0}% delay     {:>8.1} |{}",
                "", pct, bits, bar(bits)
            );
        }
    }
    out
}

/// Result of the selection-policy ablation (DESIGN.md §6.1): overheads of
/// the paper's depth-aware policy versus seeded-random selection.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyAblationRow {
    /// Benchmark name.
    pub name: String,
    /// Delay overhead with [`SelectionPolicy::DeepTargetEarlyTrigger`].
    pub deep_delay_pct: f64,
    /// Delay overhead with [`SelectionPolicy::Random`].
    pub random_delay_pct: f64,
    /// Area overheads, same order.
    pub deep_area_pct: f64,
    /// Area overhead for the random policy.
    pub random_area_pct: f64,
}

/// Runs the selection-policy ablation on the named benchmarks.
pub fn run_policy_ablation(names: &[&str], seed: u64) -> Vec<PolicyAblationRow> {
    let lib = CellLibrary::standard();
    names
        .iter()
        .map(|name| {
            let base = benchmarks::generate(name, lib.clone()).expect("known benchmark");
            let overheads = |policy: SelectionPolicy| {
                let fp = Fingerprinter::with_policy(base.clone(), policy).expect("valid");
                let bm = DesignMetrics::measure(fp.base());
                let copy = fp.embed_all().expect("equivalent");
                DesignMetrics::measure(copy.netlist()).overhead_vs(&bm)
            };
            let deep = overheads(SelectionPolicy::DeepTargetEarlyTrigger);
            let random = overheads(SelectionPolicy::Random(seed));
            PolicyAblationRow {
                name: (*name).to_owned(),
                deep_delay_pct: deep.delay_pct,
                random_delay_pct: random.delay_pct,
                deep_area_pct: deep.area_pct,
                random_area_pct: random.area_pct,
            }
        })
        .collect()
}

/// Result of the reactive-vs-proactive heuristic ablation (DESIGN.md §6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicAblationRow {
    /// Benchmark name.
    pub name: String,
    /// Constraint in percent.
    pub constraint_pct: f64,
    /// Locations kept by the reactive method.
    pub reactive_kept: usize,
    /// Locations kept by the proactive method.
    pub proactive_kept: usize,
    /// Final delay overhead of each method.
    pub reactive_delay_pct: f64,
    /// Final delay overhead of the proactive method.
    pub proactive_delay_pct: f64,
}

/// Runs the reactive-vs-proactive ablation on the named benchmarks.
pub fn run_heuristic_ablation(names: &[&str], constraint_pct: f64) -> Vec<HeuristicAblationRow> {
    let lib = CellLibrary::standard();
    names
        .iter()
        .map(|name| {
            let fp = engine_for(name, lib.clone());
            let re = reactive_delay_reduction(&fp, constraint_pct, ReactiveOptions::default())
                .expect("valid");
            let pro = proactive_delay_embedding(&fp, constraint_pct).expect("valid");
            HeuristicAblationRow {
                name: (*name).to_owned(),
                constraint_pct,
                reactive_kept: re.kept_locations(),
                proactive_kept: pro.kept_locations(),
                reactive_delay_pct: re.metrics.overhead_vs(&re.base_metrics).delay_pct,
                proactive_delay_pct: pro.metrics.overhead_vs(&pro.base_metrics).delay_pct,
            }
        })
        .collect()
}

/// Resolves CLI benchmark-name arguments: no arguments = full Table II
/// suite; `--fast` = a small representative subset.
///
/// # Panics
///
/// Panics with a friendly message on unknown names.
pub fn names_from_args(args: &[String]) -> Vec<&'static str> {
    if args.iter().any(|a| a == "--fast") {
        return vec!["c432", "c499", "c880", "vda"];
    }
    if args.is_empty() {
        return TABLE2_NAMES.to_vec();
    }
    args.iter()
        .map(|a| {
            TABLE2_NAMES
                .iter()
                .find(|n| n.eq_ignore_ascii_case(a))
                .copied()
                .unwrap_or_else(|| panic!("unknown benchmark {a:?}; known: {TABLE2_NAMES:?}"))
        })
        .collect()
}

/// A convenience used by benches: the mapped netlist for a benchmark name.
pub fn netlist_for(name: &str) -> Netlist {
    benchmarks::generate(name, CellLibrary::standard())
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_runs_on_small_subset() {
        let rows = run_table2(&["c432"]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.locations > 10);
        assert!(r.log2_combinations > r.locations as f64);
        assert!(r.area_overhead_pct > 0.0);
        let text = format_table2(&rows);
        assert!(text.contains("c432"));
        assert!(text.contains("AVG"));
    }

    #[test]
    fn table3_proactive_keeps_more() {
        let reactive = run_table3_with(&["c432"], &[10.0], Table3Method::Reactive);
        let proactive = run_table3_with(&["c432"], &[10.0], Table3Method::Proactive);
        assert!(proactive[0].delay_overhead_pct <= 10.0 + 1e-9);
        assert!(
            proactive[0].fingerprint_reduction_pct
                <= reactive[0].fingerprint_reduction_pct + 1e-9,
            "proactive should keep at least as many locations on c432"
        );
    }

    #[test]
    fn table3_monotone_reduction() {
        let rows = run_table3(&["c432"], &[10.0, 1.0]);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].fingerprint_reduction_pct >= rows[0].fingerprint_reduction_pct,
            "tighter constraint must remove at least as many locations"
        );
        assert!(rows[0].delay_overhead_pct <= 10.0 + 1e-9);
        assert!(rows[1].delay_overhead_pct <= 1.0 + 1e-9);
        let text = format_table3(&rows);
        assert!(text.contains("10% delay constraint"));
    }

    #[test]
    fn fig7_bits_shrink_under_constraint() {
        let series = run_fig7(&["c432"], &[10.0, 1.0]);
        let s = &series[0];
        assert!(s.unconstrained_bits > 0.0);
        assert!(s.constrained_bits[0].1 <= s.unconstrained_bits);
        assert!(s.constrained_bits[1].1 <= s.constrained_bits[0].1 + 1e-9);
        let chart = format_fig7(&series);
        assert!(chart.contains("c432"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn ablations_run() {
        let rows = run_policy_ablation(&["c432"], 42);
        assert_eq!(rows.len(), 1);
        let h = run_heuristic_ablation(&["c432"], 10.0);
        assert!(h[0].reactive_delay_pct <= 10.0 + 1e-9);
        assert!(h[0].proactive_delay_pct <= 10.0 + 1e-9);
    }

    #[test]
    fn names_resolution() {
        assert_eq!(names_from_args(&[]).len(), 14);
        assert_eq!(names_from_args(&["--fast".into()]).len(), 4);
        assert_eq!(names_from_args(&["C432".into()]), vec!["c432"]);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        names_from_args(&["s38417".into()]);
    }
}
