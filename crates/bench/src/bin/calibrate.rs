//! Quick pipeline smoke run: locations, capacity and overheads per benchmark.

use odcfp_analysis::DesignMetrics;
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks::{generate, TABLE2_NAMES};

fn main() {
    let lib = CellLibrary::standard();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        TABLE2_NAMES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in names {
        let t0 = std::time::Instant::now();
        let base = generate(name, lib.clone()).expect("known benchmark");
        let fp = Fingerprinter::new(base).expect("valid");
        let cap = fp.capacity();
        let copy = fp.embed_all().expect("equivalent");
        let bm = DesignMetrics::measure(fp.base());
        let cm = DesignMetrics::measure(copy.netlist());
        let oh = cm.overhead_vs(&bm);
        println!(
            "{name:8} gates={:5} locs={:4} log2={:7.2} area={:+6.2}% delay={:+6.2}% power={:+6.2}%  ({:.2}s)",
            fp.base().num_gates(),
            cap.num_locations,
            cap.log2_combinations,
            oh.area_pct,
            oh.delay_pct,
            oh.power_pct,
            t0.elapsed().as_secs_f64()
        );
    }
}
