//! Regenerates the paper's Table III: average fingerprint reduction and
//! surviving overheads after the delay-constrained heuristic at
//! 10% / 5% / 1% budgets.
//!
//! Usage: `table3 [--fast | circuit names...] [--method reactive|proactive]`
//! (the paper evaluates the reactive method, the default).

use odcfp_bench::{
    format_table3, names_from_args, run_table3_with, Table3Method, PAPER_TABLE3,
    TABLE3_CONSTRAINTS,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let method = if let Some(at) = args.iter().position(|a| a == "--method") {
        args.remove(at);
        match args.remove(at.min(args.len().saturating_sub(1))).as_str() {
            "reactive" => Table3Method::Reactive,
            "proactive" => Table3Method::Proactive,
            other => panic!("unknown method {other:?}"),
        }
    } else {
        Table3Method::Reactive
    };
    let names = names_from_args(&args);
    let rows = run_table3_with(&names, &TABLE3_CONSTRAINTS, method);
    println!(
        "== Table III ({method:?} heuristic, averaged over {} circuits) ==",
        names.len()
    );
    print!("{}", format_table3(&rows));
    println!();
    println!("== Paper reference (Dunbar & Qu, DAC'15, Table III) ==");
    println!(
        "{:<22} {:>12} {:>8} {:>8} {:>8}",
        "constraint", "FP reduce%", "area%", "delay%", "power%"
    );
    for (pct, red, area, delay, power) in PAPER_TABLE3 {
        println!(
            "{:<22} {red:>12.2} {area:>8.2} {delay:>8.2} {power:>8.2}",
            format!("{pct}% delay constraint")
        );
    }
}
