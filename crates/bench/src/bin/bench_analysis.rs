//! Engine-vs-naive analysis benchmark: regenerates `BENCH_analysis.json`
//! at the repository root, recording the wall-clock trajectory of location
//! discovery, FFC sweeps, and the full embed pipeline on the largest
//! synthesized benchmarks.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_analysis
//! [--fast] [names...]` (default: `c6288 des`).

use std::path::PathBuf;
use std::time::Instant;

use odcfp_analysis::{cones, engine, AnalysisEngine};
use odcfp_bench::netlist_for;
use odcfp_core::{find_locations_naive, find_locations_with, Fingerprinter};
use odcfp_netlist::Netlist;

/// Minimum wall time of `reps` runs, in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

struct Row {
    name: String,
    gates: usize,
    nets: usize,
    locations: usize,
    locate_naive_ms: f64,
    locate_engine_1t_ms: f64,
    locate_engine_mt_ms: f64,
    ffc_naive_ms: f64,
    ffc_engine_ms: f64,
    pipeline_engine_ms: f64,
    pipeline_naive_ms: f64,
}

fn measure(name: &str, reps: usize, threads: usize) -> Row {
    let base: Netlist = netlist_for(name);
    let eng = AnalysisEngine::new(&base).expect("benchmarks are acyclic");

    let locations = find_locations_naive(&base);
    let locate_naive_ms = time_ms(reps, || find_locations_naive(&base));
    let locate_engine_1t_ms = time_ms(reps, || find_locations_with(&base, &eng, 1));
    let locate_engine_mt_ms = time_ms(reps, || find_locations_with(&base, &eng, threads));

    let roots: Vec<_> = base.gates().map(|(id, _)| id).collect();
    let ffc_naive_ms = time_ms(reps, || {
        for &r in &roots {
            std::hint::black_box(cones::ffc_of(&base, r));
        }
    });
    let ffc_engine_ms = time_ms(reps, || {
        let e = AnalysisEngine::new(&base).expect("acyclic");
        for &r in &roots {
            std::hint::black_box(e.ffc_of(r));
        }
    });

    // Full pipeline with the engine: analysis + selection + embed-all bits
    // (includes the simulation equivalence check of `embed`).
    let pipeline_engine_ms = time_ms(reps, || {
        let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
        fp.embed_all().expect("embedding preserves function")
    });
    // The pre-engine pipeline differed only in the location-analysis stage
    // (the naive scan is kept in-tree as the oracle); reconstruct its wall
    // time from the shared downstream stages.
    let pipeline_naive_ms = pipeline_engine_ms - locate_engine_1t_ms + locate_naive_ms;

    Row {
        name: name.to_owned(),
        gates: base.num_gates(),
        nets: base.num_nets(),
        locations: locations.len(),
        locate_naive_ms,
        locate_engine_1t_ms,
        locate_engine_mt_ms,
        ffc_naive_ms,
        ffc_engine_ms,
        pipeline_engine_ms,
        pipeline_naive_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let names: Vec<String> = {
        let named: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
        if !named.is_empty() {
            named
        } else if fast {
            vec!["c880".into()]
        } else {
            vec!["c6288".into(), "des".into()]
        }
    };
    let reps = if fast { 1 } else { 3 };
    let threads = engine::configured_threads();

    let mut rows = Vec::new();
    for name in &names {
        eprintln!("measuring {name}...");
        let r = measure(name, reps, threads);
        eprintln!(
            "{name:8} locate: naive {:.1}ms engine {:.1}ms ({:.1}x); \
             ffc sweep: {:.1}ms vs {:.1}ms; pipeline: {:.1}ms vs {:.1}ms",
            r.locate_naive_ms,
            r.locate_engine_1t_ms,
            r.locate_naive_ms / r.locate_engine_1t_ms,
            r.ffc_naive_ms,
            r.ffc_engine_ms,
            r.pipeline_naive_ms,
            r.pipeline_engine_ms,
        );
        rows.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"odcfp-bench-analysis/1\",\n  \"threads\": {threads},\n  \"reps\": {reps},\n  \"benchmarks\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        let locate_rate = r.gates as f64 / (r.locate_engine_1t_ms / 1e3);
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!("      \"gates\": {},\n", r.gates));
        json.push_str(&format!("      \"nets\": {},\n", r.nets));
        json.push_str(&format!("      \"locations\": {},\n", r.locations));
        json.push_str("      \"find_locations\": {\n");
        json.push_str(&format!("        \"naive_ms\": {},\n", json_f(r.locate_naive_ms)));
        json.push_str(&format!("        \"engine_1t_ms\": {},\n", json_f(r.locate_engine_1t_ms)));
        json.push_str(&format!("        \"engine_mt_ms\": {},\n", json_f(r.locate_engine_mt_ms)));
        json.push_str(&format!(
            "        \"speedup_1t\": {},\n",
            json_f(r.locate_naive_ms / r.locate_engine_1t_ms)
        ));
        json.push_str(&format!(
            "        \"speedup_mt\": {},\n",
            json_f(r.locate_naive_ms / r.locate_engine_mt_ms)
        ));
        json.push_str(&format!("        \"gates_per_sec_1t\": {}\n", json_f(locate_rate)));
        json.push_str("      },\n");
        json.push_str("      \"ffc_sweep_all_gates\": {\n");
        json.push_str(&format!("        \"naive_ms\": {},\n", json_f(r.ffc_naive_ms)));
        json.push_str(&format!("        \"engine_ms\": {},\n", json_f(r.ffc_engine_ms)));
        json.push_str(&format!(
            "        \"speedup\": {}\n",
            json_f(r.ffc_naive_ms / r.ffc_engine_ms)
        ));
        json.push_str("      },\n");
        json.push_str("      \"pipeline_embed_all\": {\n");
        json.push_str(&format!("        \"naive_ms\": {},\n", json_f(r.pipeline_naive_ms)));
        json.push_str(&format!("        \"engine_ms\": {},\n", json_f(r.pipeline_engine_ms)));
        json.push_str(&format!(
            "        \"speedup\": {}\n",
            json_f(r.pipeline_naive_ms / r.pipeline_engine_ms)
        ));
        json.push_str("      }\n");
        json.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");

    // crates/bench/ -> repository root.
    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_analysis.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_analysis.json");
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
