//! Regenerates the paper's Figure 7: fingerprint size (bits) per circuit,
//! unconstrained versus under 10% / 5% / 1% delay constraints.
//!
//! Usage: `fig7 [--fast | circuit names...]`

use odcfp_bench::{format_fig7, names_from_args, run_fig7, TABLE3_CONSTRAINTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names = names_from_args(&args);
    let series = run_fig7(&names, &TABLE3_CONSTRAINTS);
    print!("{}", format_fig7(&series));
    println!();
    println!("series (csv): circuit,unconstrained,at10pct,at5pct,at1pct");
    for s in &series {
        let cs: Vec<String> = s
            .constrained_bits
            .iter()
            .map(|(_, b)| format!("{b:.1}"))
            .collect();
        println!("{},{:.1},{}", s.name, s.unconstrained_bits, cs.join(","));
    }
}
