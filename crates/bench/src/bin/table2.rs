//! Regenerates the paper's Table II: per-circuit base metrics, fingerprint
//! capacity, and area/delay/power overhead after embedding every location.
//!
//! Usage: `table2 [--fast | circuit names...]`

use odcfp_bench::{format_table2, names_from_args, run_table2, PAPER_TABLE2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names = names_from_args(&args);
    let rows = run_table2(&names);
    println!("== Table II (this implementation) ==");
    print!("{}", format_table2(&rows));
    println!();
    println!("== Paper reference (Dunbar & Qu, DAC'15, Table II) ==");
    println!(
        "{:<8} {:>6} {:>6} {:>9} {:>8} {:>8} {:>8}",
        "circuit", "gates", "locs", "log2(FP)", "area%", "delay%", "power%"
    );
    for (name, gates, locs, log2, area, delay, power) in PAPER_TABLE2 {
        if !names.contains(&name) {
            continue;
        }
        let p = power.map_or("N/A".to_owned(), |p| format!("{p:.2}"));
        println!("{name:<8} {gates:>6} {locs:>6} {log2:>9.2} {area:>8.2} {delay:>8.2} {p:>8}");
    }
}
