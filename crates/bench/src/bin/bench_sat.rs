//! Solver-tier benchmark: regenerates `BENCH_sat.json` at the
//! repository root, measuring the CDCL profiles and the portfolio racer
//! the verify ladder now runs on.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_sat
//! [--fast] [--check]`
//!
//! Four sections:
//!
//! 1. **profiles** — the hard-instance set (pigeonhole formulas, a
//!    deep xor-chain miter) solved unbounded under the `legacy` and
//!    `modern` profiles, recording conflicts, wall time and
//!    conflicts/sec. The headline number is the aggregate wall-time
//!    speedup of `modern` (LBD-guided learnt-DB reduction + phase
//!    saving) over `legacy` (the pre-trait fixed-heuristic solver).
//! 2. **portfolio_rescue** — a calibrated random 3-SAT instance on
//!    which a single `modern` backend exhausts a 4096-conflict budget
//!    (`Undecided`) while a width-5 race decides it inside the same
//!    per-racer budget: the rescue the verify ladder's `--portfolio`
//!    hook performs on budget-starved obligations.
//! 3. **des_sweep** — a strict fast-path verify sweep over
//!    fingerprinted `des` buyers; the Undecided-rate must be zero.
//! 4. **c6288_hard_miter** — the intractable multiplier cold miter,
//!    conflict-capped exactly like `bench_verify`'s baseline, with a
//!    wall-clock ceiling so a pathological backend regression (e.g.
//!    propagation slowdown) fails CI even though the verdict is
//!    honestly `undecided` at the cap.
//!
//! `--check` exits non-zero if: the modern/legacy aggregate speedup
//! falls below 2x, the portfolio fails to rescue the calibrated
//! instance, any des verdict is Undecided, or the capped c6288 miter
//! misses its wall ceiling. `--fast` trims section 1 to its quickest
//! instance (the CI smoke still runs every check).

use std::path::PathBuf;
use std::time::Instant;

use odcfp_bench::netlist_for;
use odcfp_core::{verify_equivalent_report, Fingerprinter, Verdict, VerifyPolicy, VerifySession};
use odcfp_sat::portfolio::{self, RaceOptions};
use odcfp_sat::{CnfBuilder, Lit, SolveResult, Solver, SolverConfig};

/// Wall-clock ceiling for the conflict-capped c6288 miter. The cap
/// bounds the search at 2000 conflicts; at sane propagation speed that
/// is far under a second, so the ceiling only trips on order-of-
/// magnitude regressions while staying safe on slow CI machines.
const C6288_CEILING_MS: f64 = 60_000.0;

/// Conflict budget for the rescue scenario — calibrated so the single
/// `modern` backend exhausts it while the width-5 race's best racer
/// decides within one synchronized round (see `rescue()`).
const RESCUE_BUDGET: u64 = 4096;

// ---------------------------------------------------------------------
// Instance generators (all deterministic; no clocks or OS randomness).
// ---------------------------------------------------------------------

/// Pigeonhole formula PHP(p, h): `p` pigeons into `h` holes, UNSAT for
/// p > h. Variable (i, j) = pigeon i in hole j. Resolution-hard, so the
/// learnt DB grows without bound — exactly the regime where the modern
/// profile's LBD-guided reduction pays off.
fn pigeonhole(pigeons: usize, holes: usize) -> CnfBuilder {
    let mut cnf = CnfBuilder::new();
    let vars: Vec<Vec<_>> = (0..pigeons).map(|_| cnf.new_vars(holes)).collect();
    for row in &vars {
        cnf.add_clause(row.iter().map(|&v| Lit::pos(v)).collect::<Vec<_>>());
    }
    for (a, row_a) in vars.iter().enumerate() {
        for row_b in &vars[a + 1..] {
            for (&va, &vb) in row_a.iter().zip(row_b) {
                cnf.add_clause([Lit::neg(va), Lit::neg(vb)]);
            }
        }
    }
    cnf
}

/// An UNSAT xor-chain miter over `width` inputs (forward vs reversed
/// association with the difference asserted) — the same shape the
/// differential suite uses, scaled up to need real search.
fn xor_miter(width: usize) -> CnfBuilder {
    let mut cnf = CnfBuilder::new();
    let inputs = cnf.new_vars(width);
    let xor2 = |cnf: &mut CnfBuilder, a, b| {
        let t = cnf.new_var();
        cnf.add_clause([Lit::neg(t), Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(t), Lit::neg(a), Lit::neg(b)]);
        cnf.add_clause([Lit::pos(t), Lit::neg(a), Lit::pos(b)]);
        cnf.add_clause([Lit::pos(t), Lit::pos(a), Lit::neg(b)]);
        t
    };
    let mut acc = inputs[0];
    for &i in &inputs[1..] {
        acc = xor2(&mut cnf, acc, i);
    }
    let mut rev = inputs[width - 1];
    for &i in inputs[..width - 1].iter().rev() {
        rev = xor2(&mut cnf, rev, i);
    }
    let diff = xor2(&mut cnf, acc, rev);
    cnf.add_clause([Lit::pos(diff)]);
    cnf
}

/// Deterministic random 3-SAT at the phase-transition ratio (m/n =
/// 4.26), xorshift64* keyed by `seed`. The rescue instance below was
/// calibrated against this exact generator, so the bytes it produces
/// must never change.
fn rand3sat(n: usize, m: usize, seed: u64) -> CnfBuilder {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ seed.wrapping_mul(0x0DCF_5EED);
    if state == 0 {
        state = 1;
    }
    let mut nxt = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut cnf = CnfBuilder::new();
    let vars = cnf.new_vars(n);
    for _ in 0..m {
        let mut picked: Vec<usize> = Vec::with_capacity(3);
        while picked.len() < 3 {
            let v = (nxt() % n as u64) as usize;
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        let clause: Vec<Lit> = picked
            .into_iter()
            .map(|v| {
                if nxt() & 1 == 1 {
                    Lit::pos(vars[v])
                } else {
                    Lit::neg(vars[v])
                }
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// Deterministic per-buyer fingerprint bits — same scheme as
/// `bench_verify`, so the des sweep describes the same workload.
fn buyer_bits(buyer: u64, n: usize) -> Vec<bool> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (buyer + 1).wrapping_mul(0x0DCF_5EED);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

// ---------------------------------------------------------------------
// Section 1: profile comparison on the hard set.
// ---------------------------------------------------------------------

struct ProfileRun {
    instance: String,
    profile: &'static str,
    verdict: &'static str,
    conflicts: u64,
    wall_ms: f64,
}

impl ProfileRun {
    fn conflicts_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.conflicts as f64 / (self.wall_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }
}

fn result_name(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat => "unsat",
        SolveResult::Unknown => "unknown",
    }
}

fn profile_runs(fast: bool) -> Vec<ProfileRun> {
    let mut set: Vec<(String, CnfBuilder)> = vec![("php_8_7".into(), pigeonhole(8, 7))];
    if !fast {
        set.push(("php_9_8".into(), pigeonhole(9, 8)));
        set.push(("xor_miter_64".into(), xor_miter(64)));
        set.push(("rand3sat_n200_m852_s5".into(), rand3sat(200, 852, 5)));
    }
    let mut runs = Vec::new();
    for (name, cnf) in &set {
        for (profile, config) in [
            ("legacy", SolverConfig::from_profile("legacy").expect("profile")),
            ("modern", SolverConfig::from_profile("modern").expect("profile")),
        ] {
            eprintln!("profiles: {name} under {profile}...");
            let mut solver = Solver::from_cnf_with(cnf, config);
            let t0 = Instant::now();
            let result = solver.solve();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            runs.push(ProfileRun {
                instance: name.clone(),
                profile,
                verdict: result_name(&result),
                conflicts: solver.stats().conflicts,
                wall_ms,
            });
        }
    }
    runs
}

/// Aggregate wall-time speedup of `modern` over `legacy` on the set.
fn speedup(runs: &[ProfileRun]) -> f64 {
    let wall = |p: &str| -> f64 {
        runs.iter()
            .filter(|r| r.profile == p)
            .map(|r| r.wall_ms)
            .sum()
    };
    wall("legacy") / wall("modern").max(1e-9)
}

// ---------------------------------------------------------------------
// Section 2: portfolio rescue on the calibrated instance.
// ---------------------------------------------------------------------

struct Rescue {
    instance: &'static str,
    budget: u64,
    single_verdict: &'static str,
    single_conflicts: u64,
    race_verdict: &'static str,
    winner: Option<usize>,
    winner_backend: Option<&'static str>,
    rounds: u64,
    race_conflicts: u64,
    wall_ms: f64,
    rescued: bool,
}

fn rescue() -> Rescue {
    // Calibrated against the committed generator: at 4096 conflicts the
    // single modern backend returns Unknown (it needs ~8k single-shot),
    // while racer #1 of a width-5 race (reseeded cdcl-modern) decides in
    // one synchronized round (~3.1k chunked conflicts).
    let cnf = rand3sat(200, 852, 5);
    let config = SolverConfig::from_profile("modern").expect("profile");

    eprintln!("rescue: single modern backend @{RESCUE_BUDGET} conflicts...");
    let mut solo = Solver::from_cnf_with(&cnf, config);
    solo.set_conflict_budget(RESCUE_BUDGET);
    let single = solo.solve();

    eprintln!("rescue: width-5 portfolio @{RESCUE_BUDGET} conflicts per racer...");
    let opts = RaceOptions::new(5).with_base(config);
    let t0 = Instant::now();
    let (result, report) = portfolio::race(&cnf, &[], &opts, Some(RESCUE_BUDGET), None, None);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let rescued =
        matches!(single, SolveResult::Unknown) && !matches!(result, SolveResult::Unknown);
    Rescue {
        instance: "rand3sat_n200_m852_s5",
        budget: RESCUE_BUDGET,
        single_verdict: result_name(&single),
        single_conflicts: solo.stats().conflicts,
        race_verdict: result_name(&result),
        winner: report.winner,
        winner_backend: report.winner_backend,
        rounds: report.rounds,
        race_conflicts: report.conflicts,
        wall_ms,
        rescued,
    }
}

// ---------------------------------------------------------------------
// Section 3: des fast-path sweep — the Undecided-rate acceptance.
// ---------------------------------------------------------------------

struct DesSweep {
    buyers: usize,
    proven: usize,
    undecided: usize,
    wall_ms: f64,
}

fn des_sweep(buyers: usize) -> DesSweep {
    let base = netlist_for("des");
    let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
    let n_loc = fp.locations().len();
    eprintln!("des_sweep: verifying {buyers} fingerprinted buyers ({n_loc} locations)...");
    let policy = VerifyPolicy::strict();
    let t0 = Instant::now();
    let mut session = VerifySession::new(&base).expect("valid benchmark");
    let (mut proven, mut undecided) = (0, 0);
    for b in 0..buyers as u64 {
        let copy = fp.embed(&buyer_bits(b, n_loc)).expect("embed preserves function");
        match session.verify(copy.netlist(), &policy).expect("verify").verdict {
            Verdict::Proven => proven += 1,
            Verdict::Undecided { .. } => undecided += 1,
            other => panic!("des buyer {b}: fingerprinted copy came back {other}"),
        }
    }
    DesSweep {
        buyers,
        proven,
        undecided,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

// ---------------------------------------------------------------------
// Section 4: conflict-capped c6288 cold miter under a wall ceiling.
// ---------------------------------------------------------------------

struct HardMiter {
    cap: u64,
    verdict: &'static str,
    conflicts: u64,
    wall_ms: f64,
    ceiling_ms: f64,
}

impl HardMiter {
    fn conflicts_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.conflicts as f64 / (self.wall_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }
}

fn hard_miter() -> HardMiter {
    let cap = 2000u64;
    let base = netlist_for("c6288");
    let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
    let n_loc = fp.locations().len();
    let copy = fp.embed(&buyer_bits(0, n_loc)).expect("embed preserves function");
    eprintln!("c6288: cold whole-circuit miter capped at {cap} conflicts...");
    let policy = VerifyPolicy {
        use_fast_path: false,
        sat_initial_conflicts: Some(cap),
        sat_conflict_cap: Some(cap),
        ..VerifyPolicy::strict()
    };
    let t0 = Instant::now();
    let report = verify_equivalent_report(&base, copy.netlist(), &policy).expect("verify");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let verdict = match report.verdict {
        Verdict::Proven => "proven",
        Verdict::Refuted { .. } => panic!("c6288: fingerprinted copy refuted"),
        Verdict::ProbablyEquivalent { .. } => "probably_equivalent",
        Verdict::Undecided { .. } => "undecided",
    };
    HardMiter {
        cap,
        verdict,
        conflicts: report.stats.sat_conflicts,
        wall_ms,
        ceiling_ms: C6288_CEILING_MS,
    }
}

// ---------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------

fn write_json(
    runs: &[ProfileRun],
    speedup: f64,
    rescue: &Rescue,
    des: &DesSweep,
    hard: &HardMiter,
) {
    let undecided_rate = runs.iter().filter(|r| r.verdict == "unknown").count() as f64
        / runs.len().max(1) as f64;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"odcfp-bench-sat/1\",\n");
    json.push_str("  \"profiles\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"instance\": \"{}\", \"profile\": \"{}\", \"verdict\": \"{}\", \
             \"conflicts\": {}, \"wall_ms\": {:.3}, \"conflicts_per_sec\": {:.0} }}{}\n",
            r.instance,
            r.profile,
            r.verdict,
            r.conflicts,
            r.wall_ms,
            r.conflicts_per_sec(),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"profile_undecided_rate\": {undecided_rate:.3},\n\
         \"profile_speedup_modern_vs_legacy\": {speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"portfolio_rescue\": {{ \"instance\": \"{}\", \"budget\": {}, \
         \"single_verdict\": \"{}\", \"single_conflicts\": {}, \
         \"race_verdict\": \"{}\", \"winner\": {}, \"winner_backend\": {}, \
         \"rounds\": {}, \"race_conflicts\": {}, \"wall_ms\": {:.3}, \
         \"rescued\": {} }},\n",
        rescue.instance,
        rescue.budget,
        rescue.single_verdict,
        rescue.single_conflicts,
        rescue.race_verdict,
        rescue.winner.map_or("null".into(), |w| w.to_string()),
        rescue
            .winner_backend
            .map_or("null".into(), |b| format!("\"{b}\"")),
        rescue.rounds,
        rescue.race_conflicts,
        rescue.wall_ms,
        rescue.rescued,
    ));
    json.push_str(&format!(
        "  \"des_sweep\": {{ \"buyers\": {}, \"proven\": {}, \"undecided\": {}, \
         \"undecided_rate\": {:.3}, \"wall_ms\": {:.3} }},\n",
        des.buyers,
        des.proven,
        des.undecided,
        des.undecided as f64 / des.buyers.max(1) as f64,
        des.wall_ms,
    ));
    json.push_str(&format!(
        "  \"c6288_hard_miter\": {{ \"cap\": {}, \"verdict\": \"{}\", \"conflicts\": {}, \
         \"wall_ms\": {:.3}, \"conflicts_per_sec\": {:.0}, \"ceiling_ms\": {:.0} }}\n}}\n",
        hard.cap,
        hard.verdict,
        hard.conflicts,
        hard.wall_ms,
        hard.conflicts_per_sec(),
        hard.ceiling_ms,
    ));

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_sat.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_sat.json");
    eprintln!("wrote {}", out.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");

    let runs = profile_runs(fast);
    let speedup = speedup(&runs);
    let rescue = rescue();
    let des = des_sweep(if fast { 2 } else { 4 });
    let hard = hard_miter();

    write_json(&runs, speedup, &rescue, &des, &hard);

    println!("| section | result |");
    println!("|---------|--------|");
    println!("| modern vs legacy wall speedup | {speedup:.2}x |");
    println!(
        "| portfolio rescue @{} | single={} race={} winner={} |",
        rescue.budget,
        rescue.single_verdict,
        rescue.race_verdict,
        rescue
            .winner_backend
            .map_or("none".into(), |b| format!(
                "#{} {b}",
                rescue.winner.unwrap_or(0)
            )),
    );
    println!(
        "| des sweep | {}/{} proven, {} undecided |",
        des.proven, des.buyers, des.undecided
    );
    println!(
        "| c6288 capped miter | {} in {:.0} ms ({:.0} conflicts/s) |",
        hard.verdict,
        hard.wall_ms,
        hard.conflicts_per_sec()
    );

    if check {
        let mut failures = Vec::new();
        // The smoke thresholds from the acceptance criteria. The
        // speedup check only runs on the full set: --fast keeps the one
        // instance where legacy and modern behave alike.
        if !fast && speedup < 2.0 {
            failures.push(format!(
                "modern profile speedup {speedup:.2}x is below the 2x floor"
            ));
        }
        if !rescue.rescued {
            failures.push(format!(
                "portfolio failed to rescue {} (single={}, race={})",
                rescue.instance, rescue.single_verdict, rescue.race_verdict
            ));
        }
        if des.undecided != 0 {
            failures.push(format!(
                "des sweep left {} of {} buyers Undecided",
                des.undecided, des.buyers
            ));
        }
        if hard.wall_ms > hard.ceiling_ms {
            failures.push(format!(
                "c6288 capped miter took {:.0} ms (ceiling {:.0} ms)",
                hard.wall_ms, hard.ceiling_ms
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("all checks passed");
    }
}
