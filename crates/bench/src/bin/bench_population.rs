//! Population-scale benchmark: regenerates `BENCH_population.json` at
//! the repository root, measuring the three legs of the million-buyer
//! factory on `des` (the acceptance circuit):
//!
//! 1. **Delta artifacts** — a delta-mode campaign minting N buyers into
//!    one codebook, vs full per-buyer Verilog artifacts: bytes/buyer and
//!    mint+verify throughput.
//! 2. **Codebook batch verification** — one code-space proof plus N
//!    per-code combination checks, vs the incremental per-buyer
//!    [`VerifySession`] fast path (sampled and extrapolated), with
//!    verdict-for-verdict agreement on the sampled prefix.
//! 3. **Sublinear collusion tracing** — [`TracerIndex`] over 10^5 random
//!    codebooks vs the pairwise `trace_suspects` oracle, with ranking
//!    equality.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_population
//! [--fast] [--check] [--buyers N] [name]`
//!
//! - default: `des` at 10_000 buyers, 100_000 tracer codebooks.
//! - `--fast`: 1_000 buyers, 10_000 codebooks — the CI smoke tier runs
//!   this first for quick signal before the full 10k acceptance run.
//! - `--check`: exit non-zero unless the acceptance thresholds hold
//!   (≥100x bytes/buyer reduction, ≥5x verify speedup, tracer rankings
//!   identical to the oracle).

use std::path::PathBuf;
use std::time::Instant;

use odcfp_bench::netlist_for;
use odcfp_core::campaign::{self, CampaignEnv, CampaignOptions, JobEvent, Manifest};
use odcfp_core::collusion::{trace_suspects, TracerIndex};
use odcfp_core::{
    CancelToken, CodeSpace, CodeSpaceOutcome, Fingerprinter, Verdict, VerifyPolicy, VerifySession,
};
use odcfp_netlist::Netlist;
use odcfp_verilog::write_verilog;

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

/// Deterministic per-buyer codes for the standalone verify and tracer
/// legs (xorshift64*; the campaign leg uses the manifest seed schedule).
fn buyer_bits(buyer: u64, n: usize) -> Vec<bool> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (buyer + 1).wrapping_mul(0x0DCF_5EED);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

struct DeltaLeg {
    buyers: usize,
    locations: usize,
    mint_wall_s: f64,
    buyers_per_sec: f64,
    codebook_bytes: u64,
    golden_bytes: u64,
    delta_bytes_per_buyer: f64,
    full_bytes_per_buyer: f64,
    reduction: f64,
    verdicts_proven: bool,
}

/// Leg 1: run a real delta-mode campaign end to end (journal, codebook,
/// windows, batch verification) and compare its on-disk footprint with
/// what full artifact mode would have written.
fn delta_leg(name: &str, netlist: &Netlist, buyers: usize, window: usize) -> DeltaLeg {
    let dir = std::env::temp_dir().join(format!(
        "odcfp-bench-population-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let manifest = Manifest::parse(&format!(
        "circuit {name} path:{name}.v\nbuyers {buyers}\nseed 42\nretries 0\n\
         verify strict\nartifacts delta\nwindow {window}\n"
    ))
    .expect("bench manifest");
    let load = |_: &campaign::ManifestCircuit| -> Result<Netlist, String> {
        Ok(netlist_for(name))
    };
    let emit = |n: &Netlist| write_verilog(n);
    let env = CampaignEnv {
        load: &load,
        emit: &emit,
    };
    let mut proven_all = false;
    let mut on_event = |e: &JobEvent| {
        if let JobEvent::CodeSpaceProven { .. } = e {
            proven_all = true;
        }
    };
    eprintln!("{name}: delta campaign, {buyers} buyers (window {window})...");
    let t0 = Instant::now();
    let summary = campaign::run(
        &manifest,
        &dir,
        &env,
        &CampaignOptions::default(),
        &mut on_event,
    )
    .expect("delta campaign");
    let mint_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(summary.completed, buyers, "campaign left buyers behind");
    assert!(proven_all, "{name}: expected a one-shot code-space proof");

    let codebook_bytes = std::fs::metadata(dir.join(odcfp_core::codebook_file(name)))
        .expect("codebook exists")
        .len();
    let golden_bytes = std::fs::metadata(
        dir.join(campaign::ARTIFACT_DIR)
            .join(format!("{name}.golden.v")),
    )
    .expect("golden artifact exists")
    .len();

    // What full mode would write per buyer: one complete Verilog file.
    let fp = Fingerprinter::new(netlist.clone()).expect("fingerprinter");
    let locations = fp.selected_modifications().len();
    let one = fp
        .embed(&buyer_bits(0, locations))
        .expect("embed");
    let full_bytes_per_buyer = write_verilog(one.netlist()).len() as f64;
    let delta_bytes_per_buyer = (codebook_bytes + golden_bytes) as f64 / buyers as f64;

    let _ = std::fs::remove_dir_all(&dir);
    DeltaLeg {
        buyers,
        locations,
        mint_wall_s,
        buyers_per_sec: buyers as f64 / mint_wall_s,
        codebook_bytes,
        golden_bytes,
        delta_bytes_per_buyer,
        full_bytes_per_buyer,
        reduction: full_bytes_per_buyer / delta_bytes_per_buyer,
        verdicts_proven: true,
    }
}

struct VerifyLeg {
    buyers: usize,
    proof_s: f64,
    proof_conflicts: u64,
    checks_s: f64,
    batch_total_s: f64,
    batch_buyers_per_sec: f64,
    per_buyer_sampled: usize,
    per_buyer_ms: f64,
    per_buyer_total_s: f64,
    speedup: f64,
    verdicts_match: bool,
}

/// Leg 2: one-shot code-space proof + N combination checks vs the
/// per-buyer incremental session fast path. The per-buyer baseline is
/// sampled (it is the very cost the batch path amortizes away) and
/// extrapolated linearly — exact in expectation, reported as sampled.
fn verify_leg(name: &str, netlist: &Netlist, buyers: usize, sample: usize) -> VerifyLeg {
    let fp = Fingerprinter::new(netlist.clone()).expect("fingerprinter");
    let locations = fp.selected_modifications().len();
    let token = CancelToken::new();

    eprintln!("{name}: proving the code space ({locations} locations)...");
    let space = CodeSpace::build(&fp).expect("code space");
    let mut session = VerifySession::new(fp.base()).expect("session");
    let t0 = Instant::now();
    let proof = space.prove(&mut session, None, &token).expect("proof");
    let proof_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        proof.outcome,
        CodeSpaceOutcome::ProvenAll,
        "{name}: code space must prove in one shot"
    );

    let t0 = Instant::now();
    let mut batch_verdicts = Vec::with_capacity(sample);
    for b in 0..buyers as u64 {
        let bits = buyer_bits(b, locations);
        let v = session.check_code(&proof, &bits, None, &token);
        if (b as usize) < sample {
            batch_verdicts.push(matches!(v, Verdict::Proven));
        }
    }
    let checks_s = t0.elapsed().as_secs_f64();
    let batch_total_s = proof_s + checks_s;

    // Per-buyer baseline: the incremental session fast path (the repo's
    // previous best), on pre-materialized buyer netlists so both sides
    // measure verification only.
    eprintln!("{name}: per-buyer baseline over {sample} sampled buyers...");
    let sampled: Vec<Netlist> = (0..sample as u64)
        .map(|b| {
            fp.embed(&buyer_bits(b, locations))
                .expect("embed")
                .into_netlist()
        })
        .collect();
    let policy = VerifyPolicy::strict();
    let mut baseline = VerifySession::new(fp.base()).expect("session");
    let t0 = Instant::now();
    let mut per_buyer_verdicts = Vec::with_capacity(sample);
    for candidate in &sampled {
        let report = baseline
            .verify(std::hint::black_box(candidate), &policy)
            .expect("verify");
        per_buyer_verdicts.push(matches!(report.verdict, Verdict::Proven));
    }
    let sampled_s = t0.elapsed().as_secs_f64();
    let per_buyer_ms = sampled_s * 1e3 / sample as f64;
    let per_buyer_total_s = sampled_s / sample as f64 * buyers as f64;

    VerifyLeg {
        buyers,
        proof_s,
        proof_conflicts: proof.conflicts,
        checks_s,
        batch_total_s,
        batch_buyers_per_sec: buyers as f64 / batch_total_s,
        per_buyer_sampled: sample,
        per_buyer_ms,
        per_buyer_total_s,
        speedup: per_buyer_total_s / batch_total_s,
        verdicts_match: batch_verdicts == per_buyer_verdicts,
    }
}

struct TraceLeg {
    codebooks: usize,
    locations: usize,
    coalition: usize,
    index_build_s: f64,
    index_trace_s: f64,
    oracle_trace_s: f64,
    speedup: f64,
    rankings_match: bool,
}

/// Leg 3: indexed tracing over a large random population vs the pairwise
/// oracle, on a majority-forged coalition string.
fn trace_leg(locations: usize, codebooks: usize, coalition: usize) -> TraceLeg {
    eprintln!("tracer: {codebooks} codebooks x {locations} locations...");
    let registry: Vec<Vec<bool>> = (0..codebooks as u64)
        .map(|b| buyer_bits(b, locations))
        .collect();

    let t0 = Instant::now();
    let index = TracerIndex::from_registry(&registry);
    let index_build_s = t0.elapsed().as_secs_f64();

    // A coalition of the first `coalition` buyers majority-forges one
    // string; both tracers rank the whole population against it.
    let forged: Vec<bool> = (0..locations)
        .map(|i| {
            let ones = registry[..coalition].iter().filter(|c| c[i]).count();
            ones * 2 >= coalition
        })
        .collect();

    let t0 = Instant::now();
    let indexed = index.trace(&forged);
    let index_trace_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let oracle = trace_suspects(&forged, &registry);
    let oracle_trace_s = t0.elapsed().as_secs_f64();

    TraceLeg {
        codebooks,
        locations,
        coalition,
        index_build_s,
        index_trace_s,
        oracle_trace_s,
        speedup: oracle_trace_s / index_trace_s,
        rankings_match: indexed == oracle,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");
    let buyers_override = args
        .iter()
        .position(|a| a == "--buyers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let name = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && args
                    .get(i.wrapping_sub(1))
                    .is_none_or(|p| p != "--buyers")
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("des");

    let buyers = buyers_override.unwrap_or(if fast { 1_000 } else { 10_000 });
    let codebooks = if fast { 10_000 } else { 100_000 };
    let window = 2_048;
    let sample = 64.min(buyers);

    let netlist = netlist_for(name);
    let delta = delta_leg(name, &netlist, buyers, window);
    let verify = verify_leg(name, &netlist, buyers, sample);
    let trace = trace_leg(delta.locations, codebooks, 8);

    eprintln!(
        "{name} N={buyers}: mint+verify {:.1}s ({:.0} buyers/s), \
         {:.1} bytes/buyer vs {:.0} full ({:.0}x reduction)",
        delta.mint_wall_s, delta.buyers_per_sec, delta.delta_bytes_per_buyer,
        delta.full_bytes_per_buyer, delta.reduction,
    );
    eprintln!(
        "{name} verify: batch {:.1}s (proof {:.1}s + {} checks {:.2}s) vs \
         per-buyer {:.1}s extrapolated from {} x {:.1}ms ({:.1}x), verdicts_match={}",
        verify.batch_total_s, verify.proof_s, buyers, verify.checks_s,
        verify.per_buyer_total_s, verify.per_buyer_sampled, verify.per_buyer_ms,
        verify.speedup, verify.verdicts_match,
    );
    eprintln!(
        "tracer: {} codebooks, index build {:.2}s, trace {:.3}s vs oracle {:.3}s \
         ({:.1}x), rankings_match={}",
        trace.codebooks, trace.index_build_s, trace.index_trace_s, trace.oracle_trace_s,
        trace.speedup, trace.rankings_match,
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"odcfp-bench-population/1\",\n");
    json.push_str(&format!("  \"name\": \"{name}\",\n"));
    json.push_str("  \"delta_artifacts\": {\n");
    json.push_str(&format!("    \"buyers\": {},\n", delta.buyers));
    json.push_str(&format!("    \"locations\": {},\n", delta.locations));
    json.push_str(&format!("    \"mint_wall_s\": {},\n", json_f(delta.mint_wall_s)));
    json.push_str(&format!(
        "    \"buyers_per_sec\": {},\n",
        json_f(delta.buyers_per_sec)
    ));
    json.push_str(&format!("    \"codebook_bytes\": {},\n", delta.codebook_bytes));
    json.push_str(&format!("    \"golden_bytes\": {},\n", delta.golden_bytes));
    json.push_str(&format!(
        "    \"delta_bytes_per_buyer\": {},\n",
        json_f(delta.delta_bytes_per_buyer)
    ));
    json.push_str(&format!(
        "    \"full_bytes_per_buyer\": {},\n",
        json_f(delta.full_bytes_per_buyer)
    ));
    json.push_str(&format!("    \"reduction\": {},\n", json_f(delta.reduction)));
    json.push_str(&format!(
        "    \"all_proven\": {}\n",
        delta.verdicts_proven
    ));
    json.push_str("  },\n");
    json.push_str("  \"batch_verify\": {\n");
    json.push_str(&format!("    \"buyers\": {},\n", verify.buyers));
    json.push_str(&format!("    \"proof_s\": {},\n", json_f(verify.proof_s)));
    json.push_str(&format!("    \"proof_conflicts\": {},\n", verify.proof_conflicts));
    json.push_str(&format!("    \"checks_s\": {},\n", json_f(verify.checks_s)));
    json.push_str(&format!(
        "    \"batch_total_s\": {},\n",
        json_f(verify.batch_total_s)
    ));
    json.push_str(&format!(
        "    \"batch_buyers_per_sec\": {},\n",
        json_f(verify.batch_buyers_per_sec)
    ));
    json.push_str(&format!(
        "    \"per_buyer_sampled\": {},\n",
        verify.per_buyer_sampled
    ));
    json.push_str(&format!(
        "    \"per_buyer_ms\": {},\n",
        json_f(verify.per_buyer_ms)
    ));
    json.push_str(&format!(
        "    \"per_buyer_total_s\": {},\n",
        json_f(verify.per_buyer_total_s)
    ));
    json.push_str(&format!("    \"speedup\": {},\n", json_f(verify.speedup)));
    json.push_str(&format!(
        "    \"verdicts_match\": {}\n",
        verify.verdicts_match
    ));
    json.push_str("  },\n");
    json.push_str("  \"collusion_tracing\": {\n");
    json.push_str(&format!("    \"codebooks\": {},\n", trace.codebooks));
    json.push_str(&format!("    \"locations\": {},\n", trace.locations));
    json.push_str(&format!("    \"coalition\": {},\n", trace.coalition));
    json.push_str(&format!(
        "    \"index_build_s\": {},\n",
        json_f(trace.index_build_s)
    ));
    json.push_str(&format!(
        "    \"index_trace_s\": {},\n",
        json_f(trace.index_trace_s)
    ));
    json.push_str(&format!(
        "    \"oracle_trace_s\": {},\n",
        json_f(trace.oracle_trace_s)
    ));
    json.push_str(&format!("    \"speedup\": {},\n", json_f(trace.speedup)));
    json.push_str(&format!(
        "    \"rankings_match\": {}\n",
        trace.rankings_match
    ));
    json.push_str("  }\n}\n");

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_population.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_population.json");
    eprintln!("wrote {}", out.display());
    print!("{json}");

    if check {
        let mut failed = Vec::new();
        if delta.reduction < 100.0 {
            failed.push(format!(
                "bytes/buyer reduction {:.0}x below the 100x acceptance floor",
                delta.reduction
            ));
        }
        if verify.speedup < 5.0 {
            failed.push(format!(
                "batch verify speedup {:.1}x below the 5x acceptance floor",
                verify.speedup
            ));
        }
        if !verify.verdicts_match {
            failed.push("batch and per-buyer verdicts diverge".into());
        }
        if !trace.rankings_match {
            failed.push("indexed tracer diverges from the pairwise oracle".into());
        }
        if !failed.is_empty() {
            for f in &failed {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("all population acceptance thresholds hold");
    }
}
