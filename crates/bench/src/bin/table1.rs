//! Regenerates the paper's Table I: the library gates that create ODC
//! conditions, with each input pin's ODC shown both as the closed-form
//! trigger condition and as the exact equation-(1) truth table.
//!
//! Usage: `table1`

use odcfp_analysis::odc::{local_odc, trigger_candidates};
use odcfp_netlist::CellLibrary;

fn main() {
    let lib = CellLibrary::standard();
    println!(
        "{:<8} {:>5} {:>12} {:>14}  ODC of pin 0 (truth table / trigger form)",
        "cell", "arity", "controlling", "has ODC"
    );
    for (_, cell) in lib.iter() {
        let f = cell.function();
        let arity = cell.arity();
        let ctl = f
            .controlling_value()
            .map_or("-".to_owned(), |v| u8::from(v).to_string());
        let has = f.has_nonzero_odc(arity);
        let detail = if has {
            let tt = local_odc(f, arity, 0);
            let triggers: Vec<String> = trigger_candidates(f, arity, 0)
                .iter()
                .map(|t| format!("pin{}={}", t.pin, u8::from(t.value)))
                .collect();
            format!("0x{tt}  ({})", triggers.join(" | "))
        } else {
            "(every input always observable)".to_owned()
        };
        println!(
            "{:<8} {:>5} {:>12} {:>14}  {detail}",
            cell.name(),
            arity,
            ctl,
            if has { "yes" } else { "no" },
        );
    }
    println!();
    println!("Gates with a controlling value (AND/OR/NAND/NOR families) create");
    println!("ODCs and can anchor fingerprint locations; XOR/XNOR and the");
    println!("single-input cells cannot (Definition 1, criteria 3–4).");
}
