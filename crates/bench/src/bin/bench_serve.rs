//! End-to-end serving benchmark: reactor scalability, loadgen-style
//! throughput, and batched-vs-unbatched verification.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_serve [-- --fast --check]`
//!
//! Three sections, each against a real in-process `odcfp_serve::Server`
//! driven over loopback TCP:
//!
//! 1. **Connection scaling** — open N idle connections against a
//!    reactor-mode and a threaded-mode server and measure the resident
//!    memory and thread count each mode pays per connection (from
//!    `/proc/self/status`, so the server must share our process). The
//!    headline number is the multiplier: how many reactor connections
//!    fit in the memory one threaded connection costs.
//! 2. **Throughput** — an open-loop generator (the `odcfp loadgen`
//!    schedule: fixed send times, never gated on replies) drives a
//!    mixed ping/locations workload at a target RPS and reports
//!    achieved RPS and p50/p99 latency plus the full histogram.
//! 3. **Batch verification** — the same closed-loop verify workload
//!    (one warm golden, distinct fingerprinted candidates) against a
//!    `batch_max = 1` server and a batching server, both single-worker
//!    so the comparison isolates the coalescing benefit rather than
//!    scheduling luck. Verdicts must be identical per candidate;
//!    per-worker throughput of the coalesced path is the payoff.
//!
//! Results go to `BENCH_serve.json` at the repo root. `--fast` shrinks
//! connection counts and durations for CI smoke; `--check` exits
//! nonzero if the reactor multiplier drops below 4x, any verdict
//! diverges between the batched and unbatched runs, or throughput
//! collapses below conservative floors.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use odcfp_core::codebook::CodeSpace;
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_serve::proto::{request_line, FieldValue};
use odcfp_serve::{ConnMode, Reply, ServeSummary, Server, ServerConfig};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};
use odcfp_verilog::write_verilog;

// ---------------------------------------------------------------------
// Harness: in-process server + wire client.
// ---------------------------------------------------------------------

struct BenchServer {
    addr: String,
    handle: JoinHandle<ServeSummary>,
}

fn start(config: ServerConfig) -> BenchServer {
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve run"));
    BenchServer { addr, handle }
}

impl BenchServer {
    fn connect(&self) -> Wire {
        Wire::connect(&self.addr)
    }

    fn shutdown(self) -> ServeSummary {
        let mut c = self.connect();
        let reply = c.roundtrip(&request_line("shutdown", "admin", None, "shutdown", &[]));
        assert!(reply.ok, "shutdown accepted: {reply:?}");
        drop(c);
        self.handle.join().expect("server thread")
    }
}

struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: &str) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send nl");
    }

    fn read_reply(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Reply::parse_line(line.trim_end())
            .unwrap_or_else(|| panic!("parseable reply: {line:?}"))
    }

    fn roundtrip(&mut self, line: &str) -> Reply {
        self.send(line);
        self.read_reply()
    }
}

// ---------------------------------------------------------------------
// Deterministic workload: one golden, distinct fingerprinted copies.
// ---------------------------------------------------------------------

struct Workload {
    golden: String,
    codes: Vec<String>,
}

/// Same per-buyer bit scheme as `bench_sat`/`bench_verify`, so the
/// serving numbers describe the workload the rest of the suite uses.
fn buyer_bits(buyer: u64, n: usize) -> Vec<bool> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (buyer + 1).wrapping_mul(0x0DCF_5EED);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

fn workload(copies: usize) -> Workload {
    // Big enough that the warm state (fingerprint analysis + code-space
    // proof) is real, small enough for CI smoke. The batch workload is
    // the fleet-scale shape from the ISSUE: one warm golden, many
    // per-buyer candidate *codes* decided by assumption against the
    // cached code-space proof.
    let params = DagParams {
        inputs: 64,
        gates: 600,
        outputs: 32,
        window: 80,
        seed: 0x0DCF,
    };
    let base = random_dag(CellLibrary::standard(), params);
    let fp = Fingerprinter::new(base.clone()).expect("valid base");
    let groups = CodeSpace::build(&fp).expect("code space").num_groups();
    let codes = (0..copies as u64)
        .map(|b| {
            buyer_bits(b, groups)
                .into_iter()
                .map(|bit| if bit { '1' } else { '0' })
                .collect()
        })
        .collect();
    Workload {
        golden: write_verilog(&base),
        codes,
    }
}

fn verify_line(w: &Workload, code: usize, id: &str, tenant: &str) -> String {
    request_line(
        id,
        tenant,
        None,
        "verify",
        &[
            ("golden_text", FieldValue::from(w.golden.as_str())),
            ("golden_format", "v".into()),
            ("candidate_bits", FieldValue::from(w.codes[code].as_str())),
        ],
    )
}

// ---------------------------------------------------------------------
// Section 1: connection scaling (memory per idle connection).
// ---------------------------------------------------------------------

struct MemSample {
    rss_bytes: u64,
    threads: u64,
}

fn mem_sample() -> MemSample {
    let status = std::fs::read_to_string("/proc/self/status")
        .expect("connection scaling needs /proc/self/status (linux)");
    let mut rss_bytes = 0u64;
    let mut threads = 0u64;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("VmRSS kB");
            rss_bytes = kb * 1024;
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse().expect("Threads count");
        }
    }
    MemSample { rss_bytes, threads }
}

struct ModeMem {
    rss_delta_bytes: u64,
    rss_per_conn: u64,
    threads_added: u64,
}

/// A held connection that allocates nothing on our side of the wire,
/// so the RSS delta attributes to the server alone: raw socket, reply
/// read into a stack buffer.
fn bare_ping(stream: &mut TcpStream, id: &str) {
    let line = request_line(id, "scale", None, "ping", &[]);
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send nl");
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf).expect("read reply");
        assert!(n > 0, "server closed during ping");
        if buf[..n].contains(&b'\n') {
            return;
        }
    }
}

fn measure_mode(mode: ConnMode, label: &'static str, conns: usize) -> ModeMem {
    eprintln!("connections: opening {conns} idle conns against {label} server...");
    let srv = start(ServerConfig {
        workers: 1,
        mode,
        max_conns: conns + 32,
        ..ServerConfig::default()
    });

    // Warm the allocator and the accept path so the measured delta is
    // connection state, not first-touch arena growth.
    {
        let mut warm: Vec<TcpStream> = (0..conns.min(32))
            .map(|_| TcpStream::connect(&srv.addr).expect("connect"))
            .collect();
        for (i, stream) in warm.iter_mut().enumerate() {
            bare_ping(stream, &format!("w{i}"));
        }
    }
    std::thread::sleep(Duration::from_millis(100));
    let base = mem_sample();

    let mut held: Vec<TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut stream = TcpStream::connect(&srv.addr).expect("connect");
        bare_ping(&mut stream, &format!("c{i}"));
        held.push(stream);
    }
    std::thread::sleep(Duration::from_millis(200));
    let after = mem_sample();
    drop(held);
    srv.shutdown();

    let rss_delta_bytes = after.rss_bytes.saturating_sub(base.rss_bytes);
    ModeMem {
        rss_delta_bytes,
        // Floor at 256 B so an unmeasurably cheap mode cannot divide by
        // (near) zero; this only ever understates the multiplier.
        rss_per_conn: (rss_delta_bytes / conns as u64).max(256),
        threads_added: after.threads.saturating_sub(base.threads),
    }
}

struct ConnScaling {
    conns: usize,
    reactor: ModeMem,
    threaded: ModeMem,
    multiplier: f64,
    equal_memory_conns: u64,
}

fn connection_scaling(fast: bool) -> ConnScaling {
    let conns = if fast { 64 } else { 256 };
    // Reactor first: it measures on the colder heap, which can only
    // overstate its per-connection cost and understate the multiplier.
    let reactor = measure_mode(ConnMode::Reactor, "reactor", conns);
    let threaded = measure_mode(ConnMode::Threaded, "threaded", conns);
    let multiplier = threaded.rss_per_conn as f64 / reactor.rss_per_conn as f64;
    ConnScaling {
        conns,
        multiplier,
        equal_memory_conns: (conns as f64 * multiplier) as u64,
        reactor,
        threaded,
    }
}

// ---------------------------------------------------------------------
// Section 2: open-loop throughput (the loadgen schedule).
// ---------------------------------------------------------------------

struct Throughput {
    target_rps: u64,
    achieved_rps: f64,
    sent: u64,
    ok: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
    histogram: Vec<(u64, u64)>,
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Power-of-two `latency <= bound` buckets, same shape `odcfp loadgen`
/// emits, so the two histograms can be overlaid directly.
fn histogram_le_us(sorted: &[u64]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    if sorted.is_empty() {
        return out;
    }
    let max = *sorted.last().expect("non-empty");
    let mut bound = 1u64;
    loop {
        let count = sorted.partition_point(|&v| v <= bound) as u64;
        out.push((bound, count));
        if bound >= max {
            break;
        }
        bound = bound.saturating_mul(2);
    }
    out
}

fn throughput(w: &Workload, fast: bool) -> Throughput {
    let target_rps: u64 = if fast { 300 } else { 600 };
    let conns = 4usize;
    let duration = Duration::from_secs(if fast { 2 } else { 5 });
    eprintln!(
        "throughput: open-loop ping/locations mix at {target_rps} rps over {conns} conns..."
    );

    let srv = start(ServerConfig {
        workers: 2,
        queue_depth: 256,
        ..ServerConfig::default()
    });

    let sent = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for conn in 0..conns {
            let addr = srv.addr.clone();
            let per_conn = target_rps / conns as u64;
            let (sent, ok, errors, latencies) = (&sent, &ok, &errors, &latencies);
            scope.spawn(move || {
                let wire = Wire::connect(&addr);
                let in_flight: Mutex<BTreeMap<String, Instant>> = Mutex::new(BTreeMap::new());

                std::thread::scope(|inner| {
                    // Writer: fixed schedule, never gated on replies.
                    let mut tx = wire.stream.try_clone().expect("clone");
                    let pending = &in_flight;
                    let golden = &w.golden;
                    inner.spawn(move || {
                        let interval = Duration::from_secs(1).div_f64(per_conn as f64);
                        let t0 = Instant::now();
                        let mut next = t0;
                        let mut i = 0u64;
                        while t0.elapsed() < duration {
                            let now = Instant::now();
                            if now < next {
                                std::thread::sleep(next - now);
                            }
                            next += interval;
                            let id = format!("tp{conn}-{i}");
                            // 3:1 ping:locations — framing overhead plus
                            // one op that touches the warm cache.
                            let line = if i % 4 == 3 {
                                request_line(
                                    &id,
                                    &format!("tenant-{conn}"),
                                    None,
                                    "locations",
                                    &[
                                        ("design_text", FieldValue::from(golden.as_str())),
                                        ("design_format", "v".into()),
                                    ],
                                )
                            } else {
                                request_line(&id, &format!("tenant-{conn}"), None, "ping", &[])
                            };
                            pending.lock().unwrap().insert(id, Instant::now());
                            sent.fetch_add(1, Ordering::Relaxed);
                            tx.write_all(line.as_bytes()).expect("send");
                            tx.write_all(b"\n").expect("send nl");
                            i += 1;
                        }
                        tx.shutdown(std::net::Shutdown::Write).ok();
                    });

                    // Reader: match replies back to send times.
                    let mut reader = wire.reader;
                    let in_flight = &in_flight;
                    inner.spawn(move || {
                        let mut line = String::new();
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) | Err(_) => break,
                                Ok(_) => {}
                            }
                            let Some(reply) = Reply::parse_line(line.trim_end()) else {
                                continue;
                            };
                            let sent_at = in_flight.lock().unwrap().remove(&reply.id);
                            if let Some(t) = sent_at {
                                if reply.ok {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                    latencies
                                        .lock()
                                        .unwrap()
                                        .push(t.elapsed().as_micros() as u64);
                                } else {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            if in_flight.lock().unwrap().is_empty()
                                && reader.get_ref().peer_addr().is_err()
                            {
                                break;
                            }
                        }
                    });
                });
            });
        }
    });
    srv.shutdown();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let sent = sent.into_inner();
    Throughput {
        target_rps,
        achieved_rps: sent as f64 / duration.as_secs_f64(),
        sent,
        ok: ok.into_inner(),
        errors: errors.into_inner(),
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
        histogram: histogram_le_us(&lat),
    }
}

// ---------------------------------------------------------------------
// Section 3: batched vs unbatched verification.
// ---------------------------------------------------------------------

struct VerifyRun {
    served: u64,
    rps: f64,
    p50_us: u64,
    p99_us: u64,
    batched_requests: u64,
    max_batch: u64,
    /// Verdict per candidate index; a candidate whose verdict ever
    /// flapped within the run is recorded as `"divergent"`.
    verdicts: Vec<String>,
}

fn verify_run(
    w: &Workload,
    label: &'static str,
    config: ServerConfig,
    conns: usize,
    duration: Duration,
) -> VerifyRun {
    eprintln!("batch_verify: closed-loop verify sweep against {label} server...");
    let srv = start(config);

    // Warm the golden once so both runs race with a hot cache and the
    // first request's fingerprint analysis is off the clock.
    {
        let mut c = srv.connect();
        let r = c.roundtrip(&verify_line(w, 0, "warmup", "warm"));
        assert!(r.ok, "warmup verify: {r:?}");
    }

    let served = AtomicU64::new(0);
    let batched_requests = AtomicU64::new(0);
    let max_batch = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let verdicts: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; w.codes.len()]);

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..conns {
            let addr = srv.addr.clone();
            let (served, batched_requests, max_batch, latencies, verdicts) =
                (&served, &batched_requests, &max_batch, &latencies, &verdicts);
            scope.spawn(move || {
                let mut wire = Wire::connect(&addr);
                let mut i = 0u64;
                while t0.elapsed() < duration {
                    let candidate = (conn + i as usize * conns) % w.codes.len();
                    let sent_at = Instant::now();
                    let reply = wire.roundtrip(&verify_line(
                        w,
                        candidate,
                        &format!("b{conn}-{i}"),
                        &format!("tenant-{conn}"),
                    ));
                    assert!(reply.ok, "verify answered: {reply:?}");
                    served.fetch_add(1, Ordering::Relaxed);
                    latencies
                        .lock()
                        .unwrap()
                        .push(sent_at.elapsed().as_micros() as u64);
                    if reply.field_bool("batched") == Some(true) {
                        batched_requests.fetch_add(1, Ordering::Relaxed);
                        max_batch
                            .fetch_max(reply.field_u64("batch").unwrap_or(0), Ordering::Relaxed);
                    }
                    let verdict = reply
                        .field_str("verdict")
                        .unwrap_or("missing")
                        .to_owned();
                    let mut slots = verdicts.lock().unwrap();
                    match &slots[candidate] {
                        None => slots[candidate] = Some(verdict),
                        Some(prev) if *prev != verdict => {
                            slots[candidate] = Some("divergent".to_owned());
                        }
                        Some(_) => {}
                    }
                    i += 1;
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    srv.shutdown();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let served = served.into_inner();
    VerifyRun {
        served,
        rps: served as f64 / elapsed.as_secs_f64(),
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
        batched_requests: batched_requests.into_inner(),
        max_batch: max_batch.into_inner(),
        verdicts: verdicts
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|v| v.unwrap_or_else(|| "unvisited".to_owned()))
            .collect(),
    }
}

struct BatchVerify {
    conns: usize,
    unbatched: VerifyRun,
    batched: VerifyRun,
    speedup: f64,
    verdicts_equal: bool,
}

fn batch_verify(w: &Workload, fast: bool) -> BatchVerify {
    // Fleet shape: concurrency well above the batch size, so the
    // gather always finds a full cohort waiting and never sleeps out
    // its window. One worker on both sides: the comparison is
    // per-worker verify throughput.
    let conns = 24usize;
    let duration = Duration::from_secs(if fast { 2 } else { 5 });
    let base = ServerConfig {
        workers: 1,
        queue_depth: 256,
        ..ServerConfig::default()
    };
    let unbatched = verify_run(
        w,
        "unbatched",
        ServerConfig {
            batch_max: 1,
            ..base.clone()
        },
        conns,
        duration,
    );
    let batched = verify_run(
        w,
        "batched",
        ServerConfig {
            batch_window: Duration::from_millis(4),
            batch_max: 8,
            ..base
        },
        conns,
        duration,
    );
    let verdicts_equal = unbatched
        .verdicts
        .iter()
        .zip(&batched.verdicts)
        .all(|(a, b)| {
            // A candidate one short run never reached proves nothing
            // either way; any visited verdict must match exactly.
            a == "unvisited" || b == "unvisited" || (a == b && a != "divergent")
        });
    BatchVerify {
        conns,
        speedup: batched.rps / unbatched.rps.max(f64::MIN_POSITIVE),
        unbatched,
        batched,
        verdicts_equal,
    }
}

// ---------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------

fn json_histogram(hist: &[(u64, u64)]) -> String {
    let entries: Vec<String> = hist
        .iter()
        .map(|(le, n)| format!("{{ \"le_us\": {le}, \"count\": {n} }}"))
        .collect();
    format!("[ {} ]", entries.join(", "))
}

fn json_verify_run(r: &VerifyRun) -> String {
    let verdicts: Vec<String> = r.verdicts.iter().map(|v| format!("\"{v}\"")).collect();
    format!(
        "{{ \"served\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
         \"batched_requests\": {}, \"max_batch\": {}, \"verdicts\": [{}] }}",
        r.served,
        r.rps,
        r.p50_us,
        r.p99_us,
        r.batched_requests,
        r.max_batch,
        verdicts.join(", "),
    )
}

fn write_json(fast: bool, scale: &ConnScaling, tp: &Throughput, bv: &BatchVerify) {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"odcfp-bench-serve/1\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"connections\": {{ \"conns\": {}, \"reactor\": {{ \"rss_delta_bytes\": {}, \
         \"rss_per_conn_bytes\": {}, \"threads_added\": {} }}, \"threaded\": {{ \
         \"rss_delta_bytes\": {}, \"rss_per_conn_bytes\": {}, \"threads_added\": {} }}, \
         \"multiplier_at_equal_memory\": {:.1}, \"reactor_conns_at_equal_memory\": {} }},\n",
        scale.conns,
        scale.reactor.rss_delta_bytes,
        scale.reactor.rss_per_conn,
        scale.reactor.threads_added,
        scale.threaded.rss_delta_bytes,
        scale.threaded.rss_per_conn,
        scale.threaded.threads_added,
        scale.multiplier,
        scale.equal_memory_conns,
    ));
    json.push_str(&format!(
        "  \"throughput\": {{ \"target_rps\": {}, \"achieved_rps\": {:.1}, \"sent\": {}, \
         \"ok\": {}, \"errors\": {}, \"p50_us\": {}, \"p99_us\": {}, \
         \"histogram_le_us\": {} }},\n",
        tp.target_rps,
        tp.achieved_rps,
        tp.sent,
        tp.ok,
        tp.errors,
        tp.p50_us,
        tp.p99_us,
        json_histogram(&tp.histogram),
    ));
    json.push_str(&format!(
        "  \"batch_verify\": {{ \"conns\": {}, \"candidates\": {}, \"unbatched\": {}, \
         \"batched\": {}, \"speedup\": {:.2}, \"verdicts_equal\": {} }}\n}}\n",
        bv.conns,
        bv.unbatched.verdicts.len(),
        json_verify_run(&bv.unbatched),
        json_verify_run(&bv.batched),
        bv.speedup,
        bv.verdicts_equal,
    ));

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_serve.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");

    let w = workload(if fast { 6 } else { 12 });
    let scale = connection_scaling(fast);
    let tp = throughput(&w, fast);
    let bv = batch_verify(&w, fast);

    write_json(fast, &scale, &tp, &bv);

    println!("| section | result |");
    println!("|---------|--------|");
    println!(
        "| connections ({}) | reactor {} B/conn (+{} threads), threaded {} B/conn \
         (+{} threads), {:.0}x at equal memory |",
        scale.conns,
        scale.reactor.rss_per_conn,
        scale.reactor.threads_added,
        scale.threaded.rss_per_conn,
        scale.threaded.threads_added,
        scale.multiplier,
    );
    println!(
        "| open-loop throughput | {:.0}/{} rps, p50 {} us, p99 {} us, {} errors |",
        tp.achieved_rps, tp.target_rps, tp.p50_us, tp.p99_us, tp.errors,
    );
    println!(
        "| verify unbatched | {:.1} rps, p50 {} us, p99 {} us |",
        bv.unbatched.rps, bv.unbatched.p50_us, bv.unbatched.p99_us,
    );
    println!(
        "| verify batched | {:.1} rps, p50 {} us, p99 {} us, max batch {}, \
         {:.2}x, verdicts equal: {} |",
        bv.batched.rps,
        bv.batched.p50_us,
        bv.batched.p99_us,
        bv.batched.max_batch,
        bv.speedup,
        bv.verdicts_equal,
    );

    if check {
        let mut failures = Vec::new();
        if scale.multiplier < 4.0 {
            failures.push(format!(
                "reactor holds only {:.1}x the connections of threaded at equal memory \
                 (floor 4x)",
                scale.multiplier
            ));
        }
        if !bv.verdicts_equal {
            failures.push(format!(
                "batched verdicts diverge from unbatched: {:?} vs {:?}",
                bv.batched.verdicts, bv.unbatched.verdicts
            ));
        }
        if tp.errors > 0 {
            failures.push(format!("{} throughput requests errored", tp.errors));
        }
        // Conservative floors: a debug-grade machine still clears these
        // by an order of magnitude in release.
        if tp.achieved_rps < tp.target_rps as f64 * 0.5 {
            failures.push(format!(
                "open-loop generator achieved {:.0} of {} target rps",
                tp.achieved_rps, tp.target_rps
            ));
        }
        if bv.unbatched.served == 0 || bv.batched.served == 0 {
            failures.push("verify sweep served zero requests".to_owned());
        }
        // The headline batching claim only gates the full run: --fast
        // sweeps are too short for a stable ratio.
        if !fast && bv.speedup < 1.05 {
            failures.push(format!(
                "coalesced verification is not measurably faster: {:.2}x",
                bv.speedup
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("all checks passed");
    }
}
