//! Verification fast-path benchmark: regenerates `BENCH_verify.json` at
//! the repository root, comparing the cold whole-circuit miter baseline
//! against the sweep-based fast path and the incremental per-buyer
//! [`VerifySession`] on campaign-style sweeps of N = 1 / 8 / 64
//! fingerprinted buyer variants.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_verify
//! [--fast] [--guard] [names...]`
//!
//! - default: `c6288 des` (c6288's cold miter is intractable, so its
//!   baseline is conflict-capped and sampled — reported honestly via
//!   `cold_capped` / `cold_sampled_buyers`; `des` is the uncapped
//!   acceptance circuit).
//! - `--fast`: `c880` only, one buyer tier — the CI smoke configuration.
//! - `--guard`: c6288 regression guard — exits non-zero if the fast path
//!   is slower than even the conflict-capped cold baseline.
//! - `--overhead`: disabled-instrumentation guard — exits non-zero if
//!   the tracing call sites crossed by a `des` fast-path sweep would
//!   cost more than 1% of the sweep's untraced wall time (DESIGN.md
//!   §12 overhead budget). Pass a circuit name to override `des`.

use std::path::PathBuf;
use std::time::Instant;

use odcfp_bench::netlist_for;
use odcfp_core::{verify_equivalent_report, Fingerprinter, Verdict, VerifyPolicy, VerifySession};
use odcfp_netlist::Netlist;

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Proven => "proven",
        Verdict::Refuted { .. } => "refuted",
        Verdict::ProbablyEquivalent { .. } => "probably_equivalent",
        Verdict::Undecided { .. } => "undecided",
    }
}

/// Cold baseline policy: simulation stages identical to strict, but the
/// SAT rung is a whole-circuit miter. `cap` bounds the conflicts per
/// buyer for circuits whose cold miter is intractable (c6288).
fn cold_policy(cap: Option<u64>) -> VerifyPolicy {
    VerifyPolicy {
        use_fast_path: false,
        sat_initial_conflicts: cap,
        sat_conflict_cap: cap,
        ..VerifyPolicy::strict()
    }
}

/// Deterministic per-buyer fingerprint bits (xorshift64*; no clocks or
/// OS randomness so reruns are bit-identical).
fn buyer_bits(buyer: u64, n: usize) -> Vec<bool> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (buyer + 1).wrapping_mul(0x0DCF_5EED);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

struct Row {
    name: String,
    gates: usize,
    buyers: usize,
    cold_cap: Option<u64>,
    cold_sampled: usize,
    cold_per_buyer_ms: f64,
    /// Measured (or, when sampled, extrapolated) cold total per tier.
    cold_total_ms: Vec<(usize, f64)>,
    fast_total_ms: Vec<(usize, f64)>,
    fast_marginal_ms: f64,
    verdicts: Vec<&'static str>,
    verdicts_match: bool,
    cold_decided: usize,
}

fn bench_circuit(name: &str, tiers: &[usize], cold_cap: Option<u64>, cold_sample: usize) -> Row {
    let base: Netlist = netlist_for(name);
    let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
    let n_loc = fp.locations().len();
    let n_buyers = *tiers.iter().max().expect("at least one tier");

    eprintln!("{name}: embedding {n_buyers} buyer variants ({n_loc} locations)...");
    let buyers: Vec<Netlist> = (0..n_buyers as u64)
        .map(|b| {
            let copy = fp.embed(&buyer_bits(b, n_loc)).expect("embed preserves function");
            copy.netlist().clone()
        })
        .collect();

    // Cold baseline: independent whole-circuit miters, one per buyer. No
    // state is shared, so per-buyer costs add; sampling the first
    // `cold_sample` buyers and extrapolating is exact in expectation and
    // reported as such.
    let sampled = cold_sample.min(n_buyers);
    let policy = cold_policy(cold_cap);
    let mut cold_verdicts = Vec::new();
    let t0 = Instant::now();
    for buyer in buyers.iter().take(sampled) {
        let report =
            verify_equivalent_report(&base, std::hint::black_box(buyer), &policy).expect("verify");
        cold_verdicts.push(verdict_name(&report.verdict));
    }
    let cold_sampled_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_per_buyer_ms = cold_sampled_ms / sampled as f64;
    let cold_total_ms: Vec<(usize, f64)> = tiers
        .iter()
        .map(|&n| (n, cold_per_buyer_ms * n as f64))
        .collect();

    // Fast path: one fresh session per tier, verifying the first N
    // buyers through the shared strash/sweep/incremental-miter state.
    let fast_policy = VerifyPolicy::strict();
    let mut fast_total_ms = Vec::new();
    let mut fast_verdicts = Vec::new();
    for &n in tiers {
        let t0 = Instant::now();
        let mut session = VerifySession::new(&base).expect("valid benchmark");
        let mut verdicts = Vec::new();
        for buyer in buyers.iter().take(n) {
            let report = session
                .verify(std::hint::black_box(buyer), &fast_policy)
                .expect("verify");
            verdicts.push(verdict_name(&report.verdict));
        }
        fast_total_ms.push((n, t0.elapsed().as_secs_f64() * 1e3));
        if n == n_buyers {
            fast_verdicts = verdicts;
        }
    }

    let t1 = fast_total_ms
        .iter()
        .find(|(n, _)| *n == 1)
        .map_or(f64::NAN, |&(_, ms)| ms);
    let tmax = fast_total_ms.last().map_or(f64::NAN, |&(_, ms)| ms);
    let fast_marginal_ms = if n_buyers > 1 {
        (tmax - t1) / (n_buyers - 1) as f64
    } else {
        tmax
    };

    // Verdict agreement over the cold-measured prefix. A capped cold run
    // may return `undecided`; those are excluded from the match (the cap
    // is the baseline giving up, not a disagreement) but counted.
    let decided: Vec<(usize, &'static str)> = cold_verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| **v != "undecided")
        .map(|(i, v)| (i, *v))
        .collect();
    let verdicts_match = decided.iter().all(|&(i, v)| fast_verdicts[i] == v);

    Row {
        name: name.to_owned(),
        gates: base.num_gates(),
        buyers: n_buyers,
        cold_cap,
        cold_sampled: sampled,
        cold_per_buyer_ms,
        cold_total_ms,
        fast_total_ms,
        fast_marginal_ms,
        verdicts: fast_verdicts,
        verdicts_match,
        cold_decided: decided.len(),
    }
}

/// `--overhead` mode: proves the disabled-instrumentation cost contract
/// on a real workload. Measures (1) the untraced wall time of a
/// fast-path sweep, (2) how many instrumentation events the same sweep
/// emits when a capture sink is attached, and (3) the per-call-site
/// cost with tracing disabled, in a tight loop over the worst of the
/// three primitive shapes (span / count / point). The budget is
/// `(2) x (3) < 1% of (1)`.
///
/// This bounds the *call-site* overhead — the only cost paid by users
/// who never pass `--trace-out` — rather than diffing two wall-clock
/// runs, whose run-to-run noise on a millisecond-scale sweep dwarfs a
/// sub-percent effect.
fn overhead_guard(name: &str, n_buyers: usize) -> bool {
    let base: Netlist = netlist_for(name);
    let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
    let n_loc = fp.locations().len();
    eprintln!("overhead {name}: embedding {n_buyers} buyer variants ({n_loc} locations)...");
    let buyers: Vec<Netlist> = (0..n_buyers as u64)
        .map(|b| {
            let copy = fp.embed(&buyer_bits(b, n_loc)).expect("embed preserves function");
            copy.netlist().clone()
        })
        .collect();
    let policy = VerifyPolicy::strict();
    let sweep = || {
        let mut session = VerifySession::new(&base).expect("valid benchmark");
        for buyer in &buyers {
            session
                .verify(std::hint::black_box(buyer), &policy)
                .expect("verify");
        }
    };

    // (1) Untraced wall time; median of 3 runs absorbs allocator noise.
    assert!(
        !odcfp_obs::enabled(),
        "--overhead must start with tracing disabled (unset ODCFP_TRACE)"
    );
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            sweep();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    let disabled_s = runs[runs.len() / 2];

    // (2) Every call site the sweep crosses emits exactly one event
    // under a capture sink (spans emit on drop), so the event count is
    // the call-site count.
    let ((), events) = odcfp_obs::capture(sweep).expect("no competing trace sink");
    let n_events = events.len();

    // (3) Disabled per-call-site cost. Each shape still evaluates its
    // arguments and takes the `enabled()` branch — exactly what a
    // production binary pays.
    fn per_op(mut f: impl FnMut()) -> f64 {
        const ITERS: u32 = 1_000_000;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        t0.elapsed().as_secs_f64() / f64::from(ITERS)
    }
    let span_s = per_op(|| {
        let mut span = odcfp_obs::span(std::hint::black_box("bench.noop"));
        span.field("k", 1u64);
    });
    let count_s = per_op(|| odcfp_obs::count(std::hint::black_box("bench.ctr"), 1));
    let point_s = per_op(|| {
        odcfp_obs::point(std::hint::black_box("bench.pt"))
            .field("a", 1u64)
            .emit();
    });
    let worst = span_s.max(count_s).max(point_s);

    let overhead_s = worst * n_events as f64;
    let pct = 100.0 * overhead_s / disabled_s;
    eprintln!(
        "overhead {name}: sweep {:.1}ms untraced, {n_events} call sites, worst shape \
         {:.1}ns (span {:.1} / count {:.1} / point {:.1}) -> {:.4}ms = {:.4}% of sweep \
         (budget 1%)",
        disabled_s * 1e3,
        worst * 1e9,
        span_s * 1e9,
        count_s * 1e9,
        point_s * 1e9,
        overhead_s * 1e3,
        pct,
    );
    pct < 1.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let guard = args.iter().any(|a| a == "--guard");
    let overhead = args.iter().any(|a| a == "--overhead");

    if overhead {
        let name = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .map_or("des", String::as_str);
        if !overhead_guard(name, 8) {
            eprintln!("REGRESSION: disabled instrumentation exceeds the 1% overhead budget");
            std::process::exit(1);
        }
        return;
    }

    if guard {
        // CI regression guard: on c6288 the fast path must beat even a
        // conflict-capped cold baseline (the uncapped one is intractable).
        let row = bench_circuit("c6288", &[8], Some(2_000), 8);
        let cold = row.cold_total_ms.last().expect("tier").1;
        let fast_ms = row.fast_total_ms.last().expect("tier").1;
        eprintln!(
            "guard c6288: fast {fast_ms:.1}ms vs capped-cold {cold:.1}ms ({:.1}x)",
            cold / fast_ms
        );
        assert!(
            row.verdicts.iter().all(|v| *v == "proven"),
            "fast path failed to prove a fingerprinted copy: {:?}",
            row.verdicts
        );
        if fast_ms >= cold {
            eprintln!("REGRESSION: fast-path verify is slower than the capped cold miter");
            std::process::exit(1);
        }
        return;
    }

    let names: Vec<String> = {
        let named: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
        if !named.is_empty() {
            named
        } else if fast {
            vec!["c880".into()]
        } else {
            vec!["c6288".into(), "des".into()]
        }
    };
    let tiers: &[usize] = if fast { &[1, 8] } else { &[1, 8, 64] };

    let mut rows = Vec::new();
    for name in &names {
        // c6288's cold miter is a multiplier equivalence check — known
        // intractable for CNF SAT — so its baseline is capped + sampled.
        let (cap, sample) = if name == "c6288" { (Some(2_000), 8) } else { (None, 64) };
        let row = bench_circuit(name, tiers, cap, sample);
        let (n, cold) = *row.cold_total_ms.last().expect("tier");
        let fast_ms = row.fast_total_ms.last().expect("tier").1;
        eprintln!(
            "{name:8} N={n}: cold {cold:.1}ms{} fast {fast_ms:.1}ms ({:.1}x), \
             marginal {:.2}ms/buyer, verdicts_match={}",
            if row.cold_cap.is_some() { " (capped)" } else { "" },
            cold / fast_ms,
            row.fast_marginal_ms,
            row.verdicts_match,
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"odcfp-bench-verify/1\",\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!("      \"gates\": {},\n", r.gates));
        json.push_str(&format!("      \"buyers\": {},\n", r.buyers));
        json.push_str(&format!(
            "      \"cold_capped\": {},\n",
            r.cold_cap.is_some()
        ));
        if let Some(cap) = r.cold_cap {
            json.push_str(&format!("      \"cold_conflict_cap\": {cap},\n"));
        }
        json.push_str(&format!(
            "      \"cold_sampled_buyers\": {},\n",
            r.cold_sampled
        ));
        json.push_str(&format!(
            "      \"cold_per_buyer_ms\": {},\n",
            json_f(r.cold_per_buyer_ms)
        ));
        json.push_str("      \"sweeps\": [\n");
        for (j, (&(n, cold), &(_, fast_ms))) in
            r.cold_total_ms.iter().zip(&r.fast_total_ms).enumerate()
        {
            json.push_str(&format!(
                "        {{ \"buyers\": {n}, \"cold_ms\": {}, \"fast_ms\": {}, \"speedup\": {} }}{}\n",
                json_f(cold),
                json_f(fast_ms),
                json_f(cold / fast_ms),
                if j + 1 == r.cold_total_ms.len() { "" } else { "," }
            ));
        }
        json.push_str("      ],\n");
        json.push_str(&format!(
            "      \"fast_marginal_ms_per_buyer\": {},\n",
            json_f(r.fast_marginal_ms)
        ));
        json.push_str(&format!(
            "      \"verdicts\": [{}],\n",
            r.verdicts
                .iter()
                .map(|v| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        json.push_str(&format!("      \"cold_decided\": {},\n", r.cold_decided));
        json.push_str(&format!("      \"verdicts_match\": {}\n", r.verdicts_match));
        json.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_verify.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_verify.json");
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
