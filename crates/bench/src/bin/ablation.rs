//! Design-quality ablations called out in DESIGN.md §6:
//!
//! 1. selection policy — the paper's deepest-target / earliest-trigger rule
//!    versus random candidate selection;
//! 2. reactive versus proactive delay-constrained heuristics.
//!
//! Usage: `ablation [--fast | circuit names...]`

use odcfp_bench::{names_from_args, netlist_for, run_heuristic_ablation, run_policy_ablation};
use odcfp_core::sdc::find_sdc_locations;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names = names_from_args(&args);

    println!("== Ablation 1: selection policy (delay overhead, all locations embedded) ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "circuit", "deep dly%", "random dly%", "deep area%", "random area%"
    );
    for r in run_policy_ablation(&names, 0xAB1A) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r.name, r.deep_delay_pct, r.random_delay_pct, r.deep_area_pct, r.random_area_pct
        );
    }

    println!();
    println!("== Survey: SDC (companion technique) swap locations per circuit ==");
    println!("{:<8} {:>8} {:>10}", "circuit", "gates", "SDC locs");
    for name in &names {
        let n = netlist_for(name);
        let locs = find_sdc_locations(&n, 50_000);
        println!("{:<8} {:>8} {:>10}", name, n.num_gates(), locs.len());
    }

    println!();
    println!("== Ablation 2: reactive vs proactive heuristic (10% delay budget) ==");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "circuit", "reactive kept", "proactive kept", "reactive%", "proactive%"
    );
    for r in run_heuristic_ablation(&names, 10.0) {
        println!(
            "{:<8} {:>14} {:>14} {:>12.2} {:>12.2}",
            r.name, r.reactive_kept, r.proactive_kept, r.reactive_delay_pct, r.proactive_delay_pct
        );
    }
}
