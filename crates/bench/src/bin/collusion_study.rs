//! Quantifies §III-E's collusion analysis: how much of the fingerprint a
//! growing collusion exposes, and whether tracing still convicts every
//! colluder, across forge strategies and seeds.
//!
//! Usage: `collusion_study [circuit] [buyers] [trials]`

use odcfp_bench::engine_for;
use odcfp_core::collusion::{analyze_collusion, forge, trace_suspects, ForgeStrategy};
use odcfp_netlist::{CellLibrary, Netlist};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuit = args.first().map_or("c432", String::as_str);
    let buyers: usize = args.get(1).map_or(12, |s| s.parse().expect("buyer count"));
    let trials: u64 = args.get(2).map_or(5, |s| s.parse().expect("trial count"));

    let fp = engine_for(circuit, CellLibrary::standard());
    let n = fp.locations().len();
    println!("{circuit}: {n} locations, {buyers} registered buyers, {trials} trials\n");

    println!(
        "{:>9} {:>12} {:>22} {:>22}",
        "colluders", "exposed%", "traced (ClearExposed)", "traced (Majority)"
    );
    for k in 2..=6usize.min(buyers) {
        let mut exposure = 0.0;
        let mut traced = [0usize; 2];
        let mut total = [0usize; 2];
        for trial in 0..trials {
            let copies: Vec<_> = (0..buyers)
                .map(|b| {
                    fp.embed_seeded(trial * 1000 + b as u64)
                        .expect("embedding verified")
                })
                .collect();
            let registry: Vec<Vec<bool>> =
                copies.iter().map(|c| c.bits().to_vec()).collect();
            let held: Vec<&Netlist> = copies[..k].iter().map(|c| c.netlist()).collect();
            exposure += analyze_collusion(&fp, &held).exposure_rate();
            for (si, strategy) in [ForgeStrategy::ClearExposed, ForgeStrategy::Majority]
                .into_iter()
                .enumerate()
            {
                let forged = forge(&fp, &held, strategy).expect("forgery embeds");
                let recovered = fp.extract(forged.netlist());
                let ranking = trace_suspects(&recovered, &registry);
                let topk: Vec<usize> = ranking.iter().take(k).map(|&(i, _)| i).collect();
                total[si] += k;
                traced[si] += (0..k).filter(|c| topk.contains(c)).count();
            }
        }
        println!(
            "{:>9} {:>11.1}% {:>21.1}% {:>21.1}%",
            k,
            exposure / trials as f64 * 100.0,
            traced[0] as f64 / total[0] as f64 * 100.0,
            traced[1] as f64 / total[1] as f64 * 100.0
        );
    }
    println!();
    println!("exposed% — fraction of locations a collusion of that size reveals");
    println!("traced%  — colluders ranked within the top-k suspects by the");
    println!("           containment/agreement tracer (100% = all convicted)");
}
