//! Adversary-battery benchmark: regenerates `BENCH_attack.json` at the
//! repository root by running the full `odcfp_core::attack` battery —
//! resynthesis round-trips, n-way collusion averaging, side-channel
//! detectability — on the acceptance circuits and recording each
//! scorecard plus wall time.
//!
//! Usage: `cargo run --release -p odcfp-bench --bin bench_attack
//! [--fast] [--check] [names...]`
//!
//! - default: `des c6288` (the two acceptance circuits from ISSUE 8).
//! - `--fast`: the CI smoke configuration — resynthesis level `opt`
//!   only and coalitions `2/4/8`, which still covers every `--check`
//!   threshold.
//! - `--check`: exit non-zero unless the robustness acceptance
//!   thresholds hold on `des`:
//!   * every random-averaging coalition of size ≤ 8 convicts at least
//!     one true colluder;
//!   * no collusion cell of any size or strategy accuses an innocent;
//!   * every resynthesis level keeps wire survival ≥ 90% and still
//!     convicts the victim buyer;
//!   * the side-channel scan flags every minted copy as detectable.

use std::path::PathBuf;
use std::time::Instant;

use odcfp_bench::netlist_for;
use odcfp_core::attack::{run_battery, AttackOptions, AttackScorecard};
use odcfp_core::CancelToken;
use odcfp_synth::ResynthLevel;

/// Per-circuit battery run: the scorecard plus how long it took.
struct Entry {
    seconds: f64,
    scorecard: AttackScorecard,
}

fn run_one(name: &str, opts: &AttackOptions) -> Entry {
    let netlist = netlist_for(name);
    let token = CancelToken::new();
    let t0 = Instant::now();
    let scorecard = run_battery(&netlist, opts, &token)
        .unwrap_or_else(|e| panic!("{name}: attack battery failed: {e}"));
    let seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "{name}: {} locations, {} buyers, {:.2}s",
        scorecard.locations, scorecard.buyers, seconds
    );
    Entry { seconds, scorecard }
}

/// Checks the `des` acceptance thresholds; returns the violations.
fn check_des(sc: &AttackScorecard) -> Vec<String> {
    let mut failed = Vec::new();
    for c in &sc.collusion {
        if c.innocents_accused > 0 {
            failed.push(format!(
                "collusion n={} {} accused {} innocent buyer(s)",
                c.coalition,
                c.strategy.name(),
                c.innocents_accused
            ));
        }
        if c.strategy.name() == "random" && c.coalition <= 8 && c.colluders_convicted == 0 {
            failed.push(format!(
                "random-averaging coalition n={} escaped conviction (outcome {})",
                c.coalition,
                c.outcome.name()
            ));
        }
    }
    for r in &sc.resynth {
        if r.survival_rate < 0.9 {
            failed.push(format!(
                "resynth {} wire survival {:.1}% below the 90% floor",
                r.level.name(),
                r.survival_rate * 100.0
            ));
        }
        if !r.victim_convicted {
            failed.push(format!(
                "resynth {} lost the victim (outcome {})",
                r.level.name(),
                r.outcome.name()
            ));
        }
    }
    if sc.side_channel.detectable < sc.side_channel.copies {
        failed.push(format!(
            "side-channel scan missed {} of {} copies (max distance {:.6} vs threshold {:.6})",
            sc.side_channel.copies - sc.side_channel.detectable,
            sc.side_channel.copies,
            sc.side_channel.max_distance,
            sc.side_channel.threshold
        ));
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");
    let names: Vec<&str> = {
        let explicit: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(|a| a.as_str())
            .collect();
        if !explicit.is_empty() {
            explicit
        } else if fast {
            vec!["des"]
        } else {
            vec!["des", "c6288"]
        }
    };

    let mut opts = AttackOptions::default();
    if fast {
        opts.resynth_levels = vec![ResynthLevel::Opt];
        opts.coalition_sizes = vec![2, 4, 8];
    }

    let entries: Vec<(String, Entry)> = names
        .iter()
        .map(|&n| (n.to_string(), run_one(n, &opts)))
        .collect();

    // BENCH_attack.json: an array of scorecards, each with the wall time
    // spliced in as the first key. Everything but `wall_s` is a pure
    // function of (circuit, options) and byte-stable across reruns.
    let mut json = String::from("[\n");
    for (i, (_, e)) in entries.iter().enumerate() {
        let body = e.scorecard.to_json();
        let body = body.strip_prefix("{\n").expect("scorecard JSON shape");
        json.push_str(&format!("{{\n  \"wall_s\": {:.3},\n{}", e.seconds, body));
        let trimmed = json.trim_end().len();
        json.truncate(trimmed);
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("]\n");

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_attack.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_attack.json");
    eprintln!("wrote {}", out.display());

    if check {
        let des = entries
            .iter()
            .find(|(n, _)| n == "des")
            .map(|(_, e)| &e.scorecard)
            .expect("--check requires des among the benchmarks");
        let failed = check_des(des);
        if !failed.is_empty() {
            for f in &failed {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("all attack acceptance thresholds hold");
    }
}
