//! Trace-derived per-stage timing breakdown: regenerates
//! `BENCH_stages.json` at the repository root and prints the markdown
//! table embedded in `EXPERIMENTS.md` (§ "Where the time goes").
//!
//! Usage: `cargo run --release -p odcfp-bench --bin stage_times
//! [--fast] [names...]`
//!
//! For each benchmark the whole pipeline — locate, embed one buyer,
//! fast-path verify — runs under an in-memory trace sink
//! ([`odcfp_obs::capture`]); the stage times are the *self* times of
//! the spans the pipeline itself emits, grouped by namespace, so the
//! table is exactly what `odcfp report` would print for a
//! `--trace-out` run of the same flow. Self time excludes enclosed
//! child spans, so the stage columns are disjoint; the `other` column
//! is the wall-clock total minus the staged sums (untraced setup work),
//! which keeps the columns summing to the measured total.

use std::path::PathBuf;

use odcfp_bench::netlist_for;
use odcfp_core::{Fingerprinter, Verdict, VerifyPolicy, VerifySession};

/// Per-buyer fingerprint bits (deterministic; same scheme as
/// `bench_verify` so the two reports describe the same workload).
fn buyer_bits(buyer: u64, n: usize) -> Vec<bool> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (buyer + 1).wrapping_mul(0x0DCF_5EED);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

struct Row {
    name: String,
    gates: usize,
    locations: usize,
    locate_ms: f64,
    embed_ms: f64,
    verify_ms: f64,
    other_ms: f64,
}

impl Row {
    fn total_ms(&self) -> f64 {
        self.locate_ms + self.embed_ms + self.verify_ms + self.other_ms
    }
}

/// Maps a span name to its pipeline stage.
fn stage_of(span: &str) -> &'static str {
    match span.split('.').next() {
        // Location analysis owns the engine workers it spawns.
        _ if span == "core.locate" => "locate",
        Some("engine") => "locate",
        _ if span == "core.embed" => "embed",
        Some("verify" | "sweep" | "sat" | "shared") => "verify",
        _ => "other",
    }
}

fn bench_circuit(name: &str) -> Row {
    let base = netlist_for(name);
    let gates = base.num_gates();
    eprintln!("{name}: tracing locate + embed + verify ({gates} gates)...");

    let wall = std::time::Instant::now();
    let ((locations, verdict_ok), events) = odcfp_obs::capture(|| {
        let fp = Fingerprinter::new(base.clone()).expect("valid benchmark");
        let n_loc = fp.locations().len();
        let copy = fp
            .embed(&buyer_bits(0, n_loc))
            .expect("embed preserves function");
        let mut session = VerifySession::new(fp.base()).expect("valid benchmark");
        let report = session
            .verify(copy.netlist(), &VerifyPolicy::strict())
            .expect("verify");
        (n_loc, matches!(report.verdict, Verdict::Proven))
    })
    .expect("no competing trace sink");
    let total_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert!(verdict_ok, "{name}: fast path failed to prove the fingerprinted copy");

    let mut ms = std::collections::BTreeMap::new();
    for (span, self_us) in odcfp_obs::report::span_self_us(&events) {
        *ms.entry(stage_of(&span)).or_insert(0.0) += self_us as f64 / 1e3;
    }
    let locate_ms = ms.get("locate").copied().unwrap_or(0.0);
    let embed_ms = ms.get("embed").copied().unwrap_or(0.0);
    let verify_ms = ms.get("verify").copied().unwrap_or(0.0);
    Row {
        name: name.to_owned(),
        gates,
        locations,
        locate_ms,
        embed_ms,
        verify_ms,
        // Everything the named stages don't account for: untraced setup
        // (netlist clones, session construction) plus any span outside the
        // three namespaces. Wall total minus the staged sums — previously
        // this read only the (empty) "other" span bucket and printed 0.
        other_ms: (total_ms - locate_ms - embed_ms - verify_ms).max(0.0),
    }
}

fn markdown(rows: &[Row]) -> String {
    let mut md = String::new();
    md.push_str("| circuit | gates | locations | locate (ms) | embed (ms) | verify (ms) | total (ms) | verify share |\n");
    md.push_str("|---------|------:|----------:|------------:|-----------:|------------:|-----------:|-------------:|\n");
    for r in rows {
        let total = r.total_ms();
        md.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.0}% |\n",
            r.name,
            r.gates,
            r.locations,
            r.locate_ms,
            r.embed_ms,
            r.verify_ms,
            total,
            if total > 0.0 { 100.0 * r.verify_ms / total } else { 0.0 },
        ));
    }
    md
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let names: Vec<String> = {
        let named: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
        if !named.is_empty() {
            named
        } else if fast {
            vec!["c432".into()]
        } else {
            vec!["c432".into(), "c880".into(), "c1908".into(), "des".into()]
        }
    };

    let rows: Vec<Row> = names.iter().map(|n| bench_circuit(n)).collect();

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"odcfp-bench-stages/1\",\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"gates\": {}, \"locations\": {}, \
             \"locate_ms\": {:.3}, \"embed_ms\": {:.3}, \"verify_ms\": {:.3}, \
             \"other_ms\": {:.3} }}{}\n",
            r.name,
            r.gates,
            r.locations,
            r.locate_ms,
            r.embed_ms,
            r.verify_ms,
            r.other_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_stages.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_stages.json");
    eprintln!("wrote {}", out.display());
    print!("{}", markdown(&rows));
}
