//! The shared location-analysis engine.
//!
//! [`cones::ffc_of`](crate::cones::ffc_of) answers one maximum-FFC query
//! with a fresh topological sort plus a `HashSet` DFS, so sweeping every
//! primary-gate candidate — what
//! [`find_locations`](../../odcfp_core/fn.find_locations.html) does — costs
//! `O(gates · (gates + pins))`. [`AnalysisEngine`] instead precomputes, once
//! per netlist:
//!
//! * a [`CsrView`] — flat fanin/fanout adjacency, fanout counts, topological
//!   order;
//! * the **fanout-dominator tree**: gate `x` belongs to the maximum FFC of
//!   root `r` exactly when every path from `x`'s output to any primary
//!   output (or dangling sink) passes through `r`, i.e. when `r` dominates
//!   `x` in the fanout DAG augmented with a virtual root that absorbs
//!   primary outputs and fanout-free gates. One reverse-topological sweep
//!   (`idom[g] = NCA` of `g`'s sink gates in the tree built so far)
//!   therefore yields *every* FFC membership at once; `ffc_of(r)` is just
//!   `r`'s dominator subtree read off in topological order.
//!
//! After that, each FFC query is output-sensitive (`O(|cone| log |cone|)`),
//! `feeds_only` is `O(1)`, and transitive fanin/fanout walks use
//! epoch-stamped [`Scratch`] marks instead of hashing.
//!
//! # Determinism contract
//!
//! The engine returns bit-identical results at any worker count. All
//! parallelism in the workspace goes through [`parallel_chunks`], which
//! splits an index range into contiguous chunks, runs each chunk on a
//! scoped thread, and returns per-chunk results **in chunk order**; as long
//! as the per-item computation is pure, concatenating (or folding
//! left-to-right over) the chunk results is independent of the thread
//! count. Worker count resolution: [`set_thread_override`] >
//! `ODCFP_THREADS` > [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

use odcfp_netlist::{CsrView, GateId, Netlist, NetlistError, Scratch};

use crate::cancel::CancelToken;

/// Encoding of the dominator tree's virtual root in `idom`/NCA space.
const VIRTUAL_ROOT: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Worker-count configuration
// ---------------------------------------------------------------------------

/// Process-wide worker-count override (0 = unset). Set from the CLI
/// `--threads` flag and from tests; takes precedence over `ODCFP_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent parallel analysis to use exactly `n` workers
/// (`None` restores automatic selection). Intended for the CLI `--threads`
/// flag and determinism tests; results do not depend on the choice.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel analyses will use: the
/// [`set_thread_override`] value if set, else `ODCFP_THREADS` if set to a
/// positive integer, else [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("ODCFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Splits `0..len` into at most `threads` contiguous chunks, evaluates `f`
/// on each chunk (scoped threads when `threads > 1`), and returns the
/// per-chunk results **in chunk order**.
///
/// Chunk boundaries depend on `threads`, so `f` must be pure per index for
/// the merged result to be thread-count-independent: concatenation of
/// per-item outputs, or any left fold that is associative over adjacent
/// ranges (e.g. "first mismatch" = lexicographic minimum).
///
/// # Panics
///
/// Re-raises any panic from a worker thread.
pub fn parallel_chunks<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 {
        let _span = worker_span(0, 0..len);
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(t, r)| {
                let f = &f;
                s.spawn(move || {
                    let _span = worker_span(t, r.clone());
                    f(r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Per-worker timing span (non-deterministic: worker activity depends on
/// the thread count, so these events are excluded from the trace payload).
fn worker_span(worker: usize, range: std::ops::Range<usize>) -> odcfp_obs::Span {
    let mut span = odcfp_obs::span("engine.worker");
    span.field("worker", worker);
    span.field("items", range.len());
    span
}

/// Work-unit granularity of [`parallel_chunks_cancellable`]: the longest
/// stretch of indices a worker processes between two token polls.
const CANCEL_GRANULE: usize = 256;

/// [`parallel_chunks`] with cooperative cancellation: each worker splits
/// its chunk into sub-ranges of at most `CANCEL_GRANULE` (256) indices,
/// polling `token` between sub-ranges, and the per-sub-range results come
/// back concatenated **in index order**.
///
/// Returns `None` when the token fired before the sweep completed —
/// partial results are discarded, because a partial merge would violate
/// the determinism contract. The merge requirements on `f` are the same
/// as for [`parallel_chunks`]; note `f` is now called on finer ranges, so
/// any left fold over adjacent ranges must still be associative.
///
/// # Panics
///
/// Re-raises any panic from a worker thread.
pub fn parallel_chunks_cancellable<R, F>(
    len: usize,
    threads: usize,
    token: &CancelToken,
    f: F,
) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let run = |range: std::ops::Range<usize>| -> Option<Vec<R>> {
        let mut out = Vec::new();
        let mut lo = range.start;
        while lo < range.end {
            if token.is_cancelled() {
                return None;
            }
            let hi = (lo + CANCEL_GRANULE).min(range.end);
            out.push(f(lo..hi));
            lo = hi;
        }
        Some(out)
    };
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 {
        if token.is_cancelled() {
            return None;
        }
        let _span = worker_span(0, 0..len);
        return run(0..len);
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(t, r)| {
                let run = &run;
                s.spawn(move || {
                    let _span = worker_span(t, r.clone());
                    run(r)
                })
            })
            .collect();
        let mut merged = Vec::new();
        let mut cancelled = false;
        for h in handles {
            match h.join() {
                Ok(Some(part)) => merged.extend(part),
                Ok(None) => cancelled = true,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (!cancelled).then_some(merged)
    })
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Precomputed structural analysis of one netlist snapshot: CSR adjacency
/// plus the fanout-dominator tree encoding every maximum FFC.
///
/// The engine is immutable and [`Sync`]; share one instance across worker
/// threads and give each worker its own [`Scratch`]. Rebuild (or patch via
/// the incremental layer in `odcfp-core`) after mutating the netlist.
///
/// # Example
///
/// ```
/// use odcfp_analysis::AnalysisEngine;
/// use odcfp_logic::PrimitiveFn;
/// use odcfp_netlist::{CellLibrary, Netlist};
///
/// let mut n = Netlist::new("m", CellLibrary::standard());
/// let a = n.add_primary_input("a");
/// let b = n.add_primary_input("b");
/// let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
/// let g1 = n.add_gate("g1", and2, &[a, b]);
/// let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), a]);
/// n.set_primary_output(n.gate_output(g2));
///
/// let eng = AnalysisEngine::new(&n)?;
/// assert!(eng.feeds_only(g1, g2)); // g1's only sink is g2
/// assert_eq!(eng.ffc_of(g2), vec![g1, g2]); // max FFC, topological order
/// # Ok::<(), odcfp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisEngine {
    csr: CsrView,
    /// Immediate dominator of each gate in the fanout DAG
    /// ([`VIRTUAL_ROOT`] = the virtual sink-side root).
    idom: Vec<u32>,
    /// CSR rows of dominator-tree children, each row sorted by topological
    /// position.
    child_offsets: Vec<u32>,
    children: Vec<GateId>,
}

impl AnalysisEngine {
    /// Builds the engine in `O(gates · tree-depth + pins)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &Netlist) -> Result<AnalysisEngine, NetlistError> {
        Ok(AnalysisEngine::from_view(CsrView::build(netlist)?))
    }

    /// Builds the engine from an existing CSR view.
    pub fn from_view(csr: CsrView) -> AnalysisEngine {
        let mut span = odcfp_obs::span("engine.build");
        let n = csr.num_gates();
        span.field("gates", n);
        let mut idom = vec![VIRTUAL_ROOT; n];
        let mut dom_depth = vec![1u32; n];

        // Reverse-topological sweep: by the time we reach `g`, every sink
        // of `g` already has its idom, so `idom[g]` is the nearest common
        // ancestor of the sink gates themselves (a path from `g` must pass
        // through one of its sinks; the common dominators of all sinks are
        // exactly the tree ancestors of their NCA). A primary output or a
        // dangling output escapes directly to the virtual root.
        let nca = |idom: &[u32], dom_depth: &[u32], mut a: u32, mut b: u32| -> u32 {
            let depth = |x: u32| if x == VIRTUAL_ROOT { 0 } else { dom_depth[x as usize] };
            while a != b {
                if depth(a) >= depth(b) {
                    a = idom[a as usize];
                } else {
                    b = idom[b as usize];
                }
            }
            a
        };
        for &g in csr.topo_order().iter().rev() {
            let gi = g.index();
            let mut anc: Option<u32> = if csr.drives_po(g) {
                Some(VIRTUAL_ROOT)
            } else {
                None
            };
            for &s in csr.fanouts(g) {
                let node = s.index() as u32;
                anc = Some(match anc {
                    None => node,
                    Some(VIRTUAL_ROOT) => VIRTUAL_ROOT,
                    Some(a) => nca(&idom, &dom_depth, a, node),
                });
                if anc == Some(VIRTUAL_ROOT) {
                    break;
                }
            }
            let d = anc.unwrap_or(VIRTUAL_ROOT);
            idom[gi] = d;
            dom_depth[gi] = if d == VIRTUAL_ROOT {
                1
            } else {
                dom_depth[d as usize] + 1
            };
        }

        // Dominator-tree children in CSR form. Filling in topological order
        // leaves every row sorted by topological position, which is the
        // order `ffc_of` must emit.
        let mut counts = vec![0u32; n + 1];
        for &d in &idom {
            if d != VIRTUAL_ROOT {
                counts[d as usize + 1] += 1;
            }
        }
        let mut child_offsets = counts;
        for i in 1..child_offsets.len() {
            child_offsets[i] += child_offsets[i - 1];
        }
        let mut fill = child_offsets.clone();
        let mut children = vec![GateId::from_index(0); child_offsets[n] as usize];
        for &g in csr.topo_order() {
            let d = idom[g.index()];
            if d != VIRTUAL_ROOT {
                children[fill[d as usize] as usize] = g;
                fill[d as usize] += 1;
            }
        }

        AnalysisEngine {
            csr,
            idom,
            child_offsets,
            children,
        }
    }

    /// The underlying CSR adjacency view.
    pub fn csr(&self) -> &CsrView {
        &self.csr
    }

    /// `root`'s immediate dominator in the fanout DAG, or `None` when it is
    /// the virtual root (the gate drives a primary output, is dangling, or
    /// has reconvergence-free paths to several sinks of distinct cones).
    pub fn fanout_dominator(&self, root: GateId) -> Option<GateId> {
        let d = self.idom[root.index()];
        (d != VIRTUAL_ROOT).then(|| GateId::from_index(d as usize))
    }

    /// The gates whose immediate fanout-dominator is `g` (sorted by
    /// topological position).
    fn dom_children(&self, g: GateId) -> &[GateId] {
        let lo = self.child_offsets[g.index()] as usize;
        let hi = self.child_offsets[g.index() + 1] as usize;
        &self.children[lo..hi]
    }

    /// The maximum fanout-free cone rooted at `root`, in topological order
    /// ending with `root` — element-for-element identical to
    /// [`cones::ffc_of`](crate::cones::ffc_of).
    pub fn ffc_of(&self, root: GateId) -> Vec<GateId> {
        let mut cone = Vec::new();
        self.ffc_of_into(root, &mut cone);
        cone
    }

    /// [`AnalysisEngine::ffc_of`] into a caller-owned buffer (cleared
    /// first), for hot loops that probe many roots.
    pub fn ffc_of_into(&self, root: GateId, cone: &mut Vec<GateId>) {
        cone.clear();
        cone.push(root);
        let mut head = 0;
        while head < cone.len() {
            let g = cone[head];
            head += 1;
            cone.extend_from_slice(self.dom_children(g));
        }
        cone.sort_unstable_by_key(|&g| self.csr.topo_pos(g));
    }

    /// The number of gates in the maximum FFC rooted at `root` without
    /// materializing the cone.
    pub fn ffc_len(&self, root: GateId) -> usize {
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(g) = stack.pop() {
            count += 1;
            stack.extend_from_slice(self.dom_children(g));
        }
        count
    }

    /// O(1) [`cones::feeds_only`](crate::cones::feeds_only): `gate`'s
    /// output feeds exactly `primary`'s one pin and is not a primary
    /// output.
    pub fn feeds_only(&self, gate: GateId, primary: GateId) -> bool {
        self.csr.feeds_only(gate, primary)
    }

    /// The transitive fanin of `root` (inclusive), ascending by gate id.
    /// `scratch` carries the visited marks; one per calling thread.
    pub fn transitive_fanin(&self, root: GateId, scratch: &mut Scratch) -> Vec<GateId> {
        self.reachable(root, scratch, |g| self.csr.fanins(g))
    }

    /// The transitive fanout of `root` (inclusive), ascending by gate id.
    /// `scratch` carries the visited marks; one per calling thread.
    pub fn transitive_fanout(&self, root: GateId, scratch: &mut Scratch) -> Vec<GateId> {
        self.reachable(root, scratch, |g| self.csr.fanouts(g))
    }

    fn reachable<'a, F>(&'a self, root: GateId, scratch: &mut Scratch, next: F) -> Vec<GateId>
    where
        F: Fn(GateId) -> &'a [GateId],
    {
        scratch.clear(self.csr.num_gates());
        let mut out = vec![root];
        scratch.mark(root.index());
        let mut head = 0;
        while head < out.len() {
            let g = out[head];
            head += 1;
            for &n in next(g) {
                if scratch.mark(n.index()) {
                    out.push(n);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cones;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    /// g1=AND(a,b) → g2=AND(g1,c) → g4=AND(g2,g3); g3=OR(c,d) is also a PO.
    fn diamond() -> (Netlist, [GateId; 4]) {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("d", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let d = n.add_primary_input("d");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), c]);
        let g3 = n.add_gate("g3", or2, &[c, d]);
        let g4 = n.add_gate("g4", and2, &[n.gate_output(g2), n.gate_output(g3)]);
        n.set_primary_output(n.gate_output(g4));
        n.set_primary_output(n.gate_output(g3));
        (n, [g1, g2, g3, g4])
    }

    #[test]
    fn ffc_matches_naive_on_diamond() {
        let (n, gates) = diamond();
        let eng = AnalysisEngine::new(&n).unwrap();
        for g in gates {
            assert_eq!(eng.ffc_of(g), cones::ffc_of(&n, g), "root {g}");
            assert_eq!(eng.ffc_len(g), cones::ffc_of(&n, g).len());
        }
    }

    #[test]
    fn ffc_covers_dangling_region() {
        // x feeds only a dangling gate (no PO, no sinks): naive semantics
        // say FFC(dangling) = {x, dangling} and x is in no other cone.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("dang", lib);
        let a = n.add_primary_input("a");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let x = n.add_gate("x", inv, &[a]);
        let dangling = n.add_gate("dangling", inv, &[n.gate_output(x)]);
        let other = n.add_gate("other", inv, &[a]);
        n.set_primary_output(n.gate_output(other));
        let eng = AnalysisEngine::new(&n).unwrap();
        for g in [x, dangling, other] {
            assert_eq!(eng.ffc_of(g), cones::ffc_of(&n, g), "root {g}");
        }
        assert_eq!(eng.ffc_of(dangling), vec![x, dangling]);
    }

    #[test]
    fn feeds_only_and_fanins_match_naive() {
        let (n, gates) = diamond();
        let eng = AnalysisEngine::new(&n).unwrap();
        let mut scratch = Scratch::default();
        for &g in &gates {
            for &p in &gates {
                assert_eq!(eng.feeds_only(g, p), cones::feeds_only(&n, g, p));
            }
            let mut naive: Vec<GateId> = cones::transitive_fanin(&n, g).into_iter().collect();
            naive.sort_unstable();
            assert_eq!(eng.transitive_fanin(g, &mut scratch), naive);
        }
    }

    #[test]
    fn transitive_fanout_is_inverse_of_fanin() {
        let (n, gates) = diamond();
        let eng = AnalysisEngine::new(&n).unwrap();
        let mut scratch = Scratch::default();
        for &a in &gates {
            for &b in &gates {
                let in_fanin = eng.transitive_fanin(b, &mut scratch).contains(&a);
                let in_fanout = eng.transitive_fanout(a, &mut scratch).contains(&b);
                assert_eq!(in_fanin, in_fanout, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn parallel_chunks_is_ordered_and_complete() {
        for threads in [1, 2, 3, 8, 100] {
            let chunks = parallel_chunks(10, threads, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..10).collect::<Vec<_>>(), "threads={threads}");
        }
        assert_eq!(parallel_chunks(0, 4, |r| r.len()), vec![0]);
    }

    #[test]
    fn cancellable_chunks_complete_when_token_is_quiet() {
        let token = CancelToken::new();
        for threads in [1, 2, 3, 8] {
            let chunks =
                parallel_chunks_cancellable(1000, threads, &token, |r| r.collect::<Vec<usize>>())
                    .expect("quiet token must complete");
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "threads={threads}");
        }
        // Zero-length sweeps produce zero work units.
        assert_eq!(
            parallel_chunks_cancellable(0, 4, &token, |r| r.len()),
            Some(vec![])
        );
    }

    #[test]
    fn fired_token_stops_the_sweep() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            assert_eq!(
                parallel_chunks_cancellable(100_000, threads, &token, |r| r.len()),
                None,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mid_sweep_cancel_returns_none() {
        use std::sync::atomic::AtomicUsize;
        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        // Fire the token from inside the work function after a few
        // granules: the sweep must abandon the rest and report None.
        let result = parallel_chunks_cancellable(100_000, 2, &token, |r| {
            if calls.fetch_add(1, Ordering::Relaxed) == 3 {
                token.cancel();
            }
            r.len()
        });
        assert_eq!(result, None);
        assert!(
            (calls.load(Ordering::Relaxed) * super::CANCEL_GRANULE) < 100_000,
            "cancellation should cut the sweep short"
        );
    }

    #[test]
    fn thread_override_wins() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }
}
