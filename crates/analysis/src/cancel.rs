//! Cooperative cancellation for long-running analyses.
//!
//! The workspace runs CPU-bound sweeps (simulation, SAT, cone analysis)
//! on plain scoped threads; nothing can pre-empt them. Robust batch
//! operation therefore needs a *cooperative* protocol: every loop that
//! can run for more than a few milliseconds periodically polls a shared
//! [`CancelToken`] and winds down early when it has fired.
//!
//! A token fires for either of two reasons:
//!
//! * someone called [`CancelToken::cancel`] (operator abort, a sibling
//!   job failing fast, process shutdown), or
//! * its **deadline** passed — tokens can carry a wall-clock deadline so
//!   per-job time limits are enforced by the workers themselves instead
//!   of by an unkillable watchdog.
//!
//! The cancel *flag* is shared by all clones and children of a token;
//! the *deadline* is per handle, so a stage can run under a tighter
//! deadline ([`CancelToken::bounded_by`]) without its expiry aborting
//! the surrounding job.
//!
//! The contract (documented in DESIGN.md §10): holders poll
//! [`CancelToken::is_cancelled`] at least once per bounded unit of work —
//! a simulation sub-batch, a SAT attempt, one gate sweep — and return
//! through their normal "budget exhausted" path. Cancellation is
//! best-effort and monotonic: once fired, a flag never un-fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, clonable cancellation flag with an optional deadline.
///
/// Clones share the flag: cancelling any clone cancels them all. The
/// token with no deadline ([`CancelToken::new`]) never fires on its own
/// and is cheap enough to thread through paths that rarely cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// `Some` when this handle self-fires at a wall-clock instant.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that fires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally self-fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A token that self-fires after `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Fires the shared flag (idempotent; visible to all clones and
    /// [`bounded_by`](CancelToken::bounded_by) children).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once this handle has fired — via the shared flag or this
    /// handle's deadline. A deadline expiry does **not** raise the shared
    /// flag, so a stage-scoped child timing out leaves its parent live.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline this handle self-fires at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A handle on the shared cancel flag itself, for arming components
    /// that poll a raw `AtomicBool` (e.g. a SAT solver interrupt). The
    /// flag does **not** reflect this handle's deadline — pass
    /// [`CancelToken::deadline`] alongside where deadline enforcement is
    /// needed.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// A child handle sharing this token's cancel flag, with its deadline
    /// tightened to the earlier of this handle's and `other` — how a
    /// stage-level time limit composes with a job-level token.
    pub fn bounded_by(&self, other: Option<Instant>) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: match (self.deadline, other) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones_and_monotonic() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
        // Never un-fires.
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn bounded_child_takes_the_earlier_deadline() {
        let now = Instant::now();
        let a = now + Duration::from_secs(1);
        let b = now + Duration::from_secs(2);
        let t = CancelToken::with_deadline(a);
        assert_eq!(t.bounded_by(Some(b)).deadline(), Some(a));
        assert_eq!(t.bounded_by(None).deadline(), Some(a));
        let u = CancelToken::new();
        assert_eq!(u.bounded_by(Some(b)).deadline(), Some(b));
        assert_eq!(u.bounded_by(None).deadline(), None);
    }

    #[test]
    fn child_deadline_expiry_does_not_cancel_the_parent() {
        let parent = CancelToken::new();
        let child = parent.bounded_by(Some(Instant::now() - Duration::from_millis(1)));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        // The flag still propagates parent -> child and child -> parent.
        child.cancel();
        assert!(parent.is_cancelled());
    }
}
