//! Design analysis: timing, area, power, cones and ODC conditions.
//!
//! The paper measures fingerprinting impact as relative *area*, *delay* and
//! *power* overheads (Tables II/III) and locates fingerprint sites through
//! *fanout-free cones* and *observability don't care* conditions
//! (Definition 1). This crate provides all four analyses over
//! [`odcfp_netlist::Netlist`]:
//!
//! * [`sta`] — static timing analysis: arrival/required times, slack, the
//!   critical path, and the circuit delay;
//! * [`area`] — cell-area accounting;
//! * [`power`] — switching-activity dynamic power estimation from seeded
//!   bit-parallel random simulation;
//! * [`cones`] — maximum fanout-free cone (FFC) computation;
//! * [`odc`] — local ODC conditions of library gates and trigger-candidate
//!   enumeration;
//! * [`DesignMetrics`] — the (area, delay, power) triple and overhead
//!   percentages between a base design and a fingerprinted copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod cancel;
pub mod cones;
pub mod engine;
mod metrics;
pub mod odc;
pub mod power;
pub mod sta;

pub use cancel::CancelToken;
pub use engine::AnalysisEngine;
pub use metrics::{DesignMetrics, OverheadReport};
