//! Combined (area, delay, power) metrics and overhead reporting.

use std::fmt;

use odcfp_netlist::Netlist;

use crate::{area, power, sta};

/// The default number of 64-bit pattern words used for power estimation.
pub const DEFAULT_POWER_WORDS: usize = 64;

/// The default simulation seed for power estimation.
pub const DEFAULT_POWER_SEED: u64 = 0xD0C5;

/// The (area, delay, power) triple the paper's tables report per circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Total cell area (λ²-like units).
    pub area: f64,
    /// Circuit delay (ns-like units).
    pub delay: f64,
    /// Dynamic power estimate (arbitrary consistent units).
    pub power: f64,
}

impl DesignMetrics {
    /// Measures a validated netlist with the default power-simulation
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic (validate first).
    pub fn measure(netlist: &Netlist) -> Self {
        Self::measure_with(netlist, DEFAULT_POWER_WORDS, DEFAULT_POWER_SEED)
    }

    /// Measures with explicit power-simulation parameters.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic or `power_words == 0`.
    pub fn measure_with(netlist: &Netlist, power_words: usize, power_seed: u64) -> Self {
        let timing = sta::analyze(netlist).expect("cyclic netlist");
        DesignMetrics {
            area: area::total_area(netlist),
            delay: timing.max_delay(),
            power: power::estimate_power(netlist, power_words, power_seed).total(),
        }
    }

    /// The relative overhead of `self` versus a `base` design.
    pub fn overhead_vs(&self, base: &DesignMetrics) -> OverheadReport {
        let pct = |new: f64, old: f64| {
            if old == 0.0 {
                0.0
            } else {
                (new - old) / old * 100.0
            }
        };
        OverheadReport {
            area_pct: pct(self.area, base.area),
            delay_pct: pct(self.delay, base.delay),
            power_pct: pct(self.power, base.power),
        }
    }
}

impl fmt::Display for DesignMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.0}, delay {:.2}, power {:.1}",
            self.area, self.delay, self.power
        )
    }
}

/// Percentage overheads of a fingerprinted design versus its base — the
/// paper's Table II columns 8–10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Area increase in percent.
    pub area_pct: f64,
    /// Delay increase in percent.
    pub delay_pct: f64,
    /// Power increase in percent.
    pub power_pct: f64,
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:+.2}%, delay {:+.2}%, power {:+.2}%",
            self.area_pct, self.delay_pct, self.power_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    fn small() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("m", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let g = n.add_gate("g", nand2, &[a, b]);
        n.set_primary_output(n.gate_output(g));
        n
    }

    #[test]
    fn measure_is_deterministic() {
        let n = small();
        assert_eq!(DesignMetrics::measure(&n), DesignMetrics::measure(&n));
    }

    #[test]
    fn overhead_math() {
        let base = DesignMetrics {
            area: 100.0,
            delay: 10.0,
            power: 50.0,
        };
        let modified = DesignMetrics {
            area: 110.0,
            delay: 15.0,
            power: 45.0,
        };
        let o = modified.overhead_vs(&base);
        assert!((o.area_pct - 10.0).abs() < 1e-9);
        assert!((o.delay_pct - 50.0).abs() < 1e-9);
        assert!((o.power_pct + 10.0).abs() < 1e-9);
        let shown = o.to_string();
        assert!(shown.contains("+10.00%"));
        assert!(shown.contains("-10.00%"));
    }

    #[test]
    fn zero_base_guarded() {
        let zero = DesignMetrics {
            area: 0.0,
            delay: 0.0,
            power: 0.0,
        };
        let o = zero.overhead_vs(&zero);
        assert_eq!(o.area_pct, 0.0);
    }
}
