//! Switching-activity dynamic power estimation.
//!
//! The estimate follows the SIS-era methodology the paper's power numbers
//! come from: simulate the circuit on random vectors, measure each net's
//! toggle density, and charge every toggle with the capacitance the net
//! drives:
//!
//! ```text
//! P ∝ Σ_nets activity(net) · C(net),
//! C(net) = Σ sink-pin input capacitances (+ 1 wire-load unit)
//! ```
//!
//! Absolute units are arbitrary but consistent, which is all the paper's
//! *relative* power-overhead metric needs.

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::sim;
use odcfp_netlist::Netlist;

/// Global scale factor mapping activity·capacitance to the reported power
/// unit (chosen so the benchmark circuits land in the same magnitude range
/// as the paper's tables).
const POWER_SCALE: f64 = 100.0;

/// Per-pattern wire-load capacitance added to every driven net.
const WIRE_CAP: f64 = 1.0;

/// The result of [`estimate_power`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    total: f64,
    per_net: Vec<f64>,
}

impl PowerReport {
    /// Total dynamic power estimate.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The contribution of one net (indexed by [`odcfp_netlist::NetId::index`]).
    pub fn per_net(&self) -> &[f64] {
        &self.per_net
    }
}

/// Estimates dynamic power from `num_words * 64` seeded random input
/// vectors.
///
/// Deterministic for a fixed `(netlist, num_words, seed)` triple.
///
/// # Panics
///
/// Panics if the netlist is invalid (validate first) or `num_words == 0`.
pub fn estimate_power(netlist: &Netlist, num_words: usize, seed: u64) -> PowerReport {
    assert!(num_words > 0, "at least one pattern word required");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns: Vec<Vec<u64>> = (0..netlist.primary_inputs().len())
        .map(|_| sim::random_words(&mut rng, num_words))
        .collect();
    let values = netlist.simulate(&patterns);
    let total_steps = (num_words * 64 - 1) as f64;
    let mut per_net = vec![0.0f64; netlist.num_nets()];
    let mut total = 0.0;
    for (id, net) in netlist.nets() {
        if net.fanout() == 0 {
            continue;
        }
        let toggles = sim::toggle_count(&values[id.index()]) as f64;
        let activity = toggles / total_steps;
        let cap: f64 = WIRE_CAP
            + net
                .sinks()
                .iter()
                .map(|p| {
                    let cell = netlist.gate(p.gate).cell();
                    netlist.library().cell(cell).input_cap()
                })
                .sum::<f64>();
        let p = POWER_SCALE * activity * cap;
        per_net[id.index()] = p;
        total += p;
    }
    PowerReport { total, per_net }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    fn xor_tree(depth: usize) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("xt", lib);
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let mut level: Vec<_> = (0..(1 << depth))
            .map(|i| n.add_primary_input(format!("x{i}")))
            .collect();
        let mut k = 0;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let g = n.add_gate(format!("g{k}"), xor2, &[pair[0], pair[1]]);
                k += 1;
                next.push(n.gate_output(g));
            }
            level = next;
        }
        n.set_primary_output(level[0]);
        n
    }

    #[test]
    fn deterministic_for_seed() {
        let n = xor_tree(3);
        let a = estimate_power(&n, 8, 42);
        let b = estimate_power(&n, 8, 42);
        assert_eq!(a, b);
        let c = estimate_power(&n, 8, 43);
        assert_ne!(a.total(), c.total());
    }

    #[test]
    fn more_gates_more_power() {
        let small = xor_tree(2);
        let big = xor_tree(4);
        assert!(
            estimate_power(&big, 8, 1).total() > estimate_power(&small, 8, 1).total()
        );
    }

    #[test]
    fn constant_nets_burn_nothing() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("quiet", lib);
        let a = n.add_primary_input("a");
        let one = n.add_constant("one", true);
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g = n.add_gate("g", and2, &[a, one]);
        n.set_primary_output(n.gate_output(g));
        let report = estimate_power(&n, 8, 7);
        assert_eq!(report.per_net()[one.index()], 0.0);
        assert!(report.per_net()[a.index()] > 0.0);
        assert!(report.total() > 0.0);
    }

    #[test]
    fn per_net_vector_covers_all_nets() {
        let n = xor_tree(2);
        let report = estimate_power(&n, 4, 1);
        assert_eq!(report.per_net().len(), n.num_nets());
        let sum: f64 = report.per_net().iter().sum();
        assert!((sum - report.total()).abs() < 1e-9);
    }

    #[test]
    fn undriven_fanout_free_nets_skipped() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("po", lib);
        let a = n.add_primary_input("a");
        let unused = n.add_primary_input("unused");
        n.set_primary_output(a);
        let report = estimate_power(&n, 4, 3);
        assert_eq!(report.per_net()[unused.index()], 0.0);
    }
}
