//! Local Observability Don't Care analysis of library gates.
//!
//! Equation (1) of the paper defines the ODC of an input `x` of a function
//! `F` as `ODC_x = (∂F/∂x)'`. For the standard-cell functions this has a
//! simple closed form: an input of an AND/NAND (resp. OR/NOR) gate is
//! unobservable exactly when some *other* input carries the controlling
//! value 0 (resp. 1). XOR-family gates have empty ODCs — every input is
//! always observable — and single-input gates trivially so.
//!
//! This module provides both views: the closed-form *trigger candidates*
//! used by the fingerprint-location search, and the exact truth-table ODC
//! used to cross-validate them.

use odcfp_logic::{PrimitiveFn, TruthTable};
use odcfp_netlist::{GateId, Netlist};

/// One way to activate the ODC of a target pin: drive `pin` to `value`.
///
/// In the paper's terms, the signal on `pin` is an **ODC trigger signal**
/// (Definition 2) for the target pin, active at `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerCandidate {
    /// The pin carrying the trigger signal.
    pub pin: usize,
    /// The controlling value that activates the ODC.
    pub value: bool,
}

/// The trigger candidates that make `target_pin` of an `arity`-input gate
/// with function `f` unobservable.
///
/// Empty when the gate has no controlling value (XOR/XNOR/BUF/INV) or only
/// one input.
pub fn trigger_candidates(f: PrimitiveFn, arity: usize, target_pin: usize) -> Vec<TriggerCandidate> {
    let mut out = Vec::new();
    trigger_candidates_into(f, arity, target_pin, &mut out);
    out
}

/// [`trigger_candidates`] into a caller-owned buffer (cleared first), for
/// hot loops that probe every pin of every gate.
pub fn trigger_candidates_into(
    f: PrimitiveFn,
    arity: usize,
    target_pin: usize,
    out: &mut Vec<TriggerCandidate>,
) {
    assert!(target_pin < arity, "pin out of range");
    out.clear();
    if let Some(value) = f.controlling_value() {
        if arity >= 2 {
            out.extend(
                (0..arity)
                    .filter(|&p| p != target_pin)
                    .map(|pin| TriggerCandidate { pin, value }),
            );
        }
    }
}

/// The exact ODC condition of `target_pin` as a truth table over the gate's
/// `arity` inputs (equation (1) applied to the cell function).
pub fn local_odc(f: PrimitiveFn, arity: usize, target_pin: usize) -> TruthTable {
    f.truth_table(arity).odc(target_pin)
}

/// True if this gate instance can *create* ODCs, i.e. it has a controlling
/// value and at least two inputs — the paper's "Table I" gate set.
pub fn is_odc_gate(netlist: &Netlist, gate: GateId) -> bool {
    let g = netlist.gate(gate);
    let cell = netlist.library().cell(g.cell());
    cell.function().has_nonzero_odc(cell.arity())
}

/// True if this gate is a single-input gate (BUF/INV) — eligible for
/// modification inside an FFC under Definition 1, criterion 3.
pub fn is_single_input_gate(netlist: &Netlist, gate: GateId) -> bool {
    netlist.gate_fn(gate).is_single_input()
}

/// Simulation-measured observability of a net: the fraction of
/// `num_words * 64` seeded random input vectors on which *toggling the
/// net's value* changes at least one primary output.
///
/// This is the global ground truth the local (per-gate) ODC conditions
/// approximate: `1 - observability` is the measured don't-care density.
/// Used to cross-validate the closed-form trigger conditions and to study
/// how much observability the local window analysis leaves on the table.
///
/// # Panics
///
/// Panics if the netlist is invalid or `num_words == 0`.
pub fn simulated_observability(
    netlist: &Netlist,
    net: odcfp_netlist::NetId,
    num_words: usize,
    seed: u64,
) -> f64 {
    simulated_observability_many(netlist, &[net], num_words, seed)[0]
}

/// Batched [`simulated_observability`]: one result per entry of `nets`, in
/// order. The random patterns, baseline simulation, and topological order
/// are computed once and shared; the per-net flip propagation fans out
/// across [`engine::configured_threads`](crate::engine::configured_threads)
/// workers with a deterministic merge, so each entry is bit-identical to
/// the corresponding standalone call at any thread count.
///
/// # Panics
///
/// Panics if the netlist is invalid or `num_words == 0`.
pub fn simulated_observability_many(
    netlist: &Netlist,
    nets: &[odcfp_netlist::NetId],
    num_words: usize,
    seed: u64,
) -> Vec<f64> {
    use odcfp_logic::rng::Xoshiro256;
    use odcfp_logic::sim;

    assert!(num_words > 0, "at least one pattern word required");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns: Vec<Vec<u64>> = (0..netlist.primary_inputs().len())
        .map(|_| sim::random_words(&mut rng, num_words))
        .collect();
    let baseline = netlist.simulate(&patterns);
    let order = netlist.topo_order().expect("validated netlist");

    let threads = crate::engine::configured_threads();
    let chunks = crate::engine::parallel_chunks(nets.len(), threads, |range| {
        range
            .map(|i| observability_of_flip(netlist, &order, &baseline, nets[i], num_words))
            .collect::<Vec<f64>>()
    });
    chunks.into_iter().flatten().collect()
}

/// Propagates a flip of `net` through the downstream cone and returns the
/// fraction of pattern bits on which some primary output differs.
fn observability_of_flip(
    netlist: &Netlist,
    order: &[odcfp_netlist::GateId],
    baseline: &[Vec<u64>],
    net: odcfp_netlist::NetId,
    num_words: usize,
) -> f64 {
    // Re-simulate the downstream cone with the net's value flipped: walk
    // gates in topological order, recomputing only values that can change.
    let mut flipped: Vec<Vec<u64>> = baseline.to_vec();
    for word in &mut flipped[net.index()] {
        *word = !*word;
    }
    let mut dirty = vec![false; netlist.num_nets()];
    dirty[net.index()] = true;
    let mut scratch: Vec<u64> = Vec::new();
    for &g in order {
        let gate = netlist.gate(g);
        if !gate.inputs().iter().any(|i| dirty[i.index()]) {
            continue;
        }
        // The driver of the observed net keeps driving its original value
        // in the baseline; the flip is injected *at the net*, so the
        // net's own driver output must not be recomputed.
        if gate.output() == net {
            continue;
        }
        let f = netlist.library().cell(gate.cell()).function();
        let out = gate.output().index();
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // flipped is indexed on two axes
        for w in 0..num_words {
            scratch.clear();
            scratch.extend(gate.inputs().iter().map(|i| flipped[i.index()][w]));
            let v = f.eval_words(&scratch);
            if v != flipped[out][w] {
                changed = true;
            }
            flipped[out][w] = v;
        }
        if changed {
            dirty[out] = true;
        }
    }

    let mut observable = 0u64;
    let mut any = vec![0u64; num_words];
    for &po in netlist.primary_outputs() {
        for w in 0..num_words {
            any[w] |= baseline[po.index()][w] ^ flipped[po.index()][w];
        }
    }
    for w in any {
        observable += u64::from(w.count_ones());
    }
    observable as f64 / (num_words * 64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_match_truth_table_odc() {
        // For every library-style function/arity/pin, the union over
        // candidates of "pin == value" must equal the exact ODC.
        for f in [
            PrimitiveFn::And,
            PrimitiveFn::Or,
            PrimitiveFn::Nand,
            PrimitiveFn::Nor,
            PrimitiveFn::Xor,
            PrimitiveFn::Xnor,
        ] {
            for arity in 2..=4usize {
                if matches!(f, PrimitiveFn::Xor | PrimitiveFn::Xnor) && arity > 2 {
                    continue;
                }
                for pin in 0..arity {
                    let exact = local_odc(f, arity, pin);
                    let cands = trigger_candidates(f, arity, pin);
                    let mut union = TruthTable::zero(arity);
                    for c in &cands {
                        let v = TruthTable::var(c.pin, arity);
                        let cond = if c.value { v } else { !&v };
                        union = &union | &cond;
                    }
                    assert_eq!(union, exact, "{f} arity {arity} pin {pin}");
                }
            }
        }
    }

    #[test]
    fn xor_has_no_candidates() {
        assert!(trigger_candidates(PrimitiveFn::Xor, 2, 0).is_empty());
        assert!(trigger_candidates(PrimitiveFn::Xnor, 2, 1).is_empty());
    }

    #[test]
    fn and3_candidates() {
        let c = trigger_candidates(PrimitiveFn::And, 3, 1);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&TriggerCandidate { pin: 0, value: false }));
        assert!(c.contains(&TriggerCandidate { pin: 2, value: false }));
    }

    #[test]
    fn nor_candidates_use_one() {
        let c = trigger_candidates(PrimitiveFn::Nor, 2, 0);
        assert_eq!(c, vec![TriggerCandidate { pin: 1, value: true }]);
    }

    #[test]
    fn simulated_observability_matches_local_odc_on_single_gate() {
        use odcfp_netlist::CellLibrary;
        // F = AND(x, y): x is observable exactly when y = 1, i.e. on half
        // the random vectors.
        let lib = CellLibrary::standard();
        let mut n = odcfp_netlist::Netlist::new("obs", lib);
        let x = n.add_primary_input("x");
        let y = n.add_primary_input("y");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g = n.add_gate("g", and2, &[x, y]);
        n.set_primary_output(n.gate_output(g));
        let obs = simulated_observability(&n, x, 64, 7);
        assert!((obs - 0.5).abs() < 0.05, "got {obs}");
        // The output net itself is always observable.
        let out = n.gate_output(g);
        assert_eq!(simulated_observability(&n, out, 16, 7), 1.0);
    }

    #[test]
    fn xor_chain_fully_observable() {
        use odcfp_netlist::CellLibrary;
        let lib = CellLibrary::standard();
        let mut n = odcfp_netlist::Netlist::new("xc", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let g1 = n.add_gate("g1", xor2, &[a, b]);
        let g2 = n.add_gate("g2", xor2, &[n.gate_output(g1), c]);
        n.set_primary_output(n.gate_output(g2));
        for net in [a, b, c, n.gate_output(g1)] {
            assert_eq!(simulated_observability(&n, net, 8, 3), 1.0);
        }
    }

    #[test]
    fn deeply_blocked_net_has_low_observability() {
        use odcfp_netlist::CellLibrary;
        // x blocked behind two AND stages: observable only when y=z=1
        // (a quarter of vectors).
        let lib = CellLibrary::standard();
        let mut n = odcfp_netlist::Netlist::new("blk", lib);
        let x = n.add_primary_input("x");
        let y = n.add_primary_input("y");
        let z = n.add_primary_input("z");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[x, y]);
        let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), z]);
        n.set_primary_output(n.gate_output(g2));
        let obs = simulated_observability(&n, x, 64, 11);
        assert!((obs - 0.25).abs() < 0.05, "got {obs}");
    }

    #[test]
    fn gate_classification() {
        use odcfp_netlist::CellLibrary;
        let lib = CellLibrary::standard();
        let mut n = odcfp_netlist::Netlist::new("t", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g_and = n.add_gate("ga", and2, &[a, b]);
        let g_xor = n.add_gate("gx", xor2, &[a, b]);
        let g_inv = n.add_gate("gi", inv, &[a]);
        n.set_primary_output(n.gate_output(g_and));
        n.set_primary_output(n.gate_output(g_xor));
        n.set_primary_output(n.gate_output(g_inv));
        assert!(is_odc_gate(&n, g_and));
        assert!(!is_odc_gate(&n, g_xor));
        assert!(!is_odc_gate(&n, g_inv));
        assert!(is_single_input_gate(&n, g_inv));
        assert!(!is_single_input_gate(&n, g_and));
    }
}
