//! Fanout-free cone (FFC) computation.
//!
//! Definition 1 of the paper requires the primary gate to have "at least one
//! input which is the output signal of a fanout free cone (FFC), which means
//! that this signal only goes into the primary gate". The *maximum* FFC
//! rooted at a gate `r` is the largest set of gates containing `r` such that
//! every gate in the set other than `r` fans out only to gates inside the
//! set. Changes confined to an FFC are invisible everywhere except through
//! the root's output — criterion 2's safety property.
//!
//! These are the straightforward per-query reference implementations; the
//! batched, precomputed equivalents live in [`crate::engine`], which the
//! hot paths use. Property tests assert the two agree.

use odcfp_netlist::{GateId, NetDriver, Netlist};

/// Computes the maximum fanout-free cone rooted at `root`, returned in
/// topological order ending with `root`.
///
/// The root is always a member. A fanin gate joins the cone iff its output
/// is not a primary output and *all* of its sinks are already in the cone.
///
/// # Panics
///
/// Panics if the netlist is cyclic (validate first).
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
/// use odcfp_logic::PrimitiveFn;
/// use odcfp_analysis::cones::ffc_of;
///
/// // a, b -> AND(g1); g1, c -> AND(g2). g1 feeds only g2, so FFC(g2) = {g1, g2}.
/// let lib = CellLibrary::standard();
/// let mut n = Netlist::new("ffc", lib);
/// let a = n.add_primary_input("a");
/// let b = n.add_primary_input("b");
/// let c = n.add_primary_input("c");
/// let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
/// let g1 = n.add_gate("g1", and2, &[a, b]);
/// let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), c]);
/// n.set_primary_output(n.gate_output(g2));
/// assert_eq!(ffc_of(&n, g2), vec![g1, g2]);
/// ```
pub fn ffc_of(netlist: &Netlist, root: GateId) -> Vec<GateId> {
    // Work over the transitive fanin of `root` in reverse topological order:
    // a gate's membership only depends on gates closer to the root.
    let order = netlist.topo_order().expect("cyclic netlist");
    let mut in_fanin = vec![false; netlist.num_gates()];
    for g in transitive_fanin(netlist, root) {
        in_fanin[g.index()] = true;
    }
    let mut member = vec![false; netlist.num_gates()];
    member[root.index()] = true;
    let mut cone: Vec<GateId> = vec![root];
    for &g in order.iter().rev() {
        if g == root || !in_fanin[g.index()] {
            continue;
        }
        let out = netlist.net(netlist.gate(g).output());
        if out.is_primary_output() {
            continue;
        }
        let all_inside = out.sinks().iter().all(|p| member[p.gate.index()]);
        if all_inside && out.fanout() > 0 {
            member[g.index()] = true;
            cone.push(g);
        }
    }
    cone.reverse();
    cone
}

/// The gates in the transitive fanin of `root`, including `root`, ascending
/// by gate id.
pub fn transitive_fanin(netlist: &Netlist, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; netlist.num_gates()];
    seen[root.index()] = true;
    let mut out = vec![root];
    let mut head = 0;
    while head < out.len() {
        let g = out[head];
        head += 1;
        for &i in netlist.gate(g).inputs() {
            if let NetDriver::Gate(src) = netlist.net(i).driver() {
                if !seen[src.index()] {
                    seen[src.index()] = true;
                    out.push(src);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// True if the gate's output feeds exactly one gate input and is not a
/// primary output — the "only goes into the primary gate" condition of
/// Definition 1, criterion 2.
pub fn feeds_only(netlist: &Netlist, gate: GateId, primary: GateId) -> bool {
    let out = netlist.net(netlist.gate(gate).output());
    !out.is_primary_output()
        && out.sinks().len() == 1
        && out.sinks()[0].gate == primary
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    /// Builds:
    ///   g1 = AND(a, b)       (feeds g2 only)
    ///   g2 = AND(g1, c)      (feeds g4 only)
    ///   g3 = OR(c, d)        (feeds g4 AND is a PO -> not in any FFC)
    ///   g4 = AND(g2, g3)     (root)
    fn diamond() -> (Netlist, [GateId; 4]) {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("d", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let d = n.add_primary_input("d");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", and2, &[n.gate_output(g1), c]);
        let g3 = n.add_gate("g3", or2, &[c, d]);
        let g4 = n.add_gate("g4", and2, &[n.gate_output(g2), n.gate_output(g3)]);
        n.set_primary_output(n.gate_output(g4));
        n.set_primary_output(n.gate_output(g3));
        (n, [g1, g2, g3, g4])
    }

    #[test]
    fn ffc_excludes_po_gates() {
        let (n, [g1, g2, g3, g4]) = diamond();
        let cone = ffc_of(&n, g4);
        assert!(cone.contains(&g1));
        assert!(cone.contains(&g2));
        assert!(cone.contains(&g4));
        assert!(!cone.contains(&g3), "PO gate must stay out of the cone");
        assert_eq!(*cone.last().unwrap(), g4, "root last in topo order");
    }

    #[test]
    fn ffc_of_leaf_is_self() {
        let (n, [g1, ..]) = diamond();
        assert_eq!(ffc_of(&n, g1), vec![g1]);
    }

    #[test]
    fn shared_fanout_blocks_membership() {
        // g1 feeds both g2 and g3 -> g1 not in FFC(g2).
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("s", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", inv, &[n.gate_output(g1)]);
        let g3 = n.add_gate("g3", inv, &[n.gate_output(g1)]);
        n.set_primary_output(n.gate_output(g2));
        n.set_primary_output(n.gate_output(g3));
        assert_eq!(ffc_of(&n, g2), vec![g2]);
        assert_eq!(ffc_of(&n, g3), vec![g3]);
    }

    #[test]
    fn chain_cone_is_whole_chain() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("c", lib);
        let a = n.add_primary_input("a");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let mut cur = a;
        let mut ids = Vec::new();
        for i in 0..5 {
            let g = n.add_gate(format!("i{i}"), inv, &[cur]);
            ids.push(g);
            cur = n.gate_output(g);
        }
        n.set_primary_output(cur);
        let cone = ffc_of(&n, ids[4]);
        assert_eq!(cone, ids);
    }

    #[test]
    fn transitive_fanin_contents() {
        let (n, [g1, g2, g3, g4]) = diamond();
        let fi = transitive_fanin(&n, g4);
        assert_eq!(fi.len(), 4);
        for g in [g1, g2, g3, g4] {
            assert!(fi.contains(&g));
        }
        let fi2 = transitive_fanin(&n, g2);
        assert!(fi2.contains(&g1) && fi2.contains(&g2) && !fi2.contains(&g3));
    }

    #[test]
    fn feeds_only_checks() {
        let (n, [g1, g2, g3, g4]) = diamond();
        assert!(feeds_only(&n, g1, g2));
        assert!(!feeds_only(&n, g1, g4));
        assert!(!feeds_only(&n, g3, g4), "PO net fails the condition");
        assert!(feeds_only(&n, g2, g4));
    }
}
