//! Static timing analysis.
//!
//! The delay model is the `genlib` one the cell library is characterized
//! for: a gate's propagation delay is its cell's intrinsic delay plus a load
//! term proportional to the fanout of its output net
//! ([`odcfp_netlist::Cell::delay`]). Primary inputs arrive at time 0.

use odcfp_netlist::{GateId, NetDriver, Netlist, NetlistError};

/// The result of [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    arrival: Vec<f64>,
    required: Vec<f64>,
    delay: Vec<f64>,
    critical_path: Vec<GateId>,
    max_delay: f64,
}

impl TimingAnalysis {
    /// The circuit delay: the latest primary-output arrival time.
    pub fn max_delay(&self) -> f64 {
        self.max_delay
    }

    /// The arrival time at a gate's output.
    pub fn arrival(&self, gate: GateId) -> f64 {
        self.arrival[gate.index()]
    }

    /// The required time at a gate's output (w.r.t. the circuit delay).
    pub fn required(&self, gate: GateId) -> f64 {
        self.required[gate.index()]
    }

    /// The slack of a gate: `required - arrival`; ≥ 0 everywhere, 0 on the
    /// critical path.
    pub fn slack(&self, gate: GateId) -> f64 {
        self.required[gate.index()] - self.arrival[gate.index()]
    }

    /// The propagation delay assigned to a gate (intrinsic + load).
    pub fn gate_delay(&self, gate: GateId) -> f64 {
        self.delay[gate.index()]
    }

    /// One critical path, from a depth-1 gate to the latest primary output.
    pub fn critical_path(&self) -> &[GateId] {
        &self.critical_path
    }

    /// Renders a human-readable timing report: the circuit delay and the
    /// critical path with per-stage arrival times (the `report_timing`
    /// format of commercial STA tools, abridged).
    ///
    /// `netlist` must be the design this analysis was computed from.
    pub fn report(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "circuit delay: {:.3}", self.max_delay);
        let _ = writeln!(out, "critical path ({} stages):", self.critical_path.len());
        for &g in &self.critical_path {
            let gate = netlist.gate(g);
            let cell = netlist.library().cell(gate.cell());
            let _ = writeln!(
                out,
                "  {:<20} {:<8} delay {:>6.3}  arrival {:>8.3}  slack {:>7.3}",
                gate.name(),
                cell.name(),
                self.gate_delay(g),
                self.arrival(g),
                self.slack(g)
            );
        }
        out
    }
}

/// Runs static timing analysis over a validated netlist.
///
/// # Errors
///
/// Returns an error if the netlist contains a combinational cycle.
pub fn analyze(netlist: &Netlist) -> Result<TimingAnalysis, NetlistError> {
    let order = netlist.topo_order()?;
    let n = netlist.num_gates();
    let mut arrival = vec![0.0f64; n];
    let mut delay = vec![0.0f64; n];

    for &g in &order {
        let gate = netlist.gate(g);
        let cell = netlist.library().cell(gate.cell());
        let fanout = netlist.net(gate.output()).fanout();
        let d = cell.delay(fanout);
        delay[g.index()] = d;
        let input_arrival = gate
            .inputs()
            .iter()
            .map(|&i| match netlist.net(i).driver() {
                NetDriver::Gate(src) => arrival[src.index()],
                _ => 0.0,
            })
            .fold(0.0f64, f64::max);
        arrival[g.index()] = input_arrival + d;
    }

    // Circuit delay over primary outputs.
    let mut max_delay = 0.0f64;
    let mut latest: Option<GateId> = None;
    for &po in netlist.primary_outputs() {
        if let NetDriver::Gate(src) = netlist.net(po).driver() {
            if arrival[src.index()] >= max_delay {
                max_delay = arrival[src.index()];
                latest = Some(src);
            }
        }
    }

    // Required times, backward.
    let mut required = vec![f64::INFINITY; n];
    for &po in netlist.primary_outputs() {
        if let NetDriver::Gate(src) = netlist.net(po).driver() {
            required[src.index()] = max_delay;
        }
    }
    for &g in order.iter().rev() {
        let gate = netlist.gate(g);
        for p in netlist.net(gate.output()).sinks() {
            let sink = p.gate;
            let r = required[sink.index()] - delay[sink.index()];
            if r < required[g.index()] {
                required[g.index()] = r;
            }
        }
        if required[g.index()].is_infinite() {
            // Dangling gate (drives nothing observable): give it full slack.
            required[g.index()] = max_delay;
        }
    }

    // Trace one critical path backward from the latest PO driver.
    let mut critical_path = Vec::new();
    if let Some(mut g) = latest {
        loop {
            critical_path.push(g);
            let gate = netlist.gate(g);
            let pred = gate
                .inputs()
                .iter()
                .filter_map(|&i| match netlist.net(i).driver() {
                    NetDriver::Gate(src) => Some(src),
                    _ => None,
                })
                .max_by(|a, b| {
                    arrival[a.index()]
                        .partial_cmp(&arrival[b.index()])
                        .expect("arrival times are finite")
                });
            match pred {
                Some(p) => g = p,
                None => break,
            }
        }
        critical_path.reverse();
    }

    Ok(TimingAnalysis {
        arrival,
        required,
        delay,
        critical_path,
        max_delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    /// A chain a -> INV -> INV -> ... -> po, plus a short side branch.
    fn chain(n_invs: usize) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("chain", lib);
        let a = n.add_primary_input("a");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let mut cur = a;
        for i in 0..n_invs {
            let g = n.add_gate(format!("i{i}"), inv, &[cur]);
            cur = n.gate_output(g);
        }
        n.set_primary_output(cur);
        n
    }

    #[test]
    fn chain_delay_adds_up() {
        let n = chain(4);
        let t = analyze(&n).unwrap();
        let lib = n.library();
        let inv = lib.cell(lib.cell_for(PrimitiveFn::Inv, 1).unwrap());
        let per_stage = inv.delay(1);
        assert!((t.max_delay() - 4.0 * per_stage).abs() < 1e-9);
        assert_eq!(t.critical_path().len(), 4);
        for &g in t.critical_path() {
            assert!(t.slack(g).abs() < 1e-9, "critical path has zero slack");
        }
    }

    #[test]
    fn report_lists_critical_path() {
        let n = chain(3);
        let t = analyze(&n).unwrap();
        let rep = t.report(&n);
        assert!(rep.contains("circuit delay"));
        assert!(rep.contains("3 stages"));
        assert!(rep.contains("i0"));
        assert!(rep.contains("INV"));
        // Zero slack along the path.
        assert!(rep.matches("slack   0.000").count() >= 3, "{rep}");
    }

    #[test]
    fn slack_positive_off_critical_path() {
        // Two parallel paths of different lengths reconverging at an AND.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("reconv", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let i1 = n.add_gate("i1", inv, &[a]);
        let i2 = n.add_gate("i2", inv, &[n.gate_output(i1)]);
        let i3 = n.add_gate("i3", inv, &[n.gate_output(i2)]);
        let short = n.add_gate("short", inv, &[b]);
        let top = n.add_gate(
            "top",
            and2,
            &[n.gate_output(i3), n.gate_output(short)],
        );
        n.set_primary_output(n.gate_output(top));
        let t = analyze(&n).unwrap();
        let short_gate = n.gate_by_name("short").unwrap();
        assert!(t.slack(short_gate) > 0.0);
        let i1g = n.gate_by_name("i1").unwrap();
        assert!(t.slack(i1g).abs() < 1e-9);
        assert!(t.required(short_gate) >= t.arrival(short_gate));
    }

    #[test]
    fn fanout_increases_delay() {
        // One inverter driving k sinks is slower than driving one.
        let build = |k: usize| {
            let lib = CellLibrary::standard();
            let mut n = Netlist::new("fan", lib);
            let a = n.add_primary_input("a");
            let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
            let driver = n.add_gate("driver", inv, &[a]);
            let out = n.gate_output(driver);
            for i in 0..k {
                let g = n.add_gate(format!("s{i}"), inv, &[out]);
                n.set_primary_output(n.gate_output(g));
            }
            analyze(&n).unwrap().max_delay()
        };
        assert!(build(4) > build(1));
    }

    #[test]
    fn empty_netlist_zero_delay() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("empty", lib);
        let a = n.add_primary_input("a");
        n.set_primary_output(a);
        let t = analyze(&n).unwrap();
        assert_eq!(t.max_delay(), 0.0);
        assert!(t.critical_path().is_empty());
    }

    #[test]
    fn dangling_gate_gets_full_slack() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("dangle", lib);
        let a = n.add_primary_input("a");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let keep = n.add_gate("keep", inv, &[a]);
        let keep2 = n.add_gate("keep2", inv, &[n.gate_output(keep)]);
        n.set_primary_output(n.gate_output(keep2));
        let dangle = n.add_gate("dangle", inv, &[a]);
        let t = analyze(&n).unwrap();
        assert!(t.slack(dangle) > 0.0);
    }
}
