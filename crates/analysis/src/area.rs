//! Cell-area accounting.

use odcfp_netlist::Netlist;

/// The total cell area of the netlist (sum of instantiated cell areas, in
/// the library's λ²-like units). Wiring area is not modelled — consistent
/// with the paper's ABC-reported areas.
pub fn total_area(netlist: &Netlist) -> f64 {
    netlist
        .gates()
        .map(|(_, g)| netlist.library().cell(g.cell()).area())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::{CellLibrary, Netlist};

    #[test]
    fn sums_cell_areas() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("a", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g1 = n.add_gate("g1", nand2, &[a, b]);
        let g2 = n.add_gate("g2", inv, &[n.gate_output(g1)]);
        n.set_primary_output(n.gate_output(g2));
        let expect = n.library().cell(nand2).area() + n.library().cell(inv).area();
        assert!((total_area(&n) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let lib = CellLibrary::standard();
        let n = Netlist::new("z", lib);
        assert_eq!(total_area(&n), 0.0);
    }
}
