//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! Offline builds of this workspace cannot download crates, so this
//! vendored crate implements exactly the API surface the `odcfp-bench`
//! benchmarks use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! warm-up plus median-of-samples wall-clock measurement — good enough to
//! compare runs on one machine, with no statistics beyond that.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);
/// Warm-up time before measuring.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// The top-level benchmark driver handed to every registered function.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags the real criterion accepts (e.g. `--bench`) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median iteration time.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    parent: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        run_one(&full, self.sample_size, self.parent.filter.as_deref(), f);
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`: warm-up, then `sample_size` timed samples (each sample
    /// runs enough iterations to be timeable).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut iters_per_sample: u32 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET || iters_per_sample == 0 {
            std::hint::black_box(f());
            iters_per_sample += 1;
            if iters_per_sample >= 1_000_000 {
                break;
            }
        }
        // Aim for sample_size samples inside the measurement budget.
        let per_iter = warm_start.elapsed() / iters_per_sample;
        let budget_per_sample = MEASURE_BUDGET / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            iters_per_sample.max(1)
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, filter: Option<&str>, mut f: F) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<40} median {:>12?}  (min {min:?}, max {max:?}, {} samples)",
        median,
        b.samples.len()
    );
}

/// Registers benchmark functions under a group name, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut ran = 0u64;
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_filters() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("nomatch".into()),
        };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.sample_size(2).bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(!ran, "filtered-out benchmarks must not run");
    }
}
