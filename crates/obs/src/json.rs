//! A minimal, tolerant JSON parser for reading traces back.
//!
//! Zero dependencies by design (the workspace builds offline). The
//! parser accepts one JSON value per call; any syntax error — including
//! a line torn mid-write by `SIGKILL` — yields `None` rather than a
//! panic or error type, which is exactly the degradation mode the trace
//! reader wants: skip the line, count it, carry on.
//!
//! Integers without fraction or exponent parse as [`Json::Int`] so that
//! `u64` sequence numbers and microsecond timestamps survive exactly;
//! everything else numeric becomes [`Json::Float`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal (no fraction/exponent) that fits in `i64`.
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
    /// String literal, unescaped.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

/// Parse a complete JSON value from `input`.
///
/// Returns `None` on any syntax error or on trailing non-whitespace.
pub fn parse(input: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(value)
    } else {
        None
    }
}

/// Nesting beyond this depth is rejected (stack-overflow guard; trace
/// events are at most two levels deep).
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.bytes.get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => self.string().map(Json::Str),
            b't' => {
                self.expect_literal("true")?;
                Some(Json::Bool(true))
            }
            b'f' => {
                self.expect_literal("false")?;
                Some(Json::Bool(false))
            }
            b'n' => {
                self.expect_literal("null")?;
                Some(Json::Null)
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{');
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.eat(b'}') {
            return Some(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Some(Json::Obj(pairs));
            }
            return None;
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[');
        self.skip_ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            return None;
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            self.expect_literal("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return None;
                            }
                            let code =
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)?
                        } else {
                            char::from_u32(hi)?
                        };
                        out.push(c);
                    }
                    _ => return None,
                },
                // Multi-byte UTF-8: the input is a &str, so continuation
                // bytes are valid; copy the raw byte run.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(nb) if nb >= 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
                b if b < 0x20 => return None,
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump()? {
                b @ b'0'..=b'9' => u32::from(b - b'0'),
                b @ b'a'..=b'f' => u32::from(b - b'a') + 10,
                b @ b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return None,
            };
            v = (v << 4) | d;
        }
        Some(v)
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        self.eat(b'-');
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return None;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return None;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return None;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Some(Json::Int(v));
            }
        }
        text.parse::<f64>().ok().map(Json::Float)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Some(Json::Null));
        assert_eq!(parse("true"), Some(Json::Bool(true)));
        assert_eq!(parse("-42"), Some(Json::Int(-42)));
        assert_eq!(parse("9007199254740993"), Some(Json::Int(9007199254740993)));
        assert_eq!(parse("1.5"), Some(Json::Float(1.5)));
        assert_eq!(parse("2e3"), Some(Json::Float(2000.0)));
        assert_eq!(parse("\"hi\\nthere\""), Some(Json::Str("hi\nthere".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,{\"b\":false}],\"c\":\"x\"}").expect("valid");
        let Json::Obj(pairs) = v else { panic!("object") };
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], ("c".to_owned(), Json::Str("x".into())));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\""), Some(Json::Str("A".into())));
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\""),
            Some(Json::Str("\u{1F600}".into()))
        );
        // Lone high surrogate is rejected, not panicked on.
        assert_eq!(parse("\"\\ud83d\""), None);
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\""), Some(Json::Str("héllo".into())));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\"",
            "{\"a\":}",
            "[1,",
            "\"unterminated",
            "01x",
            "nul",
            "{\"a\":1}trailing",
            "1.",
            "--1",
        ] {
            assert_eq!(parse(bad), None, "input {bad:?} should be rejected");
        }
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep), None);
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_some());
    }
}
