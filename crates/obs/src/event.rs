//! The trace event model and its canonical JSONL serialization.
//!
//! Every record in a trace is one [`Event`]. Serialization uses a fixed
//! key order and no whitespace so that identical payloads produce
//! byte-identical lines; parsing (via [`Event::from_json_line`]) ignores
//! unknown keys so old readers tolerate newer traces.

use crate::json::Json;

/// Trace schema identifier written by sinks and checked by readers.
///
/// Bump the suffix when the serialized shape changes incompatibly.
pub const SCHEMA: &str = "odcfp-trace/1";

/// What sort of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A closed lexical scope with duration and self-time attribution.
    Span,
    /// A monotonically accumulating counter increment.
    Count,
    /// An instantaneous structured fact (verdict, lifecycle marker, ...).
    Point,
}

impl Kind {
    /// Canonical lower-case name used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Span => "span",
            Kind::Count => "count",
            Kind::Point => "point",
        }
    }

    /// Parse a wire name back into a [`Kind`].
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "span" => Some(Kind::Span),
            "count" => Some(Kind::Count),
            "point" => Some(Kind::Point),
            _ => None,
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (verdict names, reasons, paths).
    Str(String),
    /// Floating point. Avoid in `det` events: only integers have a
    /// canonical wire form that is trivially bit-stable.
    F64(f64),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
            Value::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest round-trip form; stable for
                    // equal inputs.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
        }
    }

    fn from_json(j: &Json) -> Option<Value> {
        match j {
            Json::Int(v) => Some(if *v >= 0 {
                Value::U64(*v as u64)
            } else {
                Value::I64(*v)
            }),
            Json::Float(v) => Some(Value::F64(*v)),
            Json::Bool(v) => Some(Value::Bool(*v)),
            Json::Str(s) => Some(Value::Str(s.clone())),
            Json::Null => None,
            Json::Arr(_) | Json::Obj(_) => None,
        }
    }
}

/// One trace record.
///
/// `seq` and `t_us` are assigned by the sink at emission time; everything
/// else is supplied by the instrumentation site. Events flagged `det`
/// form the *payload*: their kind, name and fields must be bit-identical
/// across runs at any thread count (see [`Event::payload_line`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission sequence number, unique and increasing within a trace.
    pub seq: u64,
    /// Microseconds since the sink was installed (monotonic clock).
    pub t_us: u64,
    /// Record kind.
    pub kind: Kind,
    /// Dotted event name, e.g. `verify.sat` or `campaign.job.outcome`.
    pub name: String,
    /// Whether this event participates in the deterministic payload.
    pub det: bool,
    /// Span wall-clock duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Span self time: duration minus enclosed child spans (spans only).
    pub self_us: Option<u64>,
    /// Typed fields in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Construct an event with zeroed sequencing (filled in by the sink).
    pub fn new(kind: Kind, name: &str, det: bool) -> Event {
        Event {
            seq: 0,
            t_us: 0,
            kind,
            name: name.to_owned(),
            det,
            dur_us: None,
            self_us: None,
            fields: Vec::new(),
        }
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Field as `u64` if present and unsigned.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Field as `&str` if present and a string.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Serialize to one canonical JSON line (no trailing newline).
    ///
    /// Key order is fixed: `seq`, `t_us`, `kind`, `name`, `det`,
    /// `dur_us`, `self_us`, `fields`; absent optionals are omitted, as is
    /// an empty field map.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        write_json_string(&self.name, &mut out);
        out.push_str(",\"det\":");
        out.push_str(if self.det { "true" } else { "false" });
        if let Some(d) = self.dur_us {
            out.push_str(",\"dur_us\":");
            out.push_str(&d.to_string());
        }
        if let Some(s) = self.self_us {
            out.push_str(",\"self_us\":");
            out.push_str(&s.to_string());
        }
        self.write_fields(&mut out);
        out.push('}');
        out
    }

    /// The deterministic payload projection: kind, name and fields only.
    ///
    /// Two traces of the same work agree line-for-line on the payload
    /// projection of their `det` events regardless of thread count,
    /// timing, or interleaved non-deterministic events.
    pub fn payload_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        write_json_string(&self.name, &mut out);
        self.write_fields(&mut out);
        out.push('}');
        out
    }

    fn write_fields(&self, out: &mut String) {
        if self.fields.is_empty() {
            return;
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }

    /// Parse one JSONL line back into an [`Event`].
    ///
    /// Tolerant by design: unknown object keys are ignored (forward
    /// compatibility), and `None` is returned for torn or non-object
    /// lines rather than an error.
    pub fn from_json_line(line: &str) -> Option<Event> {
        let json = crate::json::parse(line)?;
        let obj = match &json {
            Json::Obj(pairs) => pairs,
            _ => return None,
        };
        let mut ev = Event::new(Kind::Point, "", false);
        let mut saw_kind = false;
        let mut saw_name = false;
        for (key, val) in obj {
            match (key.as_str(), val) {
                ("seq", Json::Int(v)) if *v >= 0 => ev.seq = *v as u64,
                ("t_us", Json::Int(v)) if *v >= 0 => ev.t_us = *v as u64,
                ("kind", Json::Str(s)) => {
                    ev.kind = Kind::parse(s)?;
                    saw_kind = true;
                }
                ("name", Json::Str(s)) => {
                    ev.name = s.clone();
                    saw_name = true;
                }
                ("det", Json::Bool(b)) => ev.det = *b,
                ("dur_us", Json::Int(v)) if *v >= 0 => ev.dur_us = Some(*v as u64),
                ("self_us", Json::Int(v)) if *v >= 0 => ev.self_us = Some(*v as u64),
                ("fields", Json::Obj(pairs)) => {
                    for (fk, fv) in pairs {
                        if let Some(value) = Value::from_json(fv) {
                            ev.fields.push((fk.clone(), value));
                        }
                    }
                }
                // Unknown or mistyped keys: skip, never fail.
                _ => {}
            }
        }
        if saw_kind && saw_name {
            Some(ev)
        } else {
            None
        }
    }
}

/// Write `s` as a JSON string literal (with escaping) into `out`.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let mut ev = Event::new(Kind::Span, "verify.sat", false);
        ev.seq = 42;
        ev.t_us = 1_000_001;
        ev.dur_us = Some(530);
        ev.self_us = Some(120);
        ev.fields.push(("verdict".into(), Value::Str("proven".into())));
        ev.fields.push(("conflicts".into(), Value::U64(17)));
        ev.fields.push(("delta".into(), Value::I64(-3)));
        ev.fields.push(("capped".into(), Value::Bool(true)));
        let line = ev.to_json_line();
        let back = Event::from_json_line(&line).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn golden_wire_format() {
        // The exact serialized bytes are a compatibility contract: the
        // payload-determinism differential and the kill-and-resume CI
        // assertion both compare these strings byte-for-byte.
        let mut ev = Event::new(Kind::Count, "sat.conflicts", true);
        ev.seq = 7;
        ev.t_us = 99;
        ev.fields.push(("v".into(), Value::U64(1234)));
        assert_eq!(
            ev.to_json_line(),
            "{\"seq\":7,\"t_us\":99,\"kind\":\"count\",\"name\":\"sat.conflicts\",\
             \"det\":true,\"fields\":{\"v\":1234}}"
        );
        assert_eq!(
            ev.payload_line(),
            "{\"kind\":\"count\",\"name\":\"sat.conflicts\",\"fields\":{\"v\":1234}}"
        );
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let line = "{\"seq\":1,\"t_us\":2,\"kind\":\"point\",\"name\":\"x\",\"det\":true,\
                    \"future_key\":[1,2,{\"nested\":true}],\"fields\":{\"a\":1,\"b\":null}}";
        let ev = Event::from_json_line(line).expect("tolerant parse");
        assert_eq!(ev.name, "x");
        assert_eq!(ev.kind, Kind::Point);
        // `b: null` has no Value mapping and is dropped; `a` survives.
        assert_eq!(ev.fields, vec![("a".to_owned(), Value::U64(1))]);
    }

    #[test]
    fn torn_and_garbage_lines_yield_none() {
        assert!(Event::from_json_line("").is_none());
        assert!(Event::from_json_line("{\"seq\":1,\"t_us\":2,\"kind\":\"sp").is_none());
        assert!(Event::from_json_line("not json at all").is_none());
        assert!(Event::from_json_line("[1,2,3]").is_none());
        // An object missing kind/name is structurally valid JSON but not
        // an event.
        assert!(Event::from_json_line("{\"seq\":1}").is_none());
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut ev = Event::new(Kind::Point, "odd\"name\\with\ncontrol\u{1}", true);
        ev.fields
            .push(("msg".into(), Value::Str("panicked at 'boom\t'".into())));
        let back = Event::from_json_line(&ev.to_json_line()).expect("parses");
        assert_eq!(back.name, ev.name);
        assert_eq!(back.fields, ev.fields);
    }
}
