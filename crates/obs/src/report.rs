//! Trace reading and summarization: the engine behind `odcfp report
//! <trace.jsonl>` and the bench bins' stage breakdowns.
//!
//! Reading is tolerant end to end: lines that fail to parse (torn by a
//! kill, truncated by a full disk, written by a future schema) are
//! counted and skipped, never fatal. An empty or fully torn trace
//! produces an empty [`TraceData`] and a summary that says so.

use std::collections::BTreeMap;
use std::path::Path;

use crate::event::{Event, Kind};

/// A parsed trace plus bookkeeping about what could not be parsed.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Successfully parsed events, in file order.
    pub events: Vec<Event>,
    /// Count of non-empty lines that failed to parse as events.
    pub skipped_lines: usize,
}

/// Read a JSONL trace file from disk.
///
/// I/O errors (missing file, permissions) are returned; malformed
/// *content* never is — bad lines are skipped and counted.
pub fn read_trace(path: &Path) -> std::io::Result<TraceData> {
    // Lossy decode: a write torn mid-way through a multi-byte UTF-8
    // sequence (SIGKILL, full disk) must degrade to one skipped line,
    // not fail the whole read the way `read_to_string` would.
    let bytes = std::fs::read(path)?;
    Ok(parse_trace(&String::from_utf8_lossy(&bytes)))
}

/// Parse trace text (one JSON event per line, tolerant of bad lines).
pub fn parse_trace(text: &str) -> TraceData {
    let mut data = TraceData::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Some(ev) => data.events.push(ev),
            None => data.skipped_lines += 1,
        }
    }
    data
}

/// Project a trace onto its deterministic payload: one canonical line
/// per `det` event, in emission order, timestamps and durations
/// stripped.
///
/// Two runs of the same work — at any thread count, interrupted and
/// resumed or not — must produce identical projections for the
/// replay-stable subset of events; the differential tests compare
/// exactly this.
pub fn payload_lines(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.det)
        .map(Event::payload_line)
        .collect()
}

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    dur_us: u64,
    self_us: u64,
}

/// Render a human-readable summary of a trace.
///
/// Sections (each omitted when empty): header with event/skip counts,
/// top spans by aggregate self time, counter totals, verdict and
/// fast-path histograms, and campaign job outcomes.
pub fn summarize(trace: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} events ({} unparseable line{} skipped)\n",
        trace.events.len(),
        trace.skipped_lines,
        if trace.skipped_lines == 1 { "" } else { "s" },
    ));
    if trace.events.is_empty() {
        out.push_str("warning: no events — trace is empty or entirely torn\n");
        return out;
    }
    if let (Some(first), Some(last)) = (trace.events.first(), trace.events.last()) {
        out.push_str(&format!(
            "wall clock: {:.3} ms (t_us {}..{})\n",
            ms(last.t_us.saturating_sub(first.t_us)),
            first.t_us,
            last.t_us
        ));
    }

    // Spans, aggregated by name, ranked by total self time.
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind != Kind::Span {
            continue;
        }
        let agg = spans.entry(&ev.name).or_default();
        agg.count += 1;
        agg.dur_us += ev.dur_us.unwrap_or(0);
        agg.self_us += ev.self_us.unwrap_or(0);
    }
    if !spans.is_empty() {
        let mut rows: Vec<(&str, SpanAgg)> = spans.into_iter().collect();
        rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        let name_w = rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        out.push_str("\nspans (by self time):\n");
        out.push_str(&format!(
            "  {:<name_w$}  {:>7}  {:>12}  {:>12}  {:>12}\n",
            "span", "count", "total ms", "self ms", "mean ms"
        ));
        for (name, agg) in &rows {
            out.push_str(&format!(
                "  {:<name_w$}  {:>7}  {:>12.3}  {:>12.3}  {:>12.3}\n",
                name,
                agg.count,
                ms(agg.dur_us),
                ms(agg.self_us),
                ms(agg.dur_us) / agg.count as f64,
            ));
        }
    }

    // Counter totals.
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind == Kind::Count {
            *counters.entry(&ev.name).or_default() += ev.field_u64("v").unwrap_or(0);
        }
    }
    if !counters.is_empty() {
        out.push_str("\ncounters:\n");
        let name_w = counters.keys().map(|n| n.len()).max().unwrap_or(4);
        for (name, total) in &counters {
            out.push_str(&format!("  {name:<name_w$}  {total}\n"));
        }
    }

    // Histogram of a point event over one string field.
    let histogram = |event_name: &str, field: &str| -> Vec<(String, u64)> {
        let mut h: BTreeMap<&str, u64> = BTreeMap::new();
        for ev in &trace.events {
            if ev.kind == Kind::Point && ev.name == event_name {
                if let Some(v) = ev.field_str(field) {
                    *h.entry(v).or_default() += 1;
                }
            }
        }
        h.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    };

    let verdicts = histogram("verify.verdict", "verdict");
    if !verdicts.is_empty() {
        let total: u64 = verdicts.iter().map(|(_, n)| n).sum();
        out.push_str(&format!("\nverify verdicts ({total} checks):\n"));
        for (v, n) in &verdicts {
            out.push_str(&format!("  {v:<20}  {n}\n"));
        }
    }

    let reasons = histogram("verify.fastpath", "reason");
    if !reasons.is_empty() {
        let total: u64 = reasons.iter().map(|(_, n)| n).sum();
        // "Hit" = the sweep settled it without a cold whole-circuit
        // miter; the reason names come from the verify fast path.
        let hits: u64 = reasons
            .iter()
            .filter(|(r, _)| matches!(r.as_str(), "strash" | "cutpoint" | "sat" | "refuted"))
            .map(|(_, n)| n)
            .sum();
        out.push_str(&format!(
            "\nfast path: {hits}/{total} hits ({:.1}%)\n",
            100.0 * hits as f64 / total as f64
        ));
        for (r, n) in &reasons {
            out.push_str(&format!("  {r:<20}  {n}\n"));
        }
    }

    let outcomes = histogram("campaign.job.outcome", "verdict");
    if !outcomes.is_empty() {
        let total: u64 = outcomes.iter().map(|(_, n)| n).sum();
        out.push_str(&format!("\ncampaign job outcomes ({total} jobs):\n"));
        for (v, n) in &outcomes {
            out.push_str(&format!("  {v:<20}  {n}\n"));
        }
    }
    let quarantined = trace
        .events
        .iter()
        .filter(|e| e.kind == Kind::Point && e.name == "campaign.quarantine")
        .count();
    if quarantined > 0 {
        out.push_str(&format!("quarantined jobs: {quarantined}\n"));
        for ev in &trace.events {
            if ev.name == "campaign.quarantine" {
                let job = ev.field_str("job").unwrap_or("?");
                let diag = ev.field_str("diagnostic").unwrap_or("");
                out.push_str(&format!("  {job}: {diag}\n"));
            }
        }
    }
    out
}

/// Convenience: total self time in microseconds per span name.
///
/// Used by the bench bins to fold a captured event stream into a stage
/// breakdown without re-implementing aggregation.
pub fn span_self_us(events: &[Event]) -> BTreeMap<String, u64> {
    let mut agg = BTreeMap::new();
    for ev in events {
        if ev.kind == Kind::Span {
            *agg.entry(ev.name.clone()).or_default() += ev.self_us.unwrap_or(0);
        }
    }
    agg
}

/// Convenience: counter totals per name.
pub fn counter_totals(events: &[Event]) -> BTreeMap<String, u64> {
    let mut agg = BTreeMap::new();
    for ev in events {
        if ev.kind == Kind::Count {
            *agg.entry(ev.name.clone()).or_default() += ev.field_u64("v").unwrap_or(0);
        }
    }
    agg
}

/// Convenience: sum of one u64 field over all point events of a name.
pub fn point_field_total(events: &[Event], name: &str, field: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.kind == Kind::Point && e.name == name)
        .filter_map(|e| e.field_u64(field))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Kind, Value};

    fn span_ev(name: &str, dur: u64, slf: u64) -> Event {
        let mut e = Event::new(Kind::Span, name, false);
        e.dur_us = Some(dur);
        e.self_us = Some(slf);
        e
    }

    #[test]
    fn empty_trace_summarizes_with_warning() {
        let data = parse_trace("");
        let s = summarize(&data);
        assert!(s.contains("0 events"));
        assert!(s.contains("warning: no events"));
    }

    #[test]
    fn torn_lines_are_counted_not_fatal() {
        let good = {
            let mut e = Event::new(Kind::Count, "x", true);
            e.fields.push(("v".into(), Value::U64(2)));
            e.to_json_line()
        };
        let text = format!("{good}\n{{\"seq\":9,\"t_us\":1,\"ki\ngarbage line\n{good}\n");
        let data = parse_trace(&text);
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.skipped_lines, 2);
        let s = summarize(&data);
        assert!(s.contains("2 unparseable lines skipped"));
        assert!(s.contains("x  4") || s.contains("x 4"), "counter summed: {s}");
    }

    #[test]
    fn truncated_trace_file_with_torn_utf8_reads_lossily() {
        // A trace killed mid-append can end in a partial line cut
        // inside a multi-byte UTF-8 sequence. `read_trace` must treat
        // that as one skipped line, not an I/O-level failure.
        let good = {
            let mut e = Event::new(Kind::Count, "x", true);
            e.fields.push(("v".into(), Value::U64(7)));
            e.to_json_line()
        };
        let mut bytes = good.clone().into_bytes();
        bytes.push(b'\n');
        // "é" is 0xC3 0xA9; keep only the first byte of it.
        bytes.extend_from_slice(b"{\"seq\":2,\"name\":\"caf\xC3");
        let path = std::env::temp_dir().join("odcfp-obs-torn-trace.jsonl");
        std::fs::write(&path, &bytes).expect("write fixture");
        let data = read_trace(&path).expect("torn content is not an I/O error");
        let _ = std::fs::remove_file(&path);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.skipped_lines, 1);
        assert!(summarize(&data).contains("1 unparseable line skipped"));
    }

    #[test]
    fn payload_projection_filters_and_strips() {
        let mut det = Event::new(Kind::Point, "verify.verdict", true);
        det.seq = 5;
        det.t_us = 123;
        det.fields.push(("verdict".into(), Value::Str("proven".into())));
        let nondet = span_ev("verify.sat", 100, 80);
        let lines = payload_lines(&[nondet, det]);
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"kind\":\"point\",\"name\":\"verify.verdict\",\"fields\":{\"verdict\":\"proven\"}}"
        );
    }

    #[test]
    fn summary_ranks_spans_by_self_time() {
        let data = TraceData {
            events: vec![
                span_ev("cheap", 50, 50),
                span_ev("hot", 1000, 900),
                span_ev("hot", 1000, 900),
                span_ev("wrapper", 3000, 10),
            ],
            skipped_lines: 0,
        };
        let s = summarize(&data);
        let hot = s.find("  hot").expect("hot listed");
        let wrapper = s.find("  wrapper").expect("wrapper listed");
        assert!(hot < wrapper, "self-time ordering:\n{s}");
    }

    #[test]
    fn fastpath_hit_rate_reported() {
        let mk = |reason: &str| {
            let mut e = Event::new(Kind::Point, "verify.fastpath", true);
            e.fields.push(("reason".into(), Value::Str(reason.into())));
            e
        };
        let data = TraceData {
            events: vec![mk("strash"), mk("strash"), mk("cutpoint"), mk("shared_fallback")],
            skipped_lines: 0,
        };
        let s = summarize(&data);
        assert!(s.contains("fast path: 3/4 hits (75.0%)"), "{s}");
    }
}
