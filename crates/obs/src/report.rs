//! Trace reading and summarization: the engine behind `odcfp report
//! <trace.jsonl>` and the bench bins' stage breakdowns.
//!
//! Reading is tolerant end to end: lines that fail to parse (torn by a
//! kill, truncated by a full disk, written by a future schema) are
//! counted and skipped, never fatal. An empty or fully torn trace
//! produces an empty [`TraceData`] and a summary that says so.

use std::collections::BTreeMap;
use std::path::Path;

use crate::event::{Event, Kind};

/// A parsed trace plus bookkeeping about what could not be parsed.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Successfully parsed events, in file order.
    pub events: Vec<Event>,
    /// Count of non-empty lines that failed to parse as events.
    pub skipped_lines: usize,
}

/// Read a JSONL trace file from disk.
///
/// I/O errors (missing file, permissions) are returned; malformed
/// *content* never is — bad lines are skipped and counted.
pub fn read_trace(path: &Path) -> std::io::Result<TraceData> {
    // Lossy decode: a write torn mid-way through a multi-byte UTF-8
    // sequence (SIGKILL, full disk) must degrade to one skipped line,
    // not fail the whole read the way `read_to_string` would.
    let bytes = std::fs::read(path)?;
    Ok(parse_trace(&String::from_utf8_lossy(&bytes)))
}

/// Parse trace text (one JSON event per line, tolerant of bad lines).
pub fn parse_trace(text: &str) -> TraceData {
    let mut data = TraceData::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Some(ev) => data.events.push(ev),
            None => data.skipped_lines += 1,
        }
    }
    data
}

/// Project a trace onto its deterministic payload: one canonical line
/// per `det` event, in emission order, timestamps and durations
/// stripped.
///
/// Two runs of the same work — at any thread count, interrupted and
/// resumed or not — must produce identical projections for the
/// replay-stable subset of events; the differential tests compare
/// exactly this.
pub fn payload_lines(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.det)
        .map(Event::payload_line)
        .collect()
}

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    dur_us: u64,
    self_us: u64,
}

/// Render a human-readable summary of a trace.
///
/// Sections (each omitted when empty): header with event/skip counts,
/// top spans by aggregate self time, counter totals, verdict and
/// fast-path histograms, and campaign job outcomes.
pub fn summarize(trace: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} events ({} unparseable line{} skipped)\n",
        trace.events.len(),
        trace.skipped_lines,
        if trace.skipped_lines == 1 { "" } else { "s" },
    ));
    if trace.events.is_empty() {
        out.push_str("warning: no events — trace is empty or entirely torn\n");
        return out;
    }
    if let (Some(first), Some(last)) = (trace.events.first(), trace.events.last()) {
        out.push_str(&format!(
            "wall clock: {:.3} ms (t_us {}..{})\n",
            ms(last.t_us.saturating_sub(first.t_us)),
            first.t_us,
            last.t_us
        ));
    }

    // Spans, aggregated by name, ranked by total self time.
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind != Kind::Span {
            continue;
        }
        let agg = spans.entry(&ev.name).or_default();
        agg.count += 1;
        agg.dur_us += ev.dur_us.unwrap_or(0);
        agg.self_us += ev.self_us.unwrap_or(0);
    }
    if !spans.is_empty() {
        let mut rows: Vec<(&str, SpanAgg)> = spans.into_iter().collect();
        rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        let name_w = rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        out.push_str("\nspans (by self time):\n");
        out.push_str(&format!(
            "  {:<name_w$}  {:>7}  {:>12}  {:>12}  {:>12}\n",
            "span", "count", "total ms", "self ms", "mean ms"
        ));
        for (name, agg) in &rows {
            out.push_str(&format!(
                "  {:<name_w$}  {:>7}  {:>12.3}  {:>12.3}  {:>12.3}\n",
                name,
                agg.count,
                ms(agg.dur_us),
                ms(agg.self_us),
                ms(agg.dur_us) / agg.count as f64,
            ));
        }
    }

    // Counter totals.
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind == Kind::Count {
            *counters.entry(&ev.name).or_default() += ev.field_u64("v").unwrap_or(0);
        }
    }
    if !counters.is_empty() {
        out.push_str("\ncounters:\n");
        let name_w = counters.keys().map(|n| n.len()).max().unwrap_or(4);
        for (name, total) in &counters {
            out.push_str(&format!("  {name:<name_w$}  {total}\n"));
        }
    }

    // Histogram of a point event over one string field.
    let histogram = |event_name: &str, field: &str| -> Vec<(String, u64)> {
        let mut h: BTreeMap<&str, u64> = BTreeMap::new();
        for ev in &trace.events {
            if ev.kind == Kind::Point && ev.name == event_name {
                if let Some(v) = ev.field_str(field) {
                    *h.entry(v).or_default() += 1;
                }
            }
        }
        h.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    };

    let verdicts = histogram("verify.verdict", "verdict");
    if !verdicts.is_empty() {
        let total: u64 = verdicts.iter().map(|(_, n)| n).sum();
        out.push_str(&format!("\nverify verdicts ({total} checks):\n"));
        for (v, n) in &verdicts {
            out.push_str(&format!("  {v:<20}  {n}\n"));
        }
    }

    let reasons = histogram("verify.fastpath", "reason");
    if !reasons.is_empty() {
        let total: u64 = reasons.iter().map(|(_, n)| n).sum();
        // "Hit" = the sweep settled it without a cold whole-circuit
        // miter; the reason names come from the verify fast path.
        let hits: u64 = reasons
            .iter()
            .filter(|(r, _)| matches!(r.as_str(), "strash" | "cutpoint" | "sat" | "refuted"))
            .map(|(_, n)| n)
            .sum();
        out.push_str(&format!(
            "\nfast path: {hits}/{total} hits ({:.1}%)\n",
            100.0 * hits as f64 / total as f64
        ));
        for (r, n) in &reasons {
            out.push_str(&format!("  {r:<20}  {n}\n"));
        }
    }

    let outcomes = histogram("campaign.job.outcome", "verdict");
    if !outcomes.is_empty() {
        let total: u64 = outcomes.iter().map(|(_, n)| n).sum();
        out.push_str(&format!("\ncampaign job outcomes ({total} jobs):\n"));
        for (v, n) in &outcomes {
            out.push_str(&format!("  {v:<20}  {n}\n"));
        }
    }
    summarize_attack(trace, &mut out);

    let quarantined = trace
        .events
        .iter()
        .filter(|e| e.kind == Kind::Point && e.name == "campaign.quarantine")
        .count();
    if quarantined > 0 {
        out.push_str(&format!("quarantined jobs: {quarantined}\n"));
        for ev in &trace.events {
            if ev.name == "campaign.quarantine" {
                let job = ev.field_str("job").unwrap_or("?");
                let diag = ev.field_str("diagnostic").unwrap_or("");
                out.push_str(&format!("  {job}: {diag}\n"));
            }
        }
    }
    out
}

/// The `attack.*` sections of [`summarize`]: per-pass resynthesis
/// survival, the collusion conviction table, and side-channel
/// detectability. Each is omitted when the trace holds no such events.
fn summarize_attack(trace: &TraceData, out: &mut String) {
    use crate::event::Value;

    // Resynthesis survival histogram, one row per effort level.
    #[derive(Default)]
    struct LevelAgg {
        passes: u64,
        surviving: u64,
        identifiable: u64,
        phantom: u64,
        convicted: u64,
    }
    let mut levels: BTreeMap<&str, LevelAgg> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind != Kind::Point || ev.name != "attack.resynth.survival" {
            continue;
        }
        let level = ev.field_str("level").unwrap_or("?");
        let agg = levels.entry(level).or_default();
        agg.passes += 1;
        agg.surviving += ev.field_u64("surviving").unwrap_or(0);
        agg.identifiable += ev.field_u64("identifiable").unwrap_or(0);
        agg.phantom += ev.field_u64("phantom").unwrap_or(0);
        if matches!(ev.field("victim_convicted"), Some(Value::Bool(true))) {
            agg.convicted += 1;
        }
    }
    if !levels.is_empty() {
        let total_passes: u64 = levels.values().map(|a| a.passes).sum();
        out.push_str(&format!(
            "\nattack resynthesis survival ({total_passes} pass{}):\n",
            if total_passes == 1 { "" } else { "es" }
        ));
        out.push_str(&format!(
            "  {:<8}  {:>6}  {:>12}  {:>9}  {:>8}  {:>9}\n",
            "level", "passes", "surviving", "survival", "phantoms", "convicted"
        ));
        for (level, agg) in &levels {
            let rate = if agg.identifiable == 0 {
                100.0
            } else {
                100.0 * agg.surviving as f64 / agg.identifiable as f64
            };
            out.push_str(&format!(
                "  {:<8}  {:>6}  {:>6}/{:<5}  {:>8.1}%  {:>8}  {:>9}\n",
                level, agg.passes, agg.surviving, agg.identifiable, rate, agg.phantom, agg.convicted
            ));
        }
    }

    // Collusion conviction table, one row per (coalition, strategy) cell.
    #[derive(Default)]
    struct CellAgg {
        cells: u64,
        convicted: u64,
        innocents: u64,
        outcomes: BTreeMap<String, u64>,
    }
    let mut cells: BTreeMap<(u64, String), CellAgg> = BTreeMap::new();
    for ev in &trace.events {
        if ev.kind != Kind::Point || ev.name != "attack.collusion.verdict" {
            continue;
        }
        let n = ev.field_u64("coalition").unwrap_or(0);
        let strategy = ev.field_str("strategy").unwrap_or("?").to_owned();
        let agg = cells.entry((n, strategy)).or_default();
        agg.cells += 1;
        agg.convicted += ev.field_u64("colluders_convicted").unwrap_or(0);
        agg.innocents += ev.field_u64("innocents_accused").unwrap_or(0);
        *agg.outcomes
            .entry(ev.field_str("outcome").unwrap_or("?").to_owned())
            .or_default() += 1;
    }
    if !cells.is_empty() {
        let runs: u64 = cells.values().map(|a| a.cells).sum();
        let framed: u64 = cells.values().map(|a| a.innocents).sum();
        out.push_str(&format!(
            "\nattack collusion verdicts ({runs} cell{}, {framed} innocents accused):\n",
            if runs == 1 { "" } else { "s" }
        ));
        out.push_str(&format!(
            "  {:<4}  {:<10}  {:>9}  {:>9}  outcomes\n",
            "n", "strategy", "convicted", "innocents"
        ));
        for ((n, strategy), agg) in &cells {
            let outcomes: Vec<String> = agg
                .outcomes
                .iter()
                .map(|(o, c)| if *c == 1 { o.clone() } else { format!("{o}×{c}") })
                .collect();
            out.push_str(&format!(
                "  {:<4}  {:<10}  {:>9}  {:>9}  {}\n",
                n,
                strategy,
                agg.convicted,
                agg.innocents,
                outcomes.join(", ")
            ));
        }
    }

    // Side-channel detectability.
    let mut copies = 0u64;
    let mut detectable = 0u64;
    let mut max_ppm = 0u64;
    for ev in &trace.events {
        if ev.kind != Kind::Point || ev.name != "attack.sidechannel.copy" {
            continue;
        }
        copies += 1;
        if matches!(ev.field("detectable"), Some(Value::Bool(true))) {
            detectable += 1;
        }
        max_ppm = max_ppm.max(ev.field_u64("distance_ppm").unwrap_or(0));
    }
    if copies > 0 {
        out.push_str(&format!(
            "\nattack side-channel: {detectable}/{copies} copies detectable \
             (max distance {max_ppm} ppm)\n"
        ));
    }
}

/// Convenience: total self time in microseconds per span name.
///
/// Used by the bench bins to fold a captured event stream into a stage
/// breakdown without re-implementing aggregation.
pub fn span_self_us(events: &[Event]) -> BTreeMap<String, u64> {
    let mut agg = BTreeMap::new();
    for ev in events {
        if ev.kind == Kind::Span {
            *agg.entry(ev.name.clone()).or_default() += ev.self_us.unwrap_or(0);
        }
    }
    agg
}

/// Convenience: counter totals per name.
pub fn counter_totals(events: &[Event]) -> BTreeMap<String, u64> {
    let mut agg = BTreeMap::new();
    for ev in events {
        if ev.kind == Kind::Count {
            *agg.entry(ev.name.clone()).or_default() += ev.field_u64("v").unwrap_or(0);
        }
    }
    agg
}

/// Convenience: sum of one u64 field over all point events of a name.
pub fn point_field_total(events: &[Event], name: &str, field: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.kind == Kind::Point && e.name == name)
        .filter_map(|e| e.field_u64(field))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Kind, Value};

    fn span_ev(name: &str, dur: u64, slf: u64) -> Event {
        let mut e = Event::new(Kind::Span, name, false);
        e.dur_us = Some(dur);
        e.self_us = Some(slf);
        e
    }

    #[test]
    fn empty_trace_summarizes_with_warning() {
        let data = parse_trace("");
        let s = summarize(&data);
        assert!(s.contains("0 events"));
        assert!(s.contains("warning: no events"));
    }

    #[test]
    fn torn_lines_are_counted_not_fatal() {
        let good = {
            let mut e = Event::new(Kind::Count, "x", true);
            e.fields.push(("v".into(), Value::U64(2)));
            e.to_json_line()
        };
        let text = format!("{good}\n{{\"seq\":9,\"t_us\":1,\"ki\ngarbage line\n{good}\n");
        let data = parse_trace(&text);
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.skipped_lines, 2);
        let s = summarize(&data);
        assert!(s.contains("2 unparseable lines skipped"));
        assert!(s.contains("x  4") || s.contains("x 4"), "counter summed: {s}");
    }

    #[test]
    fn truncated_trace_file_with_torn_utf8_reads_lossily() {
        // A trace killed mid-append can end in a partial line cut
        // inside a multi-byte UTF-8 sequence. `read_trace` must treat
        // that as one skipped line, not an I/O-level failure.
        let good = {
            let mut e = Event::new(Kind::Count, "x", true);
            e.fields.push(("v".into(), Value::U64(7)));
            e.to_json_line()
        };
        let mut bytes = good.clone().into_bytes();
        bytes.push(b'\n');
        // "é" is 0xC3 0xA9; keep only the first byte of it.
        bytes.extend_from_slice(b"{\"seq\":2,\"name\":\"caf\xC3");
        let path = std::env::temp_dir().join("odcfp-obs-torn-trace.jsonl");
        std::fs::write(&path, &bytes).expect("write fixture");
        let data = read_trace(&path).expect("torn content is not an I/O error");
        let _ = std::fs::remove_file(&path);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.skipped_lines, 1);
        assert!(summarize(&data).contains("1 unparseable line skipped"));
    }

    #[test]
    fn payload_projection_filters_and_strips() {
        let mut det = Event::new(Kind::Point, "verify.verdict", true);
        det.seq = 5;
        det.t_us = 123;
        det.fields.push(("verdict".into(), Value::Str("proven".into())));
        let nondet = span_ev("verify.sat", 100, 80);
        let lines = payload_lines(&[nondet, det]);
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"kind\":\"point\",\"name\":\"verify.verdict\",\"fields\":{\"verdict\":\"proven\"}}"
        );
    }

    #[test]
    fn summary_ranks_spans_by_self_time() {
        let data = TraceData {
            events: vec![
                span_ev("cheap", 50, 50),
                span_ev("hot", 1000, 900),
                span_ev("hot", 1000, 900),
                span_ev("wrapper", 3000, 10),
            ],
            skipped_lines: 0,
        };
        let s = summarize(&data);
        let hot = s.find("  hot").expect("hot listed");
        let wrapper = s.find("  wrapper").expect("wrapper listed");
        assert!(hot < wrapper, "self-time ordering:\n{s}");
    }

    #[test]
    fn attack_sections_summarize_through_the_lossy_reader() {
        // Fixture: the attack battery's det points, with a line torn
        // mid-write (killed run) between them — the same lossy path PR 6
        // built for campaign journals must carry attack traces too.
        let resynth = |level: &str, surviving: u64, identifiable: u64, convicted: bool| {
            let mut e = Event::new(Kind::Point, "attack.resynth.survival", true);
            e.fields.push(("level".into(), Value::Str(level.into())));
            e.fields.push(("surviving".into(), Value::U64(surviving)));
            e.fields.push(("identifiable".into(), Value::U64(identifiable)));
            e.fields.push(("phantom".into(), Value::U64(0)));
            e.fields.push(("victim_convicted".into(), Value::Bool(convicted)));
            e.to_json_line()
        };
        let collusion = {
            let mut e = Event::new(Kind::Point, "attack.collusion.verdict", true);
            e.fields.push(("coalition".into(), Value::U64(4)));
            e.fields.push(("strategy".into(), Value::Str("random".into())));
            e.fields.push(("outcome".into(), Value::Str("convicted".into())));
            e.fields.push(("colluders_convicted".into(), Value::U64(2)));
            e.fields.push(("innocents_accused".into(), Value::U64(0)));
            e.to_json_line()
        };
        let sidechannel = {
            let mut e = Event::new(Kind::Point, "attack.sidechannel.copy", true);
            e.fields.push(("buyer".into(), Value::U64(0)));
            e.fields.push(("distance_ppm".into(), Value::U64(137)));
            e.fields.push(("detectable".into(), Value::Bool(true)));
            e.to_json_line()
        };
        let text = format!(
            "{}\n{{\"seq\":7,\"t_us\":3,\"name\":\"attack.resy\n{}\n{}\n{}\n",
            resynth("opt", 70, 73, true),
            resynth("remap", 51, 73, false),
            collusion,
            sidechannel,
        );
        let data = parse_trace(&text);
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.skipped_lines, 1, "torn line skipped, not fatal");
        let s = summarize(&data);
        assert!(s.contains("attack resynthesis survival (2 passes)"), "{s}");
        assert!(s.contains("opt"), "{s}");
        assert!(s.contains("95.9%"), "opt row 70/73:\n{s}");
        assert!(s.contains("attack collusion verdicts (1 cell, 0 innocents accused)"), "{s}");
        assert!(s.contains("random"), "{s}");
        assert!(s.contains("attack side-channel: 1/1 copies detectable"), "{s}");
        assert!(s.contains("137 ppm"), "{s}");
    }

    #[test]
    fn fastpath_hit_rate_reported() {
        let mk = |reason: &str| {
            let mut e = Event::new(Kind::Point, "verify.fastpath", true);
            e.fields.push(("reason".into(), Value::Str(reason.into())));
            e
        };
        let data = TraceData {
            events: vec![mk("strash"), mk("strash"), mk("cutpoint"), mk("shared_fallback")],
            skipped_lines: 0,
        };
        let s = summarize(&data);
        assert!(s.contains("fast path: 3/4 hits (75.0%)"), "{s}");
    }
}
