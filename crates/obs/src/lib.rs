//! Structured tracing, per-stage metrics and profiling hooks for the
//! ODC fingerprinting pipeline.
//!
//! This crate is the observability layer threaded through the hot paths
//! of the workspace: the analysis engine, the verification ladder and
//! fast path, and the campaign runner. It is zero-dependency and built
//! around two invariants:
//!
//! 1. **Near-zero overhead when disabled.** Every instrumentation site
//!    first consults [`enabled`], a single relaxed atomic load. With no
//!    sink installed, a span or event costs one predictable branch — no
//!    allocation, no clock read, no lock (guarded by the
//!    `obs_overhead` microbench and `bench_verify --overhead`).
//! 2. **Deterministic payloads.** Events flagged `det` carry only
//!    thread-invariant values and are emitted from deterministic control
//!    points, so the projection of a trace to its `det` events'
//!    `{kind, name, fields}` — see [`Event::payload_line`] — is
//!    bit-identical at any thread count. Timing events (spans, worker
//!    activity) are non-`det` and excluded from the projection.
//!
//! # Emitting
//!
//! ```
//! let (sum, events) = odcfp_obs::capture(|| {
//!     let _span = odcfp_obs::span("demo.work");       // timed scope
//!     odcfp_obs::count("demo.items", 3);              // det counter
//!     odcfp_obs::point("demo.verdict")                // det point
//!         .field("result", "proven")
//!         .emit();
//!     1 + 2
//! })
//! .expect("no other sink installed");
//! assert_eq!(sum, 3);
//! assert_eq!(events.len(), 3); // count, point, then the closing span
//! assert_eq!(events[2].name, "demo.work");
//! ```
//!
//! For production use, install a JSONL sink once near `main` (the CLI
//! does this for `--trace-out` / `ODCFP_TRACE`) and drop the returned
//! [`SinkGuard`] to flush and detach:
//!
//! ```no_run
//! let sink = odcfp_obs::JsonlSink::create(std::path::Path::new("trace.jsonl")).unwrap();
//! let guard = odcfp_obs::install(Box::new(sink)).expect("no sink active");
//! // ... traced work ...
//! drop(guard);
//! ```
//!
//! # Spans and self time
//!
//! [`span`] returns an RAII guard that emits a `Kind::Span` event when
//! dropped, carrying wall-clock `dur_us` and `self_us` = duration minus
//! time spent in child spans *on the same thread* (tracked via a
//! thread-local accumulator). Spans must not be sent across threads;
//! per-worker timing uses one span per worker closure instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod report;
pub mod sink;

use std::cell::Cell;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub use event::{Event, Kind, Value, SCHEMA};
pub use report::{payload_lines, read_trace, summarize, TraceData};
pub use sink::{JsonlSink, MemorySink, Sink};

use std::sync::atomic::{AtomicBool, Ordering};

/// Fast-path gate: true iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct SinkState {
    sink: Box<dyn Sink>,
    seq: u64,
    epoch: Instant,
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

/// Serializes [`capture`] calls so concurrent tests don't fight over the
/// process-global sink.
static CAPTURE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

thread_local! {
    /// Microseconds spent in already-closed child spans of the innermost
    /// open span on this thread (used for self-time attribution).
    static CHILD_US: Cell<u64> = const { Cell::new(0) };
}

/// Whether instrumentation is live. One relaxed atomic load.
///
/// Instrumentation sites with non-trivial field computation should guard
/// on this before doing any work.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Error returned when a sink is already installed.
#[derive(Debug)]
pub struct InstallBusy;

impl std::fmt::Display for InstallBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("an observability sink is already installed in this process")
    }
}

impl std::error::Error for InstallBusy {}

/// Detaches the installed sink (flushing it) when dropped.
#[must_use = "dropping the guard uninstalls the sink"]
pub struct SinkGuard(());

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let mut slot = lock_sink();
        if let Some(state) = slot.as_mut() {
            state.sink.flush();
        }
        *slot = None;
        ENABLED.store(false, Ordering::Relaxed);
    }
}

fn lock_sink() -> MutexGuard<'static, Option<SinkState>> {
    // A panic while holding the lock only interrupts a sink write; the
    // state is still coherent, so recover rather than poison tracing.
    SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Install `sink` as the process-global event destination.
///
/// Fails with [`InstallBusy`] if another sink (including a [`capture`]
/// in progress) is active. The trace clock starts now: `t_us` on events
/// counts from this call.
pub fn install(sink: Box<dyn Sink>) -> Result<SinkGuard, InstallBusy> {
    let mut slot = lock_sink();
    if slot.is_some() {
        return Err(InstallBusy);
    }
    *slot = Some(SinkState {
        sink,
        seq: 0,
        epoch: Instant::now(),
    });
    ENABLED.store(true, Ordering::Relaxed);
    Ok(SinkGuard(()))
}

/// Flush the installed sink, if any.
pub fn flush() {
    if let Some(state) = lock_sink().as_mut() {
        state.sink.flush();
    }
}

/// Run `f` with a temporary in-memory sink and return its events.
///
/// Calls are serialized process-wide, so parallel tests can use this
/// freely; it fails with [`InstallBusy`] only if a *non-capture* sink is
/// already installed (e.g. a CLI trace is active).
pub fn capture<R>(f: impl FnOnce() -> R) -> Result<(R, Vec<Event>), InstallBusy> {
    let lock = CAPTURE_LOCK.get_or_init(|| Mutex::new(()));
    let _serial = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let buf = Arc::new(Mutex::new(Vec::new()));
    let guard = install(Box::new(MemorySink::shared(Arc::clone(&buf))))?;
    let result = f();
    drop(guard);
    let events = match buf.lock() {
        Ok(mut events) => std::mem::take(&mut *events),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    };
    Ok((result, events))
}

/// Install a [`JsonlSink`] at `path`, creating parent directories.
///
/// `append` controls whether an existing trace is extended (used by
/// `campaign --resume`) or truncated.
pub fn install_jsonl(path: &Path, append: bool) -> Result<SinkGuard, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create trace directory {}: {e}", parent.display()))?;
        }
    }
    let sink = if append {
        JsonlSink::append(path)
    } else {
        JsonlSink::create(path)
    }
    .map_err(|e| format!("cannot open trace file {}: {e}", path.display()))?;
    install(Box::new(sink)).map_err(|e| e.to_string())
}

fn emit(mut event: Event) {
    let mut slot = lock_sink();
    if let Some(state) = slot.as_mut() {
        event.seq = state.seq;
        state.seq += 1;
        event.t_us = u64::try_from(state.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.sink.record(&event);
    }
}

/// Builder for a single event; a no-op shell when tracing is disabled.
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder(Option<Event>);

impl EventBuilder {
    /// Attach a typed field. Field order is part of the payload.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> EventBuilder {
        if let Some(ev) = self.0.as_mut() {
            ev.fields.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Mark the event as non-deterministic (excluded from the payload
    /// projection). Use for values that vary with thread count or
    /// timing, e.g. per-worker activity.
    pub fn nondet(mut self) -> EventBuilder {
        if let Some(ev) = self.0.as_mut() {
            ev.det = false;
        }
        self
    }

    /// Record the event through the installed sink.
    pub fn emit(self) {
        if let Some(ev) = self.0 {
            emit(ev);
        }
    }
}

/// Start building a deterministic `Point` event.
///
/// Point events are the backbone of the payload contract: verdicts,
/// fast-path reasons, job outcomes. Call only from deterministic control
/// points with thread-invariant field values, or add [`EventBuilder::nondet`].
#[inline]
pub fn point(name: &str) -> EventBuilder {
    if !enabled() {
        return EventBuilder(None);
    }
    EventBuilder(Some(Event::new(Kind::Point, name, true)))
}

/// Emit a deterministic counter increment: `name` += `value`.
///
/// Counters with equal names are summed by the report; the sequence of
/// increments is itself part of the payload.
#[inline]
pub fn count(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut ev = Event::new(Kind::Count, name, true);
    ev.fields.push(("v".to_owned(), Value::U64(value)));
    emit(ev);
}

/// An RAII timed scope; emits a `Kind::Span` event when dropped.
///
/// Spans are always non-`det` (their durations vary run to run). The
/// thread-local child-time accumulator gives each span a `self_us` =
/// duration minus enclosed child spans, so the report's "top spans by
/// self time" attributes cost to the code that actually spent it.
pub struct Span(Option<SpanInner>);

struct SpanInner {
    name: String,
    start: Instant,
    saved_child_us: u64,
    fields: Vec<(String, Value)>,
}

/// Open a timed span. Inert (no clock read, no allocation) when
/// tracing is disabled.
#[inline]
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span(None);
    }
    let saved_child_us = CHILD_US.with(|c| c.replace(0));
    Span(Some(SpanInner {
        name: name.to_owned(),
        start: Instant::now(),
        saved_child_us,
        fields: Vec::new(),
    }))
}

impl Span {
    /// Attach a field to the span's closing event.
    pub fn field(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(inner) = self.0.as_mut() {
            inner.fields.push((key.to_owned(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let dur_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let child_us = CHILD_US.with(|c| {
            let children = c.get();
            // Credit this span's full duration to the parent's children.
            c.set(inner.saved_child_us.saturating_add(dur_us));
            children
        });
        let mut ev = Event::new(Kind::Span, &inner.name, false);
        ev.dur_us = Some(dur_us);
        ev.self_us = Some(dur_us.saturating_sub(child_us));
        ev.fields = inner.fields;
        emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instrumentation_is_inert() {
        assert!(!enabled());
        let mut s = span("never.recorded");
        s.field("k", 1u64);
        drop(s);
        count("never.counted", 5);
        point("never.pointed").field("a", true).emit();
        // Nothing installed, nothing panicked: that's the contract.
    }

    #[test]
    fn capture_collects_events_in_order() {
        let ((), events) = capture(|| {
            count("a", 1);
            point("b").field("x", 2u64).emit();
            count("a", 3);
        })
        .expect("no sink installed");
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["a", "b", "a"]
        );
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[2].seq, 2);
        assert!(events.iter().all(|e| e.det));
        assert_eq!(events[2].field_u64("v"), Some(3));
    }

    #[test]
    fn span_self_time_excludes_children() {
        let ((), events) = capture(|| {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        })
        .expect("no sink installed");
        // Children close before parents.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        let inner_dur = events[0].dur_us.expect("span has duration");
        let outer_dur = events[1].dur_us.expect("span has duration");
        let outer_self = events[1].self_us.expect("span has self time");
        assert!(outer_dur >= inner_dur);
        assert_eq!(outer_self, outer_dur - inner_dur);
        assert_eq!(events[0].self_us, events[0].dur_us);
        assert!(!events[0].det, "spans are never part of the payload");
    }

    #[test]
    fn sibling_spans_each_charge_the_parent() {
        let ((), events) = capture(|| {
            let _outer = span("outer");
            for _ in 0..2 {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        })
        .expect("no sink installed");
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner_total: u64 = events
            .iter()
            .filter(|e| e.name == "inner")
            .map(|e| e.dur_us.unwrap_or(0))
            .sum();
        let dur = outer.dur_us.expect("duration");
        let slf = outer.self_us.expect("self");
        assert_eq!(slf, dur - inner_total);
    }

    #[test]
    fn install_is_exclusive() {
        let ((), _) = capture(|| {
            assert!(enabled());
            let err = install(Box::new(MemorySink::shared(Arc::new(Mutex::new(Vec::new())))));
            assert!(err.is_err(), "second install must fail");
        })
        .expect("no sink installed");
        assert!(!enabled(), "guard drop disables tracing");
    }

    #[test]
    fn nondet_builder_flag_round_trips() {
        let ((), events) = capture(|| {
            point("worker.activity").field("worker", 3u64).nondet().emit();
        })
        .expect("no sink installed");
        assert!(!events[0].det);
        let line = events[0].to_json_line();
        let back = Event::from_json_line(&line).expect("parses");
        assert!(!back.det);
    }
}
