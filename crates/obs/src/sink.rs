//! Event sinks: where emitted trace events go.
//!
//! [`JsonlSink`] appends canonical JSONL to a file, flushing after every
//! line so a `SIGKILL` mid-campaign leaves at most one torn final line
//! (which the tolerant reader skips). [`MemorySink`] buffers events
//! in-process for tests and for the bench bins' stage breakdowns.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Destination for emitted events.
///
/// Implementations are driven under the global sink lock, so they never
/// see concurrent calls and need no internal synchronization for
/// correctness (only for sharing results out, as [`MemorySink`] does).
pub trait Sink: Send {
    /// Record one event. `seq`/`t_us` are already assigned.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output to its destination.
    fn flush(&mut self);
}

/// Appends events to a JSONL file, one line per event, flushed per line.
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Open `path` for appending (created if missing).
    ///
    /// Append mode means tracing a resumed campaign into the same file
    /// extends the previous trace rather than truncating the evidence of
    /// the interrupted run.
    pub fn append(path: &Path) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
        })
    }

    /// Open `path` truncated: the trace starts empty.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        // Build the full line first so one `write_all` + flush keeps the
        // file line-atomic in practice: a kill can tear only the final
        // line, never interleave two.
        let mut line = event.to_json_line();
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
        let _ = self.writer.flush();
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Buffers events in memory behind a shared handle.
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Create a sink writing into `events`.
    ///
    /// The caller keeps a clone of the `Arc` and reads the buffer after
    /// the sink is uninstalled (see `odcfp_obs::capture`).
    pub fn shared(events: Arc<Mutex<Vec<Event>>>) -> MemorySink {
        MemorySink { events }
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        if let Ok(mut buf) = self.events.lock() {
            buf.push(event.clone());
        }
    }

    fn flush(&mut self) {}
}
