//! Microbenchmark for the disabled-instrumentation cost contract
//! (DESIGN.md §12): with no sink installed, every `odcfp-obs` call site
//! must collapse to one relaxed atomic load and a branch. These numbers
//! back the `bench_verify --overhead` CI guard; run them when touching
//! the hot-path macros or the `enabled()` gate.

use criterion::{criterion_group, criterion_main, Criterion};

fn disabled_paths(c: &mut Criterion) {
    assert!(
        !odcfp_obs::enabled(),
        "the overhead benchmark must run without a sink installed"
    );
    let mut g = c.benchmark_group("obs_disabled");
    g.bench_function("enabled", |b| b.iter(odcfp_obs::enabled));
    g.bench_function("span", |b| {
        b.iter(|| {
            let mut span = odcfp_obs::span("bench.noop");
            span.field("k", 1u64);
        })
    });
    g.bench_function("count", |b| b.iter(|| odcfp_obs::count("bench.ctr", 1)));
    g.bench_function("point", |b| {
        b.iter(|| {
            odcfp_obs::point("bench.pt")
                .field("a", 1u64)
                .field("b", "s")
                .emit();
        })
    });
    g.finish();
}

fn enabled_paths(c: &mut Criterion) {
    // For contrast: the same call sites with a memory sink attached.
    // Serialized under the capture lock so parallel benches can't race
    // on the global sink slot.
    let mut g = c.benchmark_group("obs_enabled");
    g.sample_size(10);
    g.bench_function("point", |b| {
        let ((), _events) = odcfp_obs::capture(|| {
            b.iter(|| {
                odcfp_obs::point("bench.pt")
                    .field("a", 1u64)
                    .field("b", "s")
                    .emit();
            })
        })
        .expect("no competing sink installed");
    });
    g.finish();
}

criterion_group!(benches, disabled_paths, enabled_paths);
criterion_main!(benches);
