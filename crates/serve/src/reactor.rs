//! The event-driven connection layer: one reactor thread owns every
//! socket, multiplexed with `poll(2)` over nonblocking fds.
//!
//! The thread-per-connection layer (still available as
//! `ConnMode::Threaded`) spends one OS thread — stack, scheduler slot,
//! context switches — per idle socket. The reactor replaces that with a
//! single thread that:
//!
//! 1. polls the listener, a wake pipe, and every connection for
//!    readiness;
//! 2. reads whatever is available, feeds it through the connection's
//!    [`FrameDecoder`](crate::frame::FrameDecoder), and admits complete
//!    requests into the tenant-fair queue (control ops and rejections
//!    are answered inline);
//! 3. routes finished [`Response`]s from the workers' [`Mailbox`] onto
//!    the owning connection's outbound queue;
//! 4. writes outbound bytes — single reply lines or incremental
//!    [`StreamSender`](crate::stream::StreamSender) chunks — only while
//!    the socket is writable.
//!
//! Backpressure is per-connection and never reaches a worker: a slow
//! reader's outbound queue grows to a watermark, at which point the
//! reactor stops *reading* from that connection (no new admissions from
//! it) while every other connection proceeds. Workers hand large
//! payloads to the reactor whole and move on; the reactor trickles them
//! out as `chunk` frames at the pace the peer drains them.
//!
//! Replies for connections that vanished mid-request are discarded at
//! routing time — workers never observe client death.
//!
//! # Drain
//!
//! On drain the reactor stops accepting, closes the queue, and arms a
//! watchdog that cancels the shared drain token at the deadline. It
//! exits once every admitted request has been answered *and* every
//! outbound byte flushed (or the deadline plus a short grace has
//! passed), so `shutdown` replies and in-flight streams are not cut off
//! mid-line.

// `poll(2)` needs an FFI declaration; everything else in the crate
// stays safe.
#![allow(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use std::collections::VecDeque;

use crate::executor::{admit, Admit, ReplyTo, Response};
use crate::frame::{FrameDecoder, FrameEvent};
use crate::proto::{ErrorCode, Reply, Request, MIN_PROTO_VERSION};
use crate::server::Shared;
use crate::stream::StreamSender;

/// Outbound bytes queued on one connection above which the reactor
/// stops reading from it (admission backpressure for slow readers).
const WRITE_WATERMARK: usize = 256 * 1024;

/// Poll timeout: the cadence at which drain flags are re-checked when
/// no fd is ready.
const POLL_TIMEOUT_MS: i32 = 25;

/// Extra time past the drain deadline the reactor will spend flushing
/// outbound bytes before giving up on slow readers.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

mod sys {
    //! Minimal `poll(2)` binding — the only unsafe code in the crate.
    #![allow(missing_docs)]

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Safe wrapper: polls the whole slice, returns the ready count.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs for the duration of the
        // call; the kernel writes only `revents` within its bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// Worker → reactor handoff: finished responses keyed by connection id,
/// plus a wake pipe so a sleeping `poll` learns about them immediately.
pub(crate) struct Mailbox {
    inbox: Mutex<Vec<(u64, Response)>>,
    /// Write half of the self-pipe; one byte per delivery (coalesced).
    wake: UnixStream,
}

impl Mailbox {
    fn new(wake: UnixStream) -> Mailbox {
        Mailbox {
            inbox: Mutex::new(Vec::new()),
            wake,
        }
    }

    /// Queues a response for `conn` and wakes the reactor.
    pub(crate) fn deliver(&self, conn: u64, response: Response) {
        self.inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((conn, response));
        // A full pipe means a wake is already pending — that's enough.
        let _ = (&self.wake).write(&[1u8]);
    }

    fn drain(&self) -> Vec<(u64, Response)> {
        std::mem::take(&mut *self.inbox.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn is_empty(&self) -> bool {
        self.inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

/// One queued outbound unit: a complete line, or a stream emitting
/// chunk lines on demand.
enum OutItem {
    Line(Vec<u8>),
    Stream(Box<StreamSender>),
}

/// Per-connection reactor state.
struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Outbound queue, drained strictly in order.
    out: VecDeque<OutItem>,
    /// Bytes of the current line being written, and the write cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests admitted from this connection not yet answered.
    inflight: u64,
    /// Peer sent EOF; drain outbound then close.
    read_closed: bool,
    /// Unrecoverable socket error; reap on sight.
    dead: bool,
}

impl Connection {
    fn new(stream: TcpStream, max_line: usize) -> Connection {
        Connection {
            stream,
            decoder: FrameDecoder::new(max_line),
            out: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            read_closed: false,
            dead: false,
        }
    }

    /// Upper bound on outbound bytes not yet written.
    fn pending_out(&self) -> usize {
        let queued: usize = self
            .out
            .iter()
            .map(|item| match item {
                OutItem::Line(bytes) => bytes.len(),
                OutItem::Stream(sender) => sender.remaining(),
            })
            .sum();
        queued + (self.wbuf.len() - self.wpos)
    }

    fn push_line(&mut self, reply: &Reply) {
        let mut line = reply.to_line();
        line.push('\n');
        self.out.push_back(OutItem::Line(line.into_bytes()));
    }

    /// Poll events this connection currently needs.
    fn wants(&self) -> i16 {
        let mut events = 0i16;
        if !self.read_closed && self.pending_out() < WRITE_WATERMARK {
            events |= sys::POLLIN;
        }
        if self.pending_out() > 0 {
            events |= sys::POLLOUT;
        }
        events
    }

    /// Writes as much outbound data as the socket accepts right now.
    fn write_ready(&mut self) {
        loop {
            if self.wpos == self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
                match self.out.front_mut() {
                    None => return,
                    Some(OutItem::Line(_)) => {
                        let Some(OutItem::Line(bytes)) = self.out.pop_front() else {
                            unreachable!("front checked");
                        };
                        self.wbuf = bytes;
                    }
                    Some(OutItem::Stream(sender)) => match sender.next_line() {
                        Some(line) => self.wbuf = line.into_bytes(),
                        None => {
                            self.out.pop_front();
                            continue;
                        }
                    },
                }
            }
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Runs the event loop until drain completes. Spawned workers (owned by
/// the caller) must already be consuming the shared queue.
pub(crate) fn run_reactor(listener: TcpListener, shared: &Arc<Shared>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let mailbox = Arc::new(Mailbox::new(wake_tx));

    let mut conns: BTreeMap<u64, Connection> = BTreeMap::new();
    // Connection ids are never reused, so a reply routed after its
    // connection died cannot be misdelivered to a newcomer.
    let mut next_conn: u64 = 1;
    let mut pollfds: Vec<sys::PollFd> = Vec::new();
    /// What pollfds[i] refers to.
    enum Slot {
        Wake,
        Listener,
        Conn(u64),
    }
    let mut slots: Vec<Slot> = Vec::new();

    let mut drain: Option<DrainWatchdog> = None;
    let mut drain_started: Option<Instant> = None;

    loop {
        // --- drain transitions -------------------------------------
        if shared.draining() && drain.is_none() {
            odcfp_obs::point("serve.drain")
                .field("queued", shared.queue.len())
                .nondet()
                .emit();
            shared.queue.close();
            drain = Some(DrainWatchdog::arm(shared));
            drain_started = Some(Instant::now());
        }
        if let Some(started) = drain_started {
            let work_done = shared.queue.is_empty()
                && shared.in_flight.load(Ordering::SeqCst) == 0
                && mailbox.is_empty();
            let flushed = conns.values().all(|c| c.pending_out() == 0);
            let expired =
                started.elapsed() >= shared.config.drain_deadline + FLUSH_GRACE;
            if (work_done && flushed) || expired {
                break;
            }
        }

        // --- build the poll set ------------------------------------
        pollfds.clear();
        slots.clear();
        pollfds.push(sys::PollFd {
            fd: wake_rx.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        slots.push(Slot::Wake);
        if drain.is_none() && conns.len() < shared.config.max_conns {
            pollfds.push(sys::PollFd {
                fd: listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            slots.push(Slot::Listener);
        }
        for (&id, conn) in &conns {
            let events = conn.wants();
            if events != 0 {
                pollfds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                slots.push(Slot::Conn(id));
            }
        }

        match sys::poll_fds(&mut pollfds, POLL_TIMEOUT_MS) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // A transient poll failure must not take the daemon
                // down; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        }

        // --- dispatch readiness ------------------------------------
        let mut accept_ready = false;
        for (pfd, slot) in pollfds.iter().zip(&slots) {
            let re = pfd.revents;
            if re == 0 {
                continue;
            }
            match slot {
                Slot::Wake => {
                    let mut sink = [0u8; 256];
                    while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                Slot::Listener => accept_ready = true,
                Slot::Conn(id) => {
                    let Some(conn) = conns.get_mut(id) else {
                        continue;
                    };
                    if re & (sys::POLLERR | sys::POLLNVAL) != 0 {
                        conn.dead = true;
                        continue;
                    }
                    // POLLHUP still delivers buffered bytes; read to EOF.
                    if re & (sys::POLLIN | sys::POLLHUP) != 0 {
                        read_ready(shared, &mailbox, *id, conn);
                    }
                }
            }
        }

        // --- route worker responses --------------------------------
        for (conn_id, response) in mailbox.drain() {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            let Some(conn) = conns.get_mut(&conn_id) else {
                // Connection vanished mid-request; the verdict dies
                // here, not in a worker blocked on a dead socket.
                continue;
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            match response.into_sender(shared.config.stream_chunk) {
                Ok(bytes) => conn.out.push_back(OutItem::Line(bytes)),
                Err(sender) => conn.out.push_back(OutItem::Stream(sender)),
            }
        }

        // --- accept ------------------------------------------------
        if accept_ready {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        if conns.len() >= shared.config.max_conns {
                            // Connection-level shed: one best-effort v1
                            // line, then close (docs/PROTOCOL.md §6).
                            shared.rejected.fetch_add(1, Ordering::SeqCst);
                            let reply = Reply::err(
                                "",
                                ErrorCode::Overloaded,
                                format!(
                                    "connection limit reached (max {})",
                                    shared.config.max_conns
                                ),
                            )
                            .versioned(MIN_PROTO_VERSION);
                            let mut line = reply.to_line();
                            line.push('\n');
                            let _ = (&stream).write(line.as_bytes());
                            continue;
                        }
                        let id = next_conn;
                        next_conn += 1;
                        conns.insert(id, Connection::new(stream, shared.config.max_line));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // --- write whatever fits -----------------------------------
        for conn in conns.values_mut() {
            if !conn.dead && conn.pending_out() > 0 {
                conn.write_ready();
            }
        }

        // --- reap --------------------------------------------------
        conns.retain(|_, conn| {
            if conn.dead {
                return false;
            }
            // EOF'd connections linger until their admitted requests
            // are answered and flushed, then close cleanly.
            !(conn.read_closed && conn.inflight == 0 && conn.pending_out() == 0)
        });
    }

    if let Some(watchdog) = drain {
        watchdog.disarm();
    }
    Ok(())
}

/// Reads all available bytes from one connection and processes every
/// complete frame.
fn read_ready(shared: &Arc<Shared>, mailbox: &Arc<Mailbox>, id: u64, conn: &mut Connection) {
    let mut chunk = [0u8; 16 * 1024];
    let mut events = Vec::new();
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                if let Some(tail) = conn.decoder.finish() {
                    handle_line(shared, mailbox, id, conn, &tail);
                }
                break;
            }
            Ok(n) => {
                conn.decoder.push(&chunk[..n], &mut events);
                for event in events.drain(..) {
                    match event {
                        FrameEvent::Frame(line) => {
                            handle_line(shared, mailbox, id, conn, &line);
                        }
                        FrameEvent::Oversized => {
                            shared.rejected.fetch_add(1, Ordering::SeqCst);
                            conn.push_line(&Reply::err(
                                "",
                                ErrorCode::BadRequest,
                                format!(
                                    "request line exceeds {} bytes",
                                    shared.config.max_line
                                ),
                            ));
                        }
                    }
                }
                // Stop reading once this connection owes us enough
                // output; POLLIN re-arms when the peer drains it.
                if conn.pending_out() >= WRITE_WATERMARK {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Parses and admits one request line from a reactor connection.
fn handle_line(
    shared: &Arc<Shared>,
    mailbox: &Arc<Mailbox>,
    id: u64,
    conn: &mut Connection,
    line: &str,
) {
    if line.trim().is_empty() {
        return;
    }
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(e) => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            conn.push_line(&Reply::err(&e.id, e.code, e.message).versioned(e.version));
            return;
        }
    };
    let reply_to = ReplyTo::Reactor {
        conn: id,
        mailbox: Arc::clone(mailbox),
    };
    match admit(shared, request, reply_to) {
        Admit::Immediate(reply) => conn.push_line(&reply),
        Admit::Queued => conn.inflight += 1,
    }
}

/// Cancels the shared drain token when the drain deadline fires, unless
/// disarmed first.
struct DrainWatchdog {
    done: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl DrainWatchdog {
    fn arm(shared: &Arc<Shared>) -> DrainWatchdog {
        let done = Arc::new(AtomicBool::new(false));
        let handle = {
            let shared = Arc::clone(shared);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let armed = Instant::now();
                while !done.load(Ordering::SeqCst) {
                    if armed.elapsed() >= shared.config.drain_deadline {
                        shared.drain_token.cancel();
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        DrainWatchdog { done, handle }
    }

    fn disarm(self) {
        self.done.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}
