//! Digest-keyed warm cache of per-circuit engine state.
//!
//! The expensive artifacts of a request — the [`Fingerprinter`]'s
//! location analysis and the [`VerifySession`]'s strash store /
//! `SharedMiter` encoding — are keyed by the [`Digest`] of the circuit's
//! *source bytes* and reused across requests and tenants. The cache
//! enforces a byte budget with LRU eviction, so a long-lived server
//! degrades to cold rebuilds under pressure instead of growing without
//! bound:
//!
//! * an entry whose estimated cost exceeds the whole budget is served
//!   **uncached** (built, used once, dropped) — admission never evicts
//!   the entire working set for one oversized circuit;
//! * eviction is strictly least-recently-used and emits a `serve.evict`
//!   observability point per victim;
//! * a panic while holding a circuit's state [`WarmCache::poison`]s it:
//!   the entry is dropped (its engines may be mid-query) and a strike is
//!   recorded; at [`QUARANTINE_THRESHOLD`] strikes the digest is refused
//!   outright — the serve-side analogue of the campaign runner's
//!   job quarantine.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use odcfp_core::{CodeSpaceProof, Fingerprinter, VerifySession};
use odcfp_netlist::Digest;

/// Panics tolerated per circuit digest before requests against it are
/// refused with a `quarantined` error.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Warm per-circuit engine state: the analysed fingerprinter and a
/// persistent verification session against its base netlist.
///
/// Held behind a `Mutex` per circuit: concurrent requests for the same
/// digest serialize on the circuit (the session is stateful), while
/// requests for different circuits proceed in parallel.
#[derive(Debug)]
pub struct CircuitState {
    /// Location analysis over the base netlist.
    pub fingerprinter: Arc<Fingerprinter>,
    /// Persistent strash + shared-miter session for the base netlist.
    pub session: VerifySession,
    /// Lazily built code-space proof (PR 7's batched algebra): one
    /// free-selector solve that afterwards decides any fingerprint code
    /// by assumption. Built on the first `candidate_bits` verify against
    /// this circuit and reused for the cache entry's lifetime.
    pub codespace: Option<CodeSpaceProof>,
}

/// A cache hit/miss disposition, reported back to clients so tests (and
/// operators) can observe warm-path behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from warm state.
    Hit,
    /// Built this request and admitted to the cache.
    Miss,
    /// Built this request but too large for the budget; not retained.
    Uncached,
}

impl Disposition {
    /// Stable wire name (`cache` reply field).
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Miss => "miss",
            Disposition::Uncached => "uncached",
        }
    }
}

struct Entry {
    state: Arc<Mutex<CircuitState>>,
    cost: u64,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    /// Monotonic use counter backing LRU ordering.
    tick: u64,
    used: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Panic strikes per digest.
    strikes: HashMap<u64, u32>,
}

/// Aggregate cache accounting, for the `serve.summary` trace point and
/// status replies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served warm.
    pub hits: u64,
    /// Lookups that required a cold build.
    pub misses: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub used_bytes: u64,
}

/// The digest-keyed LRU warm cache.
pub struct WarmCache {
    inner: Mutex<Inner>,
    budget: u64,
}

impl WarmCache {
    /// Creates a cache with an estimated-byte `budget`.
    pub fn new(budget: u64) -> WarmCache {
        WarmCache {
            inner: Mutex::new(Inner::default()),
            budget,
        }
    }

    /// Estimated retained cost of a circuit: its source bytes plus the
    /// analysed/strashed per-gate structures. Deliberately coarse — the
    /// budget bounds order of magnitude, not exact allocation.
    pub fn estimate_cost(source_len: usize, num_gates: usize) -> u64 {
        source_len as u64 + (num_gates as u64) * 600
    }

    /// `true` when `key` has struck out and must be refused.
    pub fn is_quarantined(&self, key: Digest) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .strikes
            .get(&key.0)
            .is_some_and(|&n| n >= QUARANTINE_THRESHOLD)
    }

    /// Warm lookup. Counts a hit and refreshes LRU order on success; a
    /// miss is counted only in [`WarmCache::admit`] (so a
    /// lookup-then-admit pair counts once).
    pub fn lookup(&self, key: Digest) -> Option<Arc<Mutex<CircuitState>>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                let state = Arc::clone(&entry.state);
                inner.hits += 1;
                Some(state)
            }
            None => None,
        }
    }

    /// Admits freshly built state (built *outside* the cache lock),
    /// evicting least-recently-used entries until `cost` fits the
    /// budget. Returns the shared handle to use plus the disposition.
    ///
    /// Double-checked: if a racing request admitted the same digest
    /// first, that entry wins and the fresh build is dropped — all
    /// requests for a digest converge on one session.
    pub fn admit(
        &self,
        key: Digest,
        state: CircuitState,
        cost: u64,
    ) -> (Arc<Mutex<CircuitState>>, Disposition) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key.0) {
            entry.last_used = tick;
            let state = Arc::clone(&entry.state);
            inner.hits += 1;
            return (state, Disposition::Hit);
        }
        inner.misses += 1;
        let state = Arc::new(Mutex::new(state));
        if cost > self.budget {
            // Larger than the whole budget: serve cold, keep the cache.
            return (state, Disposition::Uncached);
        }
        while inner.used + cost > self.budget {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("used > 0 implies an entry");
            let evicted = inner.entries.remove(&victim).expect("victim exists");
            inner.used -= evicted.cost;
            inner.evictions += 1;
            odcfp_obs::point("serve.evict")
                .field("cost", evicted.cost)
                .field("resident", inner.entries.len())
                .nondet()
                .emit();
        }
        inner.used += cost;
        inner.entries.insert(
            key.0,
            Entry {
                state: Arc::clone(&state),
                cost,
                last_used: tick,
            },
        );
        (state, Disposition::Miss)
    }

    /// Records a panic against `key`: drops any resident entry (its
    /// engines may be mid-query and cannot be trusted) and adds a
    /// strike. Returns the strike count.
    pub fn poison(&self, key: Digest) -> u32 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = inner.entries.remove(&key.0) {
            inner.used -= entry.cost;
        }
        let strikes = inner.strikes.entry(key.0).or_insert(0);
        *strikes += 1;
        *strikes
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            used_bytes: inner.used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn state_for(seed: u64) -> CircuitState {
        let netlist = random_dag(CellLibrary::standard(), DagParams::small(seed));
        let fingerprinter = Arc::new(Fingerprinter::new(netlist).expect("analysable"));
        let session = VerifySession::new(fingerprinter.base()).expect("valid base");
        CircuitState {
            fingerprinter,
            session,
            codespace: None,
        }
    }

    #[test]
    fn admit_then_lookup_hits() {
        let cache = WarmCache::new(10_000);
        let key = Digest::of(b"circuit-a");
        assert!(cache.lookup(key).is_none());
        let (_, disp) = cache.admit(key, state_for(1), 100);
        assert_eq!(disp, Disposition::Miss);
        assert!(cache.lookup(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let cache = WarmCache::new(250);
        let (a, b, c) = (Digest::of(b"a"), Digest::of(b"b"), Digest::of(b"c"));
        cache.admit(a, state_for(1), 100);
        cache.admit(b, state_for(2), 100);
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.lookup(a).is_some());
        cache.admit(c, state_for(3), 100);
        assert!(cache.lookup(a).is_some(), "recently used survives");
        assert!(cache.lookup(b).is_none(), "LRU entry evicted");
        assert!(cache.lookup(c).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().used_bytes <= 250);
    }

    #[test]
    fn oversized_entry_served_uncached() {
        let cache = WarmCache::new(250);
        let small = Digest::of(b"small");
        cache.admit(small, state_for(1), 100);
        let big = Digest::of(b"big");
        let (_, disp) = cache.admit(big, state_for(2), 1_000);
        assert_eq!(disp, Disposition::Uncached);
        // The resident working set was not sacrificed for it.
        assert!(cache.lookup(small).is_some());
        assert!(cache.lookup(big).is_none());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn racing_admit_converges_on_first_entry() {
        let cache = WarmCache::new(10_000);
        let key = Digest::of(b"dup");
        let (first, d1) = cache.admit(key, state_for(1), 100);
        let (second, d2) = cache.admit(key, state_for(2), 100);
        assert_eq!(d1, Disposition::Miss);
        assert_eq!(d2, Disposition::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().used_bytes, 100);
    }

    #[test]
    fn poison_drops_entry_and_quarantines_at_threshold() {
        let cache = WarmCache::new(10_000);
        let key = Digest::of(b"hostile");
        cache.admit(key, state_for(1), 100);
        assert_eq!(cache.poison(key), 1);
        assert!(cache.lookup(key).is_none(), "poisoned state dropped");
        assert!(!cache.is_quarantined(key), "one strike is not quarantine");
        for expected in 2..=QUARANTINE_THRESHOLD {
            assert_eq!(cache.poison(key), expected);
        }
        assert!(cache.is_quarantined(key));
        assert_eq!(cache.stats().used_bytes, 0);
    }
}
