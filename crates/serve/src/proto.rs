//! The `odcfp serve` wire protocol: newline-delimited JSON, one request
//! per line, one *terminal* reply per request, versioned. The normative
//! specification lives in docs/PROTOCOL.md; this module is its
//! implementation.
//!
//! The contract is robustness-first:
//!
//! * every line — well-formed or not — gets exactly one terminal reply;
//!   the server never answers bad input with a disconnect;
//! * replies are structured: `{"v":2,"id":…,"ok":true,…}` on success,
//!   `{"v":2,"id":…,"ok":false,"error":"<code>","message":…}` on any
//!   failure, with a closed vocabulary of [`ErrorCode`]s clients can
//!   switch on (`overloaded` and `draining` are backpressure, not bugs);
//! * large payloads may stream: a v2 reply can arrive as a sequence of
//!   `chunk` frames followed by a `done` frame carrying the digest of
//!   the whole payload (see [`Frame`]); v1 requests always get a
//!   single-line reply;
//! * the schema is versioned: requests carry `"v"` between
//!   [`MIN_PROTO_VERSION`] and [`PROTO_VERSION`]; anything else is
//!   rejected with [`ErrorCode::UnsupportedVersion`]. Replies mirror the
//!   request's version, so v1 clients keep receiving exactly the v1
//!   shapes they were written against.
//!
//! Parsing reuses the tolerant zero-dependency JSON parser from
//! `odcfp-obs` ([`odcfp_obs::json`]); serialization lives here.

use std::fmt::Write as _;

use odcfp_obs::json::{self, Json};

/// The newest protocol schema version this build speaks.
pub const PROTO_VERSION: u64 = 2;

/// The oldest protocol schema version this build still accepts. v1
/// requests are served with v1-shaped single-line replies (no `chunk` /
/// `done` frames, no `"v":2` fields).
pub const MIN_PROTO_VERSION: u64 = 1;

/// Closed vocabulary of structured failure codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON, or a required field was
    /// missing or ill-typed.
    BadRequest,
    /// The request's `v` field is outside
    /// [`MIN_PROTO_VERSION`]..=[`PROTO_VERSION`].
    UnsupportedVersion,
    /// Admission control rejected the request: the bounded queue is
    /// full. Back off and retry — this is load shedding, not failure.
    Overloaded,
    /// The server is draining (SIGTERM or a `shutdown` request) and no
    /// longer admits new work.
    Draining,
    /// The request's deadline fired before a verdict was reached; any
    /// in-flight SAT/sweep work was cooperatively cancelled.
    Deadline,
    /// The request panicked inside its isolation boundary. The process
    /// survived; the offending circuit's warm state was dropped.
    Panic,
    /// The referenced circuit has panicked repeatedly and is quarantined;
    /// requests against it are refused without execution.
    Quarantined,
    /// An internal error (I/O, journal) — the request may be retried.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Panic => "panic",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A circuit payload: inline source text or a path the server resolves
/// against its `--root`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignRef {
    /// Inline source text with an explicit format (`"v"` or `"blif"`).
    Text {
        /// The design source.
        text: String,
        /// `"v"` (Verilog) or `"blif"`.
        format: String,
    },
    /// A server-side path, resolved relative to the serve root.
    Path(String),
}

/// A parsed, validated request operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Liveness check; answered inline, never queued.
    Ping,
    /// Begin a graceful drain (equivalent to SIGTERM).
    Shutdown,
    /// Fingerprint locations and capacity of a design.
    Locations {
        /// The design to analyse.
        design: DesignRef,
    },
    /// Mint a fingerprinted copy.
    Embed {
        /// The base design.
        design: DesignRef,
        /// Buyer seed (exclusive with `bits`).
        seed: Option<u64>,
        /// Explicit bit string (exclusive with `seed`).
        bits: Option<String>,
        /// Verification policy (`quick` / `strict` / `budgeted:<n>`);
        /// default `quick`.
        policy: Option<String>,
    },
    /// Equivalence-check a candidate against a golden design.
    ///
    /// The candidate is either a full netlist ([`DesignRef`]) or — the
    /// fleet-scale cheap path — a fingerprint *code* (`candidate_bits`),
    /// decided by assumption against the golden circuit's cached
    /// code-space proof without ever materializing a netlist.
    Verify {
        /// The golden design (warm-cached by digest).
        golden: DesignRef,
        /// The candidate netlist (exclusive with `candidate_bits`).
        candidate: Option<DesignRef>,
        /// A fingerprint code as a `0`/`1` string, one bit per location
        /// (exclusive with `candidate`).
        candidate_bits: Option<String>,
        /// Verification policy; default `strict`.
        policy: Option<String>,
    },
    /// Run (or resume) a journaled campaign server-side.
    Campaign {
        /// Manifest text (same grammar as `odcfp campaign`).
        manifest: String,
        /// Output directory, resolved against the serve root.
        out_dir: String,
        /// Continue an existing journal.
        resume: bool,
    },
    /// Summarize a server-side trace file.
    Report {
        /// Trace path, resolved against the serve root.
        trace_path: String,
    },
    /// Fault-injection probe (`panic` / `spin`) for containment drills —
    /// the request-level analogue of the campaign manifest's `probe:`
    /// sources.
    Probe {
        /// `"panic"` or `"spin"`.
        mode: String,
        /// When present, the fault is attributed to this circuit: its
        /// warm state is touched first, so a `panic` probe poisons it
        /// and drives the quarantine ladder — letting operators (and
        /// the conformance tests) drill the `quarantined` error path
        /// without a genuinely hostile netlist.
        design: Option<DesignRef>,
    },
}

impl Op {
    /// The wire name of this operation.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::Locations { .. } => "locations",
            Op::Embed { .. } => "embed",
            Op::Verify { .. } => "verify",
            Op::Campaign { .. } => "campaign",
            Op::Report { .. } => "report",
            Op::Probe { .. } => "probe",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The protocol version the client spoke. Replies (including
    /// errors) mirror it, and streaming engages only at `version >= 2`.
    pub version: u64,
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub id: String,
    /// Fairness key: requests are round-robin scheduled across tenants.
    pub tenant: String,
    /// Per-request deadline in milliseconds, enforced via `CancelToken`.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// A request parse failure: the error code plus a message, and the `id`
/// recovered from the line if one was readable (so even a garbled
/// request gets a correlated reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Correlation id, when recoverable.
    pub id: String,
    /// The version the error reply should be stamped with: the
    /// request's own version when it was readable and supported,
    /// otherwise [`MIN_PROTO_VERSION`] (the safe common denominator).
    pub version: u64,
    /// What class of failure.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

fn obj_get<'a>(pairs: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(pairs: &[(String, Json)], key: &str) -> Option<String> {
    match obj_get(pairs, key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(pairs: &[(String, Json)], key: &str) -> Option<u64> {
    match obj_get(pairs, key) {
        Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn get_bool(pairs: &[(String, Json)], key: &str) -> Option<bool> {
    match obj_get(pairs, key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Extracts a [`DesignRef`] from `<prefix>_text`/`<prefix>_format` or
/// `<prefix>_path` fields.
fn get_design(
    pairs: &[(String, Json)],
    prefix: &str,
) -> Result<DesignRef, String> {
    let text_key = format!("{prefix}_text");
    let path_key = format!("{prefix}_path");
    match (get_str(pairs, &text_key), get_str(pairs, &path_key)) {
        (Some(text), None) => {
            let format = get_str(pairs, &format!("{prefix}_format")).unwrap_or_else(|| "v".into());
            if format != "v" && format != "blif" {
                return Err(format!("{prefix}_format must be \"v\" or \"blif\""));
            }
            Ok(DesignRef::Text { text, format })
        }
        (None, Some(path)) => Ok(DesignRef::Path(path)),
        (Some(_), Some(_)) => Err(format!("{text_key} and {path_key} are exclusive")),
        (None, None) => Err(format!("missing {text_key} or {path_key}")),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestError`] carrying the structured failure code
    /// and whatever correlation id could be recovered.
    pub fn parse_line(line: &str) -> Result<Request, RequestError> {
        let bad = |id: &str, version: u64, message: String| RequestError {
            id: id.to_owned(),
            version,
            code: ErrorCode::BadRequest,
            message,
        };
        let Some(Json::Obj(pairs)) = json::parse(line) else {
            return Err(bad("", MIN_PROTO_VERSION, "request line is not a JSON object".into()));
        };
        let id = get_str(&pairs, "id").unwrap_or_default();
        let version = match get_u64(&pairs, "v") {
            Some(v) if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&v) => v,
            Some(v) => {
                return Err(RequestError {
                    id,
                    version: MIN_PROTO_VERSION,
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "protocol version {v} not supported (this server speaks {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                    ),
                })
            }
            None => {
                return Err(bad(
                    &id,
                    MIN_PROTO_VERSION,
                    "missing protocol version field \"v\"".into(),
                ))
            }
        };
        let bad = |id: &str, message: String| bad(id, version, message);
        let tenant = get_str(&pairs, "tenant").unwrap_or_else(|| "anon".into());
        let deadline_ms = get_u64(&pairs, "deadline_ms");
        let op_name = match get_str(&pairs, "op") {
            Some(op) => op,
            None => return Err(bad(&id, "missing \"op\" field".into())),
        };
        let design = |prefix: &str| get_design(&pairs, prefix).map_err(|m| bad(&id, m));
        let op = match op_name.as_str() {
            "ping" => Op::Ping,
            "shutdown" => Op::Shutdown,
            "locations" => Op::Locations { design: design("design")? },
            "embed" => {
                let seed = get_u64(&pairs, "seed");
                let bits = get_str(&pairs, "bits");
                if seed.is_none() && bits.is_none() {
                    return Err(bad(&id, "embed needs \"seed\" or \"bits\"".into()));
                }
                Op::Embed {
                    design: design("design")?,
                    seed,
                    bits,
                    policy: get_str(&pairs, "policy"),
                }
            }
            "verify" => {
                let candidate_bits = get_str(&pairs, "candidate_bits");
                let candidate = match &candidate_bits {
                    Some(bits) => {
                        if obj_get(&pairs, "candidate_text").is_some()
                            || obj_get(&pairs, "candidate_path").is_some()
                        {
                            return Err(bad(
                                &id,
                                "candidate_bits and candidate_text/candidate_path are exclusive"
                                    .into(),
                            ));
                        }
                        if bits.is_empty() || bits.chars().any(|c| c != '0' && c != '1') {
                            return Err(bad(
                                &id,
                                "candidate_bits must be a non-empty string of 0s and 1s".into(),
                            ));
                        }
                        None
                    }
                    None => Some(design("candidate")?),
                };
                Op::Verify {
                    golden: design("golden")?,
                    candidate,
                    candidate_bits,
                    policy: get_str(&pairs, "policy"),
                }
            }
            "campaign" => Op::Campaign {
                manifest: get_str(&pairs, "manifest")
                    .ok_or_else(|| bad(&id, "campaign needs \"manifest\" text".into()))?,
                out_dir: get_str(&pairs, "out_dir")
                    .ok_or_else(|| bad(&id, "campaign needs \"out_dir\"".into()))?,
                resume: get_bool(&pairs, "resume").unwrap_or(false),
            },
            "report" => Op::Report {
                trace_path: get_str(&pairs, "trace_path")
                    .ok_or_else(|| bad(&id, "report needs \"trace_path\"".into()))?,
            },
            "probe" => {
                let mode = get_str(&pairs, "mode")
                    .ok_or_else(|| bad(&id, "probe needs \"mode\"".into()))?;
                if mode != "panic" && mode != "spin" {
                    return Err(bad(&id, format!("unknown probe mode {mode:?}")));
                }
                let design = if obj_get(&pairs, "design_text").is_some()
                    || obj_get(&pairs, "design_path").is_some()
                {
                    Some(design("design")?)
                } else {
                    None
                };
                Op::Probe { mode, design }
            }
            other => return Err(bad(&id, format!("unknown op {other:?}"))),
        };
        Ok(Request {
            version,
            id,
            tenant,
            deadline_ms,
            op,
        })
    }
}

/// A typed reply field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// String.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One reply line, under construction or parsed back.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The protocol version the line is stamped with. Builders default
    /// to [`PROTO_VERSION`]; the server overrides it to mirror the
    /// request's version (see [`Reply::versioned`]).
    pub v: u64,
    /// Echoed correlation id.
    pub id: String,
    /// `true` for success replies.
    pub ok: bool,
    /// Echoed operation name (success replies).
    pub op: Option<String>,
    /// Structured failure code (error replies).
    pub error: Option<String>,
    /// Human-readable failure detail (error replies).
    pub message: Option<String>,
    /// Op-specific payload fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Reply {
    /// A success reply for `op`.
    pub fn ok(id: &str, op: &str) -> Reply {
        Reply {
            v: PROTO_VERSION,
            id: id.to_owned(),
            ok: true,
            op: Some(op.to_owned()),
            error: None,
            message: None,
            fields: Vec::new(),
        }
    }

    /// A structured error reply.
    pub fn err(id: &str, code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply {
            v: PROTO_VERSION,
            id: id.to_owned(),
            ok: false,
            op: None,
            error: Some(code.as_str().to_owned()),
            message: Some(message.into()),
            fields: Vec::new(),
        }
    }

    /// Stamps the reply with the version of the request it answers
    /// (builder style). v1 clients must see `"v":1` lines — their
    /// parsers reject anything newer.
    pub fn versioned(mut self, v: u64) -> Reply {
        self.v = v.clamp(MIN_PROTO_VERSION, PROTO_VERSION);
        self
    }

    /// Attach a payload field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Reply {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Look up a string payload field.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Look up an integer payload field.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::U64(n) if k == key => Some(*n),
            _ => None,
        })
    }

    /// Look up a boolean payload field.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::Bool(b) if k == key => Some(*b),
            _ => None,
        })
    }

    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"v\":{},\"id\":\"{}\",\"ok\":{}",
            self.v,
            escape_json(&self.id),
            self.ok
        );
        if let Some(op) = &self.op {
            let _ = write!(out, ",\"op\":\"{}\"", escape_json(op));
        }
        if let Some(error) = &self.error {
            let _ = write!(out, ",\"error\":\"{}\"", escape_json(error));
        }
        if let Some(message) = &self.message {
            let _ = write!(out, ",\"message\":\"{}\"", escape_json(message));
        }
        for (key, value) in &self.fields {
            let _ = write!(out, ",\"{}\":", escape_json(key));
            match value {
                FieldValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape_json(s));
                }
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Parses a reply line back (client side). `None` for malformed
    /// input.
    pub fn parse_line(line: &str) -> Option<Reply> {
        let Json::Obj(pairs) = json::parse(line)? else {
            return None;
        };
        let v = get_u64(&pairs, "v")?;
        if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&v) {
            return None;
        }
        let mut reply = Reply {
            v,
            id: get_str(&pairs, "id")?,
            ok: get_bool(&pairs, "ok")?,
            op: get_str(&pairs, "op"),
            error: get_str(&pairs, "error"),
            message: get_str(&pairs, "message"),
            fields: Vec::new(),
        };
        for (key, value) in &pairs {
            if matches!(key.as_str(), "v" | "id" | "ok" | "op" | "error" | "message") {
                continue;
            }
            let field = match value {
                Json::Str(s) => FieldValue::Str(s.clone()),
                Json::Int(i) if *i >= 0 => FieldValue::U64(*i as u64),
                Json::Bool(b) => FieldValue::Bool(*b),
                _ => continue,
            };
            reply.fields.push((key.clone(), field));
        }
        Some(reply)
    }
}

/// One v2 wire frame, as a client sees it: a plain single-line reply, a
/// streamed payload `chunk`, or the `done` trailer that terminates a
/// chunked reply.
///
/// A chunked reply for request `id` is the sequence
/// `chunk(seq=0) … chunk(seq=n-1) done`, where `done` carries the name
/// of the streamed field (`stream`), the chunk count, the total payload
/// byte length, and the FNV-1a digest of the whole payload
/// ([`payload_digest`]). Concatenating the chunks' `data` in `seq`
/// order reconstructs the payload; the digest detects truncation.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete single-line reply (the only shape v1 ever sees).
    Reply(Reply),
    /// One slice of a streamed payload.
    Chunk {
        /// Echoed correlation id.
        id: String,
        /// 0-based chunk sequence number.
        seq: u64,
        /// This slice of the payload.
        data: String,
    },
    /// The terminal frame of a chunked reply: a normal success reply
    /// (scalar fields included) minus the streamed payload itself.
    Done {
        /// The reply, with `frame`/`stream`/`chunks`/`bytes`/`digest`
        /// bookkeeping stripped from `fields`.
        reply: Reply,
        /// Name of the field the chunks carried (e.g. `netlist`).
        stream: String,
        /// Number of chunk frames emitted.
        chunks: u64,
        /// Total payload length in bytes.
        bytes: u64,
        /// [`payload_digest`] of the whole payload.
        digest: String,
    },
}

impl Frame {
    /// Parses one reply-direction wire line into a frame. `None` for
    /// malformed input.
    pub fn parse_line(line: &str) -> Option<Frame> {
        let reply = Reply::parse_line(line)?;
        match reply.field_str("frame") {
            None => Some(Frame::Reply(reply)),
            Some("chunk") => Some(Frame::Chunk {
                id: reply.id.clone(),
                seq: reply.field_u64("seq")?,
                data: reply.field_str("data")?.to_owned(),
            }),
            Some("done") => {
                let stream = reply.field_str("stream")?.to_owned();
                let chunks = reply.field_u64("chunks")?;
                let bytes = reply.field_u64("bytes")?;
                let digest = reply.field_str("digest")?.to_owned();
                let mut reply = reply;
                reply.fields.retain(|(k, _)| {
                    !matches!(k.as_str(), "frame" | "stream" | "chunks" | "bytes" | "digest")
                });
                Some(Frame::Done {
                    reply,
                    stream,
                    chunks,
                    bytes,
                    digest,
                })
            }
            Some(_) => None,
        }
    }
}

/// Serializes one payload `chunk` frame (no trailing newline).
pub fn chunk_line(v: u64, id: &str, seq: u64, data: &str) -> String {
    format!(
        "{{\"v\":{v},\"id\":\"{}\",\"ok\":true,\"frame\":\"chunk\",\"seq\":{seq},\"data\":\"{}\"}}",
        escape_json(id),
        escape_json(data)
    )
}

/// Serializes the `done` trailer for a chunked reply: `reply`'s scalar
/// fields plus the stream bookkeeping (no trailing newline).
pub fn done_line(reply: &Reply, stream: &str, chunks: u64, bytes: u64, digest: &str) -> String {
    reply
        .clone()
        .field("frame", "done")
        .field("stream", stream)
        .field("chunks", chunks)
        .field("bytes", bytes)
        .field("digest", digest)
        .to_line()
}

/// Content digest carried by `done` frames: 64-bit FNV-1a over the
/// payload bytes, rendered as 16 lowercase hex digits. Self-contained
/// so independent client implementations can check stream integrity
/// from the spec alone (docs/PROTOCOL.md §5).
pub fn payload_digest(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a request (client side). Op arguments are supplied as
/// pre-built `(key, value)` pairs by the caller.
pub fn request_line(
    id: &str,
    tenant: &str,
    deadline_ms: Option<u64>,
    op: &str,
    args: &[(&str, FieldValue)],
) -> String {
    let mut out = format!(
        "{{\"v\":{PROTO_VERSION},\"id\":\"{}\",\"tenant\":\"{}\",\"op\":\"{}\"",
        escape_json(id),
        escape_json(tenant),
        escape_json(op)
    );
    if let Some(ms) = deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    for (key, value) in args {
        let _ = write!(out, ",\"{}\":", escape_json(key));
        match value {
            FieldValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape_json(s));
            }
            FieldValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            FieldValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_request_roundtrip() {
        let line = request_line("r1", "acme", Some(250), "ping", &[]);
        let req = Request::parse_line(&line).expect("parses");
        assert_eq!(req.id, "r1");
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.op, Op::Ping);
    }

    #[test]
    fn verify_request_with_inline_text() {
        let line = request_line(
            "v9",
            "t",
            None,
            "verify",
            &[
                ("golden_text", "module m; endmodule".into()),
                ("golden_format", "v".into()),
                ("candidate_path", "cand.v".into()),
                ("policy", "budgeted:5000".into()),
            ],
        );
        let req = Request::parse_line(&line).expect("parses");
        let Op::Verify { golden, candidate, policy, candidate_bits } = req.op else {
            panic!("wrong op");
        };
        assert_eq!(
            golden,
            DesignRef::Text { text: "module m; endmodule".into(), format: "v".into() }
        );
        assert_eq!(candidate, Some(DesignRef::Path("cand.v".into())));
        assert_eq!(candidate_bits, None);
        assert_eq!(policy.as_deref(), Some("budgeted:5000"));
    }

    #[test]
    fn malformed_lines_yield_structured_errors_with_recovered_ids() {
        for (line, code, id) in [
            ("not json at all", ErrorCode::BadRequest, ""),
            ("{\"v\":1}", ErrorCode::BadRequest, ""),
            ("{\"v\":1,\"id\":\"x\",\"op\":\"frob\"}", ErrorCode::BadRequest, "x"),
            ("{\"v\":3,\"id\":\"y\",\"op\":\"ping\"}", ErrorCode::UnsupportedVersion, "y"),
            ("{\"v\":0,\"id\":\"y2\",\"op\":\"ping\"}", ErrorCode::UnsupportedVersion, "y2"),
            ("{\"id\":\"z\",\"op\":\"ping\"}", ErrorCode::BadRequest, "z"),
            ("{\"v\":1,\"op\":\"embed\",\"design_text\":\"m\"}", ErrorCode::BadRequest, ""),
            (
                "{\"v\":1,\"op\":\"verify\",\"golden_text\":\"a\",\"golden_path\":\"b\",\"candidate_text\":\"c\"}",
                ErrorCode::BadRequest,
                "",
            ),
        ] {
            let e = Request::parse_line(line).expect_err(line);
            assert_eq!(e.code, code, "{line}");
            assert_eq!(e.id, id, "{line}");
            assert!(!e.message.is_empty(), "{line}");
        }
    }

    #[test]
    fn reply_roundtrip_with_fields() {
        let reply = Reply::ok("r1", "verify")
            .field("verdict", "proven")
            .field("conflicts", 42u64)
            .field("cache", "hit")
            .field("cancelled", false);
        let line = reply.to_line();
        let back = Reply::parse_line(&line).expect("parses");
        assert_eq!(back, reply);
        assert_eq!(back.field_str("verdict"), Some("proven"));
        assert_eq!(back.field_u64("conflicts"), Some(42));
        assert_eq!(back.field_bool("cancelled"), Some(false));
    }

    #[test]
    fn error_reply_carries_code_and_message() {
        let line = Reply::err("q", ErrorCode::Overloaded, "queue full (depth 64)").to_line();
        let back = Reply::parse_line(&line).expect("parses");
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("overloaded"));
        assert!(back.message.as_deref().unwrap().contains("queue full"));
    }

    #[test]
    fn v1_requests_parse_and_replies_mirror_version() {
        let req = Request::parse_line("{\"v\":1,\"id\":\"old\",\"op\":\"ping\"}").expect("v1 parses");
        assert_eq!(req.version, 1);
        let line = Reply::ok(&req.id, "ping").versioned(req.version).to_line();
        assert!(line.starts_with("{\"v\":1,"), "{line}");
        // A v1 client's parser must accept the mirrored line.
        assert_eq!(Reply::parse_line(&line).expect("parses").v, 1);
    }

    #[test]
    fn verify_accepts_code_bits_exclusively() {
        let line = "{\"v\":2,\"id\":\"c\",\"op\":\"verify\",\"golden_path\":\"g.v\",\"candidate_bits\":\"0110\"}";
        let req = Request::parse_line(line).expect("parses");
        let Op::Verify { candidate, candidate_bits, .. } = req.op else {
            panic!("wrong op");
        };
        assert_eq!(candidate, None);
        assert_eq!(candidate_bits.as_deref(), Some("0110"));
        for bad in [
            "{\"v\":2,\"op\":\"verify\",\"golden_path\":\"g\",\"candidate_bits\":\"01\",\"candidate_path\":\"c\"}",
            "{\"v\":2,\"op\":\"verify\",\"golden_path\":\"g\",\"candidate_bits\":\"01x\"}",
            "{\"v\":2,\"op\":\"verify\",\"golden_path\":\"g\",\"candidate_bits\":\"\"}",
        ] {
            assert!(Request::parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn chunked_reply_frames_roundtrip() {
        let chunk = chunk_line(2, "s1", 3, "abc\ndef");
        match Frame::parse_line(&chunk).expect("chunk parses") {
            Frame::Chunk { id, seq, data } => {
                assert_eq!((id.as_str(), seq, data.as_str()), ("s1", 3, "abc\ndef"));
            }
            other => panic!("not a chunk: {other:?}"),
        }
        let trailer = Reply::ok("s1", "embed").field("verdict", "proven").field("cache", "hit");
        let done = done_line(&trailer, "netlist", 4, 123, &payload_digest(b"payload"));
        match Frame::parse_line(&done).expect("done parses") {
            Frame::Done { reply, stream, chunks, bytes, digest } => {
                assert_eq!(stream, "netlist");
                assert_eq!((chunks, bytes), (4, 123));
                assert_eq!(digest, payload_digest(b"payload"));
                // Bookkeeping is stripped; scalar fields survive.
                assert_eq!(reply.field_str("verdict"), Some("proven"));
                assert!(reply.field_str("frame").is_none());
            }
            other => panic!("not done: {other:?}"),
        }
        // A plain reply parses as Frame::Reply.
        let plain = Reply::ok("p", "ping").to_line();
        assert!(matches!(Frame::parse_line(&plain), Some(Frame::Reply(_))));
    }

    #[test]
    fn payload_digest_is_stable() {
        // Pinned values: independent implementations written from
        // docs/PROTOCOL.md must reproduce these exactly.
        assert_eq!(payload_digest(b""), "cbf29ce484222325");
        assert_eq!(payload_digest(b"a"), "af63dc4c8601ec8c");
        assert_ne!(payload_digest(b"ab"), payload_digest(b"ba"));
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let hostile = "line1\nline2\t\"quoted\" \\slash\u{1} héllo";
        let line = Reply::ok(hostile, "ping").field("msg", hostile).to_line();
        let back = Reply::parse_line(&line).expect("parses");
        assert_eq!(back.id, hostile);
        assert_eq!(back.field_str("msg"), Some(hostile));
    }
}
