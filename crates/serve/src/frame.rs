//! Incremental newline-delimited frame decoding, shared by the reactor
//! and the legacy thread-per-connection reader.
//!
//! A [`FrameDecoder`] is a pure state machine fed raw socket bytes in
//! whatever slices the transport produces: frames split across reads
//! reassemble, several pipelined frames in one read all surface, and a
//! single frame exceeding the configured limit is rejected *once* (the
//! rest of the oversized line is discarded, so the connection survives
//! with framing intact). Keeping it free of I/O makes the protocol
//! edge cases unit-testable without sockets.

/// One event produced by [`FrameDecoder::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame (without its trailing newline), lossily decoded
    /// as UTF-8.
    Frame(String),
    /// The current line exceeded the decoder's limit. Emitted once per
    /// oversized line, as soon as the limit is crossed; the remainder
    /// of the line is silently discarded up to its newline.
    Oversized,
}

/// Torn-read-safe newline framing with a per-frame byte limit.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    limit: usize,
    /// Discarding the tail of an oversized line until its newline.
    skipping: bool,
}

impl FrameDecoder {
    /// Creates a decoder rejecting frames longer than `limit` bytes
    /// (exclusive of the newline).
    pub fn new(limit: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            limit: limit.max(1),
            skipping: false,
        }
    }

    /// Feeds `bytes` and appends any completed events to `events`.
    pub fn push(&mut self, bytes: &[u8], events: &mut Vec<FrameEvent>) {
        let mut rest = bytes;
        loop {
            if self.skipping {
                match rest.iter().position(|&b| b == b'\n') {
                    Some(idx) => {
                        rest = &rest[idx + 1..];
                        self.skipping = false;
                    }
                    None => return,
                }
                continue;
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(idx) => {
                    let (line, tail) = rest.split_at(idx);
                    rest = &tail[1..];
                    if self.buf.len() + line.len() > self.limit {
                        self.buf.clear();
                        events.push(FrameEvent::Oversized);
                        continue;
                    }
                    let frame = if self.buf.is_empty() {
                        String::from_utf8_lossy(line).into_owned()
                    } else {
                        self.buf.extend_from_slice(line);
                        let full = std::mem::take(&mut self.buf);
                        String::from_utf8_lossy(&full).into_owned()
                    };
                    events.push(FrameEvent::Frame(frame));
                }
                None => {
                    if self.buf.len() + rest.len() > self.limit {
                        self.buf.clear();
                        self.skipping = true;
                        events.push(FrameEvent::Oversized);
                        // Re-enter skip mode to hunt for the newline in
                        // what remains of this slice.
                        continue;
                    }
                    self.buf.extend_from_slice(rest);
                    return;
                }
            }
        }
    }

    /// Flushes the unterminated tail at EOF: a final line without a
    /// newline still counts as a frame. `None` when nothing is pending
    /// (or the pending bytes belong to a discarded oversized line).
    pub fn finish(&mut self) -> Option<String> {
        if self.skipping {
            self.skipping = false;
            self.buf.clear();
            return None;
        }
        if self.buf.is_empty() {
            return None;
        }
        let tail = std::mem::take(&mut self.buf);
        Some(String::from_utf8_lossy(&tail).into_owned())
    }

    /// Bytes currently buffered for the in-progress frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(decoder: &mut FrameDecoder, bytes: &[u8]) -> Vec<FrameEvent> {
        let mut events = Vec::new();
        decoder.push(bytes, &mut events);
        events
    }

    #[test]
    fn frames_split_across_reads_reassemble() {
        let mut d = FrameDecoder::new(1024);
        // One frame delivered a byte at a time.
        let line = b"{\"v\":2,\"op\":\"ping\"}\n";
        let mut events = Vec::new();
        for &b in line.iter() {
            d.push(&[b], &mut events);
        }
        assert_eq!(events, vec![FrameEvent::Frame("{\"v\":2,\"op\":\"ping\"}".into())]);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn pipelined_frames_in_one_read_all_surface() {
        let mut d = FrameDecoder::new(1024);
        let events = drive(&mut d, b"one\ntwo\nthree\npartial");
        assert_eq!(
            events,
            vec![
                FrameEvent::Frame("one".into()),
                FrameEvent::Frame("two".into()),
                FrameEvent::Frame("three".into()),
            ]
        );
        assert_eq!(d.buffered(), 7);
        assert_eq!(drive(&mut d, b"-done\n"), vec![FrameEvent::Frame("partial-done".into())]);
    }

    #[test]
    fn oversized_frame_rejected_once_and_framing_recovers() {
        let mut d = FrameDecoder::new(8);
        // The limit is crossed mid-line: one Oversized, then silence
        // until the newline, then normal frames again.
        let mut events = drive(&mut d, b"0123456789");
        assert_eq!(events, vec![FrameEvent::Oversized]);
        events = drive(&mut d, b"more-of-the-same-line");
        assert_eq!(events, vec![]);
        events = drive(&mut d, b"tail\nok\n");
        assert_eq!(events, vec![FrameEvent::Frame("ok".into())]);
    }

    #[test]
    fn oversized_complete_line_in_one_read() {
        let mut d = FrameDecoder::new(4);
        let events = drive(&mut d, b"toolong\nok\n");
        assert_eq!(
            events,
            vec![FrameEvent::Oversized, FrameEvent::Frame("ok".into())]
        );
    }

    #[test]
    fn eof_flushes_unterminated_tail() {
        let mut d = FrameDecoder::new(64);
        assert_eq!(drive(&mut d, b"no-newline"), vec![]);
        assert_eq!(d.finish(), Some("no-newline".into()));
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn eof_mid_skip_discards_quietly() {
        let mut d = FrameDecoder::new(4);
        assert_eq!(drive(&mut d, b"oversized-tail"), vec![FrameEvent::Oversized]);
        assert_eq!(d.finish(), None);
    }
}
