//! The resident engine: socket accept loop, tenant-fair worker pool,
//! per-request isolation, and graceful drain.
//!
//! # Life of a request
//!
//! 1. A reader thread (one per connection) assembles newline-delimited
//!    request lines. Malformed lines get a structured error reply —
//!    never a disconnect. `ping` and `shutdown` are answered inline.
//! 2. Admission: the request enters the bounded [`FairQueue`] under its
//!    tenant key, or is shed with an `overloaded` reply (and a
//!    `serve.reject` trace point). During drain the answer is
//!    `draining`.
//! 3. A worker pops the next request round-robin across tenants, arms a
//!    [`CancelToken`] composing the server's drain token with the
//!    request's own deadline, and runs the operation inside
//!    `catch_unwind`. A panic answers `panic`, poisons the circuit's
//!    warm-cache entry, and leaves the process (and every other
//!    request) untouched.
//! 4. The reply is written back over the connection, serialized by a
//!    per-connection writer lock.
//!
//! # Drain
//!
//! SIGTERM (or a `shutdown` request) stops the accept loop, closes the
//! queue (queued work still runs; new work is refused as `draining`),
//! and starts a watchdog that cancels the shared drain token at the
//! drain deadline — wedged SAT obligations and spin probes unwind as
//! cancelled rather than holding the process hostage. Campaign legs
//! observe the same token between jobs and stop with their journal
//! fsync'd, so a drained campaign resumes exactly like a SIGKILLed one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use odcfp_analysis::CancelToken;
use odcfp_core::campaign::{self, CampaignOptions, ManifestCircuit};
use odcfp_core::{Fingerprinter, VerifyPolicy, VerifySession};
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::{CellLibrary, Digest, Netlist};
use odcfp_verilog::write_verilog;

use crate::cache::{CircuitState, Disposition, WarmCache};
use crate::proto::{DesignRef, ErrorCode, Op, Reply, Request};
use crate::queue::{FairQueue, PushError};
use crate::signal;

/// Hard cap on one request line; longer lines are answered
/// `bad_request` instead of buffering without bound.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// How often blocking loops poll their stop conditions.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server construction knobs. [`ServerConfig::default`] is sized for
/// tests and local use; production deployments tune every field.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub listen: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission queue depth across all tenants.
    pub queue_depth: usize,
    /// Warm-cache byte budget (estimated bytes, see
    /// [`WarmCache::estimate_cost`]).
    pub cache_budget: u64,
    /// How long a drain may take before in-flight work is cancelled.
    pub drain_deadline: Duration,
    /// Root directory `*_path`, `out_dir`, and `trace_path` fields
    /// resolve against. Requests cannot escape it.
    pub root: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 64,
            cache_budget: 64 * 1024 * 1024,
            drain_deadline: Duration::from_secs(5),
            root: PathBuf::from("."),
        }
    }
}

/// What a completed serve run did, for the operator-facing exit line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered with a success reply.
    pub served: u64,
    /// Requests shed (`overloaded`/`draining`) or refused as malformed.
    pub rejected: u64,
    /// Requests that panicked inside their isolation boundary.
    pub panics: u64,
}

struct Shared {
    config: ServerConfig,
    queue: FairQueue<Job>,
    cache: WarmCache,
    /// This server's drain flag (the global [`signal`] flag ORs in).
    draining: AtomicBool,
    /// Cancels in-flight work when the drain deadline fires.
    drain_token: CancelToken,
    /// Readers exit once set (after workers finish).
    stop: AtomicBool,
    served: AtomicU64,
    rejected: AtomicU64,
    panics: AtomicU64,
    library: Arc<CellLibrary>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::drain_requested()
    }
}

/// One admitted request plus where to send its reply.
struct Job {
    request: Request,
    writer: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

/// A bound, not-yet-running server. Splitting bind from run lets
/// callers learn the OS-chosen port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        Ok(Server { listener, config })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until drain (SIGTERM or a `shutdown`
    /// request), then drains and returns the summary.
    ///
    /// # Errors
    ///
    /// Only listener-level I/O errors; per-connection and per-request
    /// failures are answered in-protocol.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let Server { listener, config } = self;
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_depth),
            cache: WarmCache::new(config.cache_budget),
            draining: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            library: CellLibrary::standard(),
            config,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let mut readers: Vec<JoinHandle<()>> = Vec::new();

        listener.set_nonblocking(true)?;
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    readers.push(std::thread::spawn(move || reader_loop(&shared, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                // Transient per-connection accept failures must not
                // take the daemon down.
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }

        // Drain: no new admissions; queued work still runs. The
        // watchdog cancels the shared token at the deadline so wedged
        // work unwinds as cancelled.
        odcfp_obs::point("serve.drain")
            .field("queued", shared.queue.len())
            .nondet()
            .emit();
        shared.queue.close();
        let workers_done = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let shared = Arc::clone(&shared);
            let workers_done = Arc::clone(&workers_done);
            std::thread::spawn(move || {
                let armed = Instant::now();
                while !workers_done.load(Ordering::SeqCst) {
                    if armed.elapsed() >= shared.config.drain_deadline {
                        shared.drain_token.cancel();
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        for w in workers {
            let _ = w.join();
        }
        workers_done.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        shared.stop.store(true, Ordering::SeqCst);
        for r in readers {
            let _ = r.join();
        }

        let summary = ServeSummary {
            served: shared.served.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
            panics: shared.panics.load(Ordering::SeqCst),
        };
        let stats = shared.cache.stats();
        odcfp_obs::point("serve.summary")
            .field("served", summary.served)
            .field("rejected", summary.rejected)
            .field("panics", summary.panics)
            .field("cache_hits", stats.hits)
            .field("cache_evictions", stats.evictions)
            .nondet()
            .emit();
        odcfp_obs::flush();
        Ok(summary)
    }
}

/// Incremental line assembly over a socket with a read timeout, safe
/// against torn reads (a timeout mid-line never loses buffered bytes,
/// unlike `BufRead::read_line`).
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum LineEvent {
    Line(String),
    /// Peer closed or the server is stopping.
    Eof,
    /// A single line exceeded [`MAX_LINE_BYTES`].
    Oversized,
}

impl LineReader {
    fn next(&mut self, stop: impl Fn() -> bool) -> LineEvent {
        loop {
            if let Some(idx) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(idx + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                self.buf.clear();
                return LineEvent::Oversized;
            }
            if stop() {
                return LineEvent::Eof;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: a final unterminated line still counts.
                    if self.buf.is_empty() {
                        return LineEvent::Eof;
                    }
                    let line = std::mem::take(&mut self.buf);
                    return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => return LineEvent::Eof,
            }
        }
    }
}

fn write_reply(writer: &Arc<Mutex<TcpStream>>, reply: &Reply) {
    let mut line = reply.to_line();
    line.push('\n');
    if let Ok(mut stream) = writer.lock() {
        // A vanished client is its own problem; the server presses on.
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
}

/// Per-connection thread: assemble lines, answer control ops inline,
/// admit the rest.
fn reader_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    loop {
        let line = match reader.next(|| shared.stop.load(Ordering::SeqCst)) {
            LineEvent::Line(line) => line,
            LineEvent::Eof => return,
            LineEvent::Oversized => {
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                write_reply(
                    &writer,
                    &Reply::err(
                        "",
                        ErrorCode::BadRequest,
                        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    ),
                );
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse_line(&line) {
            Ok(request) => request,
            Err(e) => {
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                write_reply(&writer, &Reply::err(&e.id, e.code, e.message));
                continue;
            }
        };
        match request.op {
            // Control ops answer inline; they must work even when the
            // queue is full or draining.
            Op::Ping => {
                shared.served.fetch_add(1, Ordering::SeqCst);
                write_reply(
                    &writer,
                    &Reply::ok(&request.id, "ping").field("draining", shared.draining()),
                );
            }
            Op::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                shared.served.fetch_add(1, Ordering::SeqCst);
                write_reply(&writer, &Reply::ok(&request.id, "shutdown"));
            }
            _ => {
                let job = Job {
                    writer: Arc::clone(&writer),
                    enqueued: Instant::now(),
                    request,
                };
                let tenant = job.request.tenant.clone();
                let id = job.request.id.clone();
                let op = job.request.op.name();
                if let Err(e) = shared.queue.push(&tenant, job) {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    let (code, message) = match e {
                        PushError::Full => (
                            ErrorCode::Overloaded,
                            format!(
                                "admission queue full (depth {}); retry with backoff",
                                shared.config.queue_depth
                            ),
                        ),
                        PushError::Closed => {
                            (ErrorCode::Draining, "server is draining".to_owned())
                        }
                    };
                    odcfp_obs::point("serve.reject")
                        .field("tenant", tenant.as_str())
                        .field("op", op)
                        .field("code", code.as_str())
                        .nondet()
                        .emit();
                    write_reply(&writer, &Reply::err(&id, code, message));
                }
            }
        }
    }
}

/// Worker thread: pop round-robin, execute under isolation, reply.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some((tenant, job)) = shared.queue.pop() {
        odcfp_obs::point("serve.queue_wait")
            .field("tenant", tenant.as_str())
            .field("us", job.enqueued.elapsed().as_micros() as u64)
            .nondet()
            .emit();
        let mut span = odcfp_obs::span("serve.request");
        span.field("op", job.request.op.name());
        span.field("tenant", tenant.as_str());

        let token = shared.drain_token.bounded_by(
            job.request
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
        );
        // The circuit the request touched, for poisoning on panic.
        let mut touched: Option<Digest> = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(shared, &job.request, &token, &mut touched)
        }));
        let reply = match outcome {
            Ok(reply) => reply,
            Err(payload) => {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                let text = panic_text(payload);
                let mut message = format!("request panicked: {text}");
                if let Some(digest) = touched {
                    let strikes = shared.cache.poison(digest);
                    message.push_str(&format!(
                        " (circuit warm state dropped; strike {strikes}/{})",
                        crate::cache::QUARANTINE_THRESHOLD
                    ));
                }
                Reply::err(&job.request.id, ErrorCode::Panic, message)
            }
        };
        span.field(
            "outcome",
            reply
                .error
                .clone()
                .unwrap_or_else(|| "ok".to_owned()),
        );
        if reply.ok {
            shared.served.fetch_add(1, Ordering::SeqCst);
        } else {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
        }
        write_reply(&job.writer, &reply);
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// An in-protocol failure: code + message, turned into an error reply.
type OpError = (ErrorCode, String);

fn bad(message: impl Into<String>) -> OpError {
    (ErrorCode::BadRequest, message.into())
}

/// Resolves a request-supplied relative path under the serve root.
/// Absolute paths and `..` traversal are refused: tenants address only
/// the tree the operator exported.
fn resolve_root(root: &Path, path: &str) -> Result<PathBuf, OpError> {
    let rel = Path::new(path);
    if rel.is_absolute()
        || rel
            .components()
            .any(|c| matches!(c, std::path::Component::ParentDir))
    {
        return Err(bad(format!(
            "path {path:?} must be relative to the serve root, without `..`"
        )));
    }
    Ok(root.join(rel))
}

fn parse_policy(spec: Option<&str>, default: VerifyPolicy) -> Result<VerifyPolicy, OpError> {
    match spec {
        None => Ok(default),
        Some("quick") => Ok(VerifyPolicy::quick()),
        Some("strict") => Ok(VerifyPolicy::strict()),
        Some(s) => match s.strip_prefix("budgeted:").and_then(|n| n.parse().ok()) {
            Some(budget) => Ok(VerifyPolicy::budgeted(budget)),
            None => Err(bad(format!(
                "policy must be quick, strict, or budgeted:<conflicts>; got {s:?}"
            ))),
        },
    }
}

/// Loads netlist source text for a design reference. Returns the text
/// and its format tag.
fn design_source(shared: &Shared, design: &DesignRef) -> Result<(String, String), OpError> {
    match design {
        DesignRef::Text { text, format } => Ok((text.clone(), format.clone())),
        DesignRef::Path(path) => {
            let resolved = resolve_root(&shared.config.root, path)?;
            let format = if path.ends_with(".blif") { "blif" } else { "v" };
            let text = std::fs::read_to_string(&resolved)
                .map_err(|e| bad(format!("reading {path:?}: {e}")))?;
            Ok((text, format.to_owned()))
        }
    }
}

fn parse_netlist(shared: &Shared, text: &str, format: &str) -> Result<Netlist, OpError> {
    match format {
        "blif" => {
            let network =
                odcfp_blif::parse_blif(text).map_err(|e| bad(format!("parsing BLIF: {e}")))?;
            odcfp_synth::map_network(&network, Arc::clone(&shared.library))
                .map_err(|e| bad(format!("mapping BLIF: {e}")))
        }
        _ => odcfp_verilog::parse_verilog(text, Arc::clone(&shared.library))
            .map_err(|e| bad(format!("parsing Verilog: {e}"))),
    }
}

/// Warm-path entry: resolve, digest, quarantine-check, and either
/// serve the cached state or build and admit it.
fn circuit_state(
    shared: &Shared,
    design: &DesignRef,
    touched: &mut Option<Digest>,
) -> Result<(Arc<Mutex<CircuitState>>, Disposition), OpError> {
    let (text, format) = design_source(shared, design)?;
    let digest = Digest::of(text.as_bytes());
    if shared.cache.is_quarantined(digest) {
        return Err((
            ErrorCode::Quarantined,
            format!("circuit {digest} is quarantined after repeated panics"),
        ));
    }
    // From here on a panic is attributed to this circuit.
    *touched = Some(digest);
    if let Some(state) = shared.cache.lookup(digest) {
        return Ok((state, Disposition::Hit));
    }
    let netlist = parse_netlist(shared, &text, &format)?;
    let cost = WarmCache::estimate_cost(text.len(), netlist.num_gates());
    let fingerprinter = Arc::new(
        Fingerprinter::new(netlist).map_err(|e| bad(format!("analysing circuit: {e}")))?,
    );
    let session = VerifySession::new(fingerprinter.base())
        .map_err(|e| bad(format!("building verify session: {e}")))?;
    Ok(shared.cache.admit(
        digest,
        CircuitState {
            fingerprinter,
            session,
        },
        cost,
    ))
}

/// `deadline` when the request's own deadline fired, `draining` when
/// the drain watchdog cancelled us.
fn cancel_code(shared: &Shared) -> (ErrorCode, &'static str) {
    if shared.drain_token.is_cancelled() {
        (ErrorCode::Draining, "cancelled by server drain")
    } else {
        (ErrorCode::Deadline, "request deadline exceeded")
    }
}

/// Executes one queued operation. Runs inside the worker's
/// `catch_unwind`; may panic freely.
fn execute(
    shared: &Shared,
    request: &Request,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Reply {
    let id = &request.id;
    let result: Result<Reply, OpError> = match &request.op {
        Op::Ping => Ok(Reply::ok(id, "ping")),
        Op::Shutdown => Ok(Reply::ok(id, "shutdown")),
        Op::Locations { design } => circuit_state(shared, design, touched).map(|(state, disp)| {
            let state = state.lock().unwrap_or_else(PoisonError::into_inner);
            let capacity = state.fingerprinter.capacity();
            Reply::ok(id, "locations")
                .field("locations", capacity.num_locations)
                .field("candidates", capacity.num_candidates)
                .field("log2_combinations", format!("{:.2}", capacity.log2_combinations))
                .field("cache", disp.as_str())
        }),
        Op::Embed {
            design,
            seed,
            bits,
            policy,
        } => embed_op(shared, id, design, *seed, bits.as_deref(), policy.as_deref(), token, touched),
        Op::Verify {
            golden,
            candidate,
            policy,
        } => verify_op(shared, id, golden, candidate, policy.as_deref(), token, touched),
        Op::Campaign {
            manifest,
            out_dir,
            resume,
        } => campaign_op(shared, id, manifest, out_dir, *resume, token),
        Op::Report { trace_path } => report_op(shared, id, trace_path),
        Op::Probe { mode } => probe_op(id, mode, token),
    };
    match result {
        Ok(reply) => reply,
        Err((code, message)) => Reply::err(id, code, message),
    }
}

#[allow(clippy::too_many_arguments)]
fn embed_op(
    shared: &Shared,
    id: &str,
    design: &DesignRef,
    seed: Option<u64>,
    bits: Option<&str>,
    policy: Option<&str>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    let policy = parse_policy(policy, VerifyPolicy::quick())?;
    let (state, disp) = circuit_state(shared, design, touched)?;
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let n = state.fingerprinter.locations().len();
    let bits: Vec<bool> = match (bits, seed) {
        (Some(s), _) => {
            let parsed: Result<Vec<bool>, OpError> = s
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(bad(format!("bad bit {other:?}"))),
                })
                .collect();
            let parsed = parsed?;
            if parsed.len() != n {
                return Err(bad(format!(
                    "bit string has {} bits; design has {n} locations",
                    parsed.len()
                )));
            }
            parsed
        }
        // Same derivation as `odcfp embed --seed` and the campaign
        // runner, so served copies are bit-identical to batch ones.
        (None, Some(seed)) => {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..n).map(|_| rng.next_bool()).collect()
        }
        (None, None) => return Err(bad("embed needs seed or bits")),
    };
    let CircuitState {
        fingerprinter,
        session,
    } = &mut *state;
    let (copy, verdict) = fingerprinter
        .embed_with_session_cancellable(session, &bits, &policy, token)
        .map_err(|e| {
            if token.is_cancelled() {
                let (code, why) = cancel_code(shared);
                (code, format!("{why} during embed"))
            } else {
                (ErrorCode::Internal, format!("embedding: {e}"))
            }
        })?;
    if token.is_cancelled() {
        let (code, why) = cancel_code(shared);
        return Err((code, format!("{why} during embed verification")));
    }
    Ok(Reply::ok(id, "embed")
        .field("bits", copy.bit_string())
        .field("verdict", verdict.name())
        .field("netlist", write_verilog(copy.netlist()))
        .field("cache", disp.as_str()))
}

fn verify_op(
    shared: &Shared,
    id: &str,
    golden: &DesignRef,
    candidate: &DesignRef,
    policy: Option<&str>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    let policy = parse_policy(policy, VerifyPolicy::strict())?;
    let (cand_text, cand_format) = design_source(shared, candidate)?;
    let (state, disp) = circuit_state(shared, golden, touched)?;
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let candidate = parse_netlist(shared, &cand_text, &cand_format)?;
    let report = state
        .session
        .verify_cancellable(&candidate, &policy, token)
        .map_err(|e| bad(format!("verify: {e}")))?;
    if token.is_cancelled() {
        // The ladder degraded to Undecided because we cancelled it —
        // answer with the cause, not a verdict that hides it.
        let (code, why) = cancel_code(shared);
        return Err((code, format!("{why}; verification undecided")));
    }
    Ok(Reply::ok(id, "verify")
        .field("verdict", report.verdict.name())
        .field("sat_conflicts", report.stats.sat_conflicts)
        .field("fast_path", report.stats.used_fast_path)
        .field("cache", disp.as_str()))
}

fn campaign_op(
    shared: &Shared,
    id: &str,
    manifest_text: &str,
    out_dir: &str,
    resume: bool,
    token: &CancelToken,
) -> Result<Reply, OpError> {
    let manifest = campaign::Manifest::parse(manifest_text)
        .map_err(|e| bad(format!("manifest: {e}")))?;
    let dir = resolve_root(&shared.config.root, out_dir)?;
    let load = |circuit: &ManifestCircuit| -> Result<Netlist, String> {
        let campaign::CircuitSource::Path(path) = &circuit.source else {
            unreachable!("probe sources never reach the loader");
        };
        let (text, format) = design_source(shared, &DesignRef::Path(path.clone()))
            .map_err(|(_, m)| m)?;
        parse_netlist(shared, &text, &format).map_err(|(_, m)| m)
    };
    let emit = |n: &Netlist| write_verilog(n);
    let env = campaign::CampaignEnv {
        load: &load,
        emit: &emit,
    };
    // Chunked execution: one job (or one delta window) per leg, journal
    // replayed in between. Progress is durable at every step, and the
    // drain token gets a look-in between legs, so a long campaign
    // cannot hold drain hostage — the journal resumes it, served or
    // batch, later. The cache carries fingerprinters, verify sessions,
    // and delta-mode code-space proofs across legs, so chunking costs
    // journal replays, not re-analysis or re-proving.
    let mut cache = campaign::CampaignCache::default();
    let mut resume_leg = resume;
    let mut executed = 0usize;
    loop {
        let options = CampaignOptions {
            resume: resume_leg,
            stop_after: Some(1),
        };
        let summary =
            campaign::run_cached(&manifest, &dir, &env, &options, &mut cache, &mut |_| {})
                .map_err(|e| match e {
                    campaign::CampaignError::Io { .. } => (ErrorCode::Internal, e.to_string()),
                    _ => bad(e.to_string()),
                })?;
        executed += summary.executed;
        if summary.remaining == 0 {
            let mut reply = Reply::ok(id, "campaign")
                .field("total", summary.total)
                .field("completed", summary.completed)
                .field("executed", executed)
                .field("poisoned", summary.poisoned.len())
                .field("clean", summary.is_clean());
            // Delta campaigns stream artifacts as codebooks: tell the
            // client where each circuit's codebook landed so it can
            // fetch deltas instead of full netlists.
            if manifest.artifact_mode == campaign::ArtifactMode::Delta {
                let codebooks: Vec<String> = manifest
                    .circuits
                    .iter()
                    .filter(|c| matches!(c.source, campaign::CircuitSource::Path(_)))
                    .map(|c| odcfp_core::codebook::codebook_file(&c.name))
                    .collect();
                reply = reply
                    .field("artifacts", "delta")
                    .field("codebooks", codebooks.join(","));
            }
            return Ok(reply);
        }
        resume_leg = true;
        if token.is_cancelled() {
            let (code, why) = cancel_code(shared);
            return Err((
                code,
                format!(
                    "{why} after {executed} job(s); journal at {out_dir:?} resumes the rest"
                ),
            ));
        }
    }
}

fn report_op(shared: &Shared, id: &str, trace_path: &str) -> Result<Reply, OpError> {
    let path = resolve_root(&shared.config.root, trace_path)?;
    let trace = odcfp_obs::report::read_trace(&path)
        .map_err(|e| bad(format!("reading {trace_path:?}: {e}")))?;
    Ok(Reply::ok(id, "report")
        .field("events", trace.events.len())
        .field("skipped_lines", trace.skipped_lines)
        .field("summary", odcfp_obs::report::summarize(&trace)))
}

fn probe_op(id: &str, mode: &str, token: &CancelToken) -> Result<Reply, OpError> {
    match mode {
        "panic" => panic!("fault probe: deliberate panic in request {id}"),
        _ => {
            // Spin until cancelled; hard cap mirrors the campaign probe.
            let cap = Duration::from_secs(30);
            let started = Instant::now();
            while !token.is_cancelled() && started.elapsed() < cap {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err((
                ErrorCode::Deadline,
                format!("spin probe cancelled after {:?}", started.elapsed()),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_root_confines_paths() {
        let root = Path::new("/srv/odcfp");
        assert_eq!(
            resolve_root(root, "designs/c17.v").unwrap(),
            PathBuf::from("/srv/odcfp/designs/c17.v")
        );
        assert!(resolve_root(root, "/etc/passwd").is_err());
        assert!(resolve_root(root, "../secrets").is_err());
        assert!(resolve_root(root, "a/../../b").is_err());
    }

    #[test]
    fn parse_policy_grammar() {
        assert!(parse_policy(Some("quick"), VerifyPolicy::strict()).is_ok());
        assert!(parse_policy(Some("strict"), VerifyPolicy::quick()).is_ok());
        assert!(parse_policy(Some("budgeted:5000"), VerifyPolicy::quick()).is_ok());
        assert!(parse_policy(Some("budgeted:x"), VerifyPolicy::quick()).is_err());
        assert!(parse_policy(Some("frob"), VerifyPolicy::quick()).is_err());
    }
}
