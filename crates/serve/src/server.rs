//! Server lifecycle: configuration, shared state, the two connection
//! modes, and graceful drain.
//!
//! # Life of a request
//!
//! 1. The connection layer assembles newline-delimited request lines
//!    through the [`crate::frame::FrameDecoder`] — see the
//!    framing grammar in docs/PROTOCOL.md §2. In the
//!    default [`ConnMode::Reactor`] a single event-loop thread owns
//!    every socket (see the `reactor` module); in the legacy
//!    [`ConnMode::Threaded`] each connection gets a reader thread.
//!    Malformed lines get a structured error reply — never a
//!    disconnect. `ping` and `shutdown` are answered inline.
//! 2. Admission (the `executor` module's `admit`): the request enters the
//!    bounded [`FairQueue`] under its tenant key, or is shed with an
//!    `overloaded` reply (and a `serve.reject` trace point). During
//!    drain the answer is `draining`.
//! 3. A worker pops round-robin across tenants, arms a
//!    [`CancelToken`] composing the server's drain token with the
//!    request's deadline, and runs the operation inside `catch_unwind`.
//!    Verify requests sharing a golden circuit may coalesce into one
//!    batch (see the `executor` module). A panic answers `panic`, poisons
//!    the circuit's warm-cache entry, and leaves the process (and every
//!    other request) untouched.
//! 4. The reply is routed back to the connection layer: written
//!    directly in threaded mode, mailed to the reactor otherwise.
//!    Replies whose payload crosses the stream threshold leave as
//!    `chunk`/`done` frame sequences under per-connection backpressure.
//!
//! # Drain
//!
//! SIGTERM (or a `shutdown` request) stops the accept loop, closes the
//! queue (queued work still runs; new work is refused as `draining`),
//! and starts a watchdog that cancels the shared drain token at the
//! drain deadline — wedged SAT obligations and spin probes unwind as
//! cancelled rather than holding the process hostage. Campaign legs
//! observe the same token between jobs and stop with their journal
//! fsync'd, so a drained campaign resumes exactly like a SIGKILLed one.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use odcfp_analysis::CancelToken;
use odcfp_netlist::CellLibrary;

use crate::cache::WarmCache;
use crate::executor::{admit, worker_loop, Admit, Job, ReplyTo};
use crate::frame::{FrameDecoder, FrameEvent};
use crate::proto::{ErrorCode, Reply, Request};
use crate::queue::FairQueue;
use crate::signal;
use crate::stream::{DEFAULT_STREAM_CHUNK, DEFAULT_STREAM_THRESHOLD};

/// How often blocking loops poll their stop conditions.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One event-loop thread owns all sockets (`poll(2)` readiness).
    /// Scales to thousands of idle connections; replies may stream.
    Reactor,
    /// One OS thread per connection (the pre-v2 architecture). Kept for
    /// comparison benchmarks and as a fallback; replies are always
    /// single lines and a slow reader blocks its worker mid-write.
    Threaded,
}

/// Server construction knobs. [`ServerConfig::default`] is sized for
/// tests and local use; production deployments tune every field (see
/// docs/SERVING.md §2 for capacity planning).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub listen: String,
    /// Connection multiplexing mode.
    pub mode: ConnMode,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission queue depth across all tenants.
    pub queue_depth: usize,
    /// Maximum simultaneous connections (reactor mode). Beyond it, new
    /// connections get one `overloaded` line and are closed.
    pub max_conns: usize,
    /// Warm-cache byte budget (estimated bytes, see
    /// [`WarmCache::estimate_cost`]).
    pub cache_budget: u64,
    /// How long a drain may take before in-flight work is cancelled.
    pub drain_deadline: Duration,
    /// Hard cap on one request line; longer lines are answered
    /// `bad_request` instead of buffering without bound.
    pub max_line: usize,
    /// How long a worker waits for same-golden verify requests to
    /// coalesce into one batch. Zero disables batching.
    pub batch_window: Duration,
    /// Maximum verify requests coalesced into one batch.
    pub batch_max: usize,
    /// Reply payload size (bytes) at which v2 replies switch to
    /// `chunk`/`done` streaming (reactor mode only). `usize::MAX`
    /// disables streaming.
    pub stream_threshold: usize,
    /// Payload bytes per `chunk` frame.
    pub stream_chunk: usize,
    /// Root directory `*_path`, `out_dir`, and `trace_path` fields
    /// resolve against. Requests cannot escape it.
    pub root: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            mode: ConnMode::Reactor,
            workers: 2,
            queue_depth: 64,
            max_conns: 1024,
            cache_budget: 64 * 1024 * 1024,
            drain_deadline: Duration::from_secs(5),
            max_line: 8 * 1024 * 1024,
            batch_window: Duration::from_millis(2),
            batch_max: 16,
            stream_threshold: DEFAULT_STREAM_THRESHOLD,
            stream_chunk: DEFAULT_STREAM_CHUNK,
            root: PathBuf::from("."),
        }
    }
}

/// What a completed serve run did, for the operator-facing exit line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered with a success reply.
    pub served: u64,
    /// Requests shed (`overloaded`/`draining`) or refused as malformed.
    pub rejected: u64,
    /// Requests that panicked inside their isolation boundary.
    pub panics: u64,
}

/// State shared by the connection layer and the worker pool.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) queue: FairQueue<Job>,
    pub(crate) cache: WarmCache,
    /// This server's drain flag (the global [`signal`] flag ORs in).
    pub(crate) draining: AtomicBool,
    /// Cancels in-flight work when the drain deadline fires.
    pub(crate) drain_token: CancelToken,
    /// Threaded-mode readers exit once set (after workers finish).
    pub(crate) stop: AtomicBool,
    pub(crate) served: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) panics: AtomicU64,
    /// Requests admitted to the queue whose responses have not yet been
    /// handed back to the connection layer. Drives drain completion in
    /// reactor mode.
    pub(crate) in_flight: AtomicU64,
    pub(crate) library: Arc<CellLibrary>,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::drain_requested()
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets
/// callers learn the OS-chosen port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        Ok(Server { listener, config })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server until drain (SIGTERM or a `shutdown` request),
    /// then drains and returns the summary.
    ///
    /// # Errors
    ///
    /// Only listener-level I/O errors; per-connection and per-request
    /// failures are answered in-protocol.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let Server { listener, config } = self;
        let mode = config.mode;
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_depth),
            cache: WarmCache::new(config.cache_budget),
            draining: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            library: CellLibrary::standard(),
            config,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        match mode {
            ConnMode::Reactor => {
                // The reactor owns accept, framing, drain sequencing,
                // and outbound flush; it returns once drained.
                crate::reactor::run_reactor(listener, &shared)?;
                for w in workers {
                    let _ = w.join();
                }
            }
            ConnMode::Threaded => {
                run_threaded(listener, &shared, workers)?;
            }
        }

        let summary = ServeSummary {
            served: shared.served.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
            panics: shared.panics.load(Ordering::SeqCst),
        };
        let stats = shared.cache.stats();
        odcfp_obs::point("serve.summary")
            .field("served", summary.served)
            .field("rejected", summary.rejected)
            .field("panics", summary.panics)
            .field("cache_hits", stats.hits)
            .field("cache_evictions", stats.evictions)
            .nondet()
            .emit();
        odcfp_obs::flush();
        Ok(summary)
    }
}

/// The legacy thread-per-connection accept loop and drain sequence.
fn run_threaded(
    listener: TcpListener,
    shared: &Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
) -> std::io::Result<()> {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    listener.set_nonblocking(true)?;
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                readers.push(std::thread::spawn(move || reader_loop(&shared, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient per-connection accept failures must not take
            // the daemon down.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }

    // Drain: no new admissions; queued work still runs. The watchdog
    // cancels the shared token at the deadline so wedged work unwinds
    // as cancelled.
    odcfp_obs::point("serve.drain")
        .field("queued", shared.queue.len())
        .nondet()
        .emit();
    shared.queue.close();
    let workers_done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let shared = Arc::clone(shared);
        let workers_done = Arc::clone(&workers_done);
        std::thread::spawn(move || {
            let armed = Instant::now();
            while !workers_done.load(Ordering::SeqCst) {
                if armed.elapsed() >= shared.config.drain_deadline {
                    shared.drain_token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    for w in workers {
        let _ = w.join();
    }
    workers_done.store(true, Ordering::SeqCst);
    let _ = watchdog.join();
    shared.stop.store(true, Ordering::SeqCst);
    for r in readers {
        let _ = r.join();
    }
    Ok(())
}

/// Threaded-mode per-connection thread: assemble frames, answer control
/// ops inline, admit the rest.
fn reader_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut decoder = FrameDecoder::new(shared.config.max_line);
    let mut events = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a final unterminated line still counts.
                if let Some(tail) = decoder.finish() {
                    handle_threaded_line(shared, &writer, &tail);
                }
                return;
            }
            Ok(n) => {
                decoder.push(&chunk[..n], &mut events);
                for event in events.drain(..) {
                    match event {
                        FrameEvent::Frame(line) => {
                            handle_threaded_line(shared, &writer, &line);
                        }
                        FrameEvent::Oversized => {
                            shared.rejected.fetch_add(1, Ordering::SeqCst);
                            write_line(
                                &writer,
                                &Reply::err(
                                    "",
                                    ErrorCode::BadRequest,
                                    format!(
                                        "request line exceeds {} bytes",
                                        shared.config.max_line
                                    ),
                                ),
                            );
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

fn handle_threaded_line(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, line: &str) {
    if line.trim().is_empty() {
        return;
    }
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(e) => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            write_line(writer, &Reply::err(&e.id, e.code, e.message).versioned(e.version));
            return;
        }
    };
    match admit(shared, request, ReplyTo::Direct(Arc::clone(writer))) {
        Admit::Immediate(reply) => write_line(writer, &reply),
        Admit::Queued => {}
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, reply: &Reply) {
    use std::io::Write as _;
    let mut line = reply.to_line();
    line.push('\n');
    if let Ok(mut stream) = writer.lock() {
        // A vanished client is its own problem; the server presses on.
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
}
