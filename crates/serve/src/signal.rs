//! SIGTERM/SIGINT → graceful-drain flag.
//!
//! The handler does the only async-signal-safe thing possible: it sets
//! a process-global atomic. The server's accept loop polls
//! [`drain_requested`] and starts its drain sequence when it flips.
//!
//! The workspace is dependency-free, so instead of `libc` this module
//! declares `signal(2)` directly — `std` already links the platform C
//! library, so the symbol resolves. It is the one place unsafe code is
//! permitted (`#[allow]` under the crate's `#![deny(unsafe_code)]`),
//! and it is gated to Unix; elsewhere [`install`] is a no-op and drain
//! is reachable only through the protocol's `shutdown` op.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT has been received (or [`trigger`] called).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Raises the drain flag in-process — the `shutdown` protocol op and
/// tests use this path; signals use the handler.
pub fn trigger() {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, DRAIN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from the platform libc `std` links. The handler
        // is passed and returned as a raw pointer-sized value so the
        // declaration needs no `sighandler_t` typedef.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        DRAIN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the C library's own entry point; the
        // handler performs a single lock-free atomic store.
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (no-op off Unix).
pub fn install() {
    imp::install();
}
