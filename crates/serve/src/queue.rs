//! Bounded, tenant-fair admission queue.
//!
//! Admission control and fairness live here, decoupled from the socket
//! and worker machinery:
//!
//! * **Bounded**: [`FairQueue::push`] never blocks and never buffers
//!   beyond the configured depth — a full queue is an immediate
//!   [`PushError::Full`], which the server translates into a structured
//!   `overloaded` reply. Backpressure, not unbounded memory growth.
//! * **Fair**: jobs are held in per-tenant FIFO lanes and dispensed
//!   round-robin across tenants, so a tenant that floods the queue gets
//!   its own lane deep, not everyone else's latency. Within a tenant,
//!   order is preserved.
//! * **Drainable**: [`FairQueue::close`] stops admission but lets
//!   already-admitted work drain; [`FairQueue::pop`] returns `None`
//!   only once the queue is both closed and empty.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the request.
    Full,
    /// The queue is closed (drain in progress); no new admissions.
    Closed,
}

struct State<T> {
    /// One FIFO lane per tenant with queued work.
    lanes: BTreeMap<String, VecDeque<T>>,
    /// Round-robin rotation over tenants with non-empty lanes.
    rotation: VecDeque<String>,
    /// Total queued items across all lanes.
    len: usize,
    closed: bool,
}

/// A bounded multi-tenant queue with round-robin dispatch.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// Creates a queue admitting at most `capacity` items in total.
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                lanes: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` under `tenant`'s lane.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once
    /// draining. Never blocks.
    pub fn push(&self, tenant: &str, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.len >= self.capacity {
            return Err(PushError::Full);
        }
        let lane = s.lanes.entry(tenant.to_owned()).or_default();
        let was_empty = lane.is_empty();
        lane.push_back(item);
        s.len += 1;
        if was_empty {
            s.rotation.push_back(tenant.to_owned());
        }
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the next item, rotating across tenant lanes. Blocks while
    /// the queue is open and empty; returns `None` once closed *and*
    /// drained.
    pub fn pop(&self) -> Option<(String, T)> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if s.len > 0 {
                let tenant = s.rotation.pop_front().expect("rotation tracks lanes");
                let lane = s.lanes.get_mut(&tenant).expect("rotation tracks lanes");
                let item = lane.pop_front().expect("lanes in rotation are non-empty");
                if lane.is_empty() {
                    s.lanes.remove(&tenant);
                } else {
                    s.rotation.push_back(tenant.clone());
                }
                s.len -= 1;
                return Some((tenant, item));
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes and returns up to `max` queued items satisfying `pred`,
    /// scanning tenants in lane order and preserving FIFO order within
    /// each lane. Used by cross-request batch verification to coalesce
    /// queued requests that share a golden circuit; fairness is
    /// preserved because every drained item is answered by the same
    /// worker invocation that drained it.
    pub fn drain_matching(
        &self,
        max: usize,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Vec<(String, T)> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let s = &mut *guard;
        let tenants: Vec<String> = s.lanes.keys().cloned().collect();
        for tenant in tenants {
            let lane = s.lanes.get_mut(&tenant).expect("lane existed under lock");
            let mut i = 0;
            while i < lane.len() && out.len() < max {
                if pred(&lane[i]) {
                    let item = lane.remove(i).expect("index in bounds");
                    out.push((tenant.clone(), item));
                    s.len -= 1;
                } else {
                    i += 1;
                }
            }
            if lane.is_empty() {
                s.lanes.remove(&tenant);
                s.rotation.retain(|t| t != &tenant);
            }
            if out.len() >= max {
                break;
            }
        }
        out
    }

    /// Stops admission. Queued work still drains; blocked `pop`s wake.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_tenant() {
        let q = FairQueue::new(8);
        for i in 0..4 {
            q.push("t", i).unwrap();
        }
        q.close();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_across_tenants() {
        let q = FairQueue::new(16);
        // A floods first; B and C each queue one item afterwards.
        for i in 0..4 {
            q.push("a", format!("a{i}")).unwrap();
        }
        q.push("b", "b0".to_owned()).unwrap();
        q.push("c", "c0".to_owned()).unwrap();
        q.close();
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        // The flood does not starve b/c: they are served on the first
        // rotation, interleaved with a's lane.
        assert_eq!(order, vec!["a0", "b0", "c0", "a1", "a2", "a3"]);
    }

    #[test]
    fn bounded_admission_rejects_overload() {
        let q = FairQueue::new(2);
        q.push("t", 1).unwrap();
        q.push("u", 2).unwrap();
        assert_eq!(q.push("t", 3), Err(PushError::Full));
        // Shedding frees nothing; consuming does.
        let _ = q.pop().unwrap();
        q.push("t", 3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_new_but_drains_queued() {
        let q = FairQueue::new(4);
        q.push("t", 1).unwrap();
        q.close();
        assert_eq!(q.push("t", 2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(("t".to_owned(), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_matching_removes_only_matches_and_fixes_bookkeeping() {
        let q = FairQueue::new(16);
        for (tenant, item) in
            [("a", 10), ("a", 3), ("b", 11), ("b", 4), ("c", 12)]
        {
            q.push(tenant, item).unwrap();
        }
        // Drain evens (capped at 2): lane order is a, b, c, so the cap
        // stops after a's 10 and b's 4.
        let drained = q.drain_matching(2, |i| i % 2 == 0);
        let items: Vec<i32> = drained.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec![10, 4]);
        assert_eq!(q.len(), 3);
        // Remaining items still pop in fair order, lanes intact.
        q.close();
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        assert_eq!(rest.len(), 3);
        assert!(rest.contains(&3) && rest.contains(&11) && rest.contains(&12));
    }

    #[test]
    fn drain_matching_emptying_a_lane_keeps_pop_sound() {
        let q = FairQueue::new(8);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        let drained = q.drain_matching(8, |i| *i == 1);
        assert_eq!(drained.len(), 1);
        // Lane "a" is gone from rotation; pop must not panic on it.
        assert_eq!(q.pop(), Some(("b".to_owned(), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(FairQueue::<i32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
