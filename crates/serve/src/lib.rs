//! `odcfp serve`: a resident, multi-tenant fingerprinting engine.
//!
//! The batch CLI rebuilds every per-circuit artifact — the location
//! analysis, the strash store, the `SharedMiter` base encoding — on
//! each invocation. This crate keeps them resident: a long-running
//! daemon speaks a newline-delimited JSON protocol ([`proto`]) and
//! serves `locations` / `embed` / `verify` / `campaign` / `report`
//! requests out of a digest-keyed warm cache ([`cache`]).
//!
//! The design center is *robustness under production conditions*, per
//! docs/SERVING.md and DESIGN.md §13:
//!
//! * **Backpressure, not buffering** — admission control through a
//!   bounded tenant-fair queue ([`queue`]); excess load is shed with
//!   structured `overloaded` replies.
//! * **Bounded memory** — the warm cache carries a byte budget with LRU
//!   eviction; under pressure the server degrades to cold rebuilds,
//!   never to OOM.
//! * **Bounded time** — per-request deadlines ride the analysis layer's
//!   `CancelToken` into the SAT core, so one slow obligation cannot
//!   wedge a worker.
//! * **Fault isolation** — every request runs inside `catch_unwind`; a
//!   panicking netlist answers an error, poisons only its own cache
//!   entry, and after repeated strikes is quarantined — the process
//!   survives.
//! * **Graceful drain** — SIGTERM ([`signal`]) stops admission,
//!   finishes or cancels in-flight work within a drain deadline, and
//!   leaves campaign journals fsync'd for resume.
//!
//! Verdicts served warm are bit-identical to the batch CLI's: caching
//! changes how fast an answer arrives, never what it is.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod proto;
pub mod queue;
pub mod server;
pub mod signal;

pub use cache::{CacheStats, WarmCache};
pub use proto::{ErrorCode, Op, Reply, Request, PROTO_VERSION};
pub use queue::FairQueue;
pub use server::{ServeSummary, Server, ServerConfig};
