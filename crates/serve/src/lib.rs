//! `odcfp serve`: a resident, multi-tenant fingerprinting engine.
//!
//! The batch CLI rebuilds every per-circuit artifact — the location
//! analysis, the strash store, the `SharedMiter` base encoding — on
//! each invocation. This crate keeps them resident: a long-running
//! daemon speaks a newline-delimited JSON protocol ([`proto`],
//! normatively specified in docs/PROTOCOL.md) and serves `locations` /
//! `embed` / `verify` / `campaign` / `report` requests out of a
//! digest-keyed warm cache ([`cache`]).
//!
//! Connections are multiplexed by an event-driven reactor (`reactor`):
//! one thread owns every socket through nonblocking I/O and `poll(2)`
//! readiness, so idle connections cost a few hundred bytes instead of
//! an OS thread. Requests flow through framing ([`frame`]) and
//! admission into the tenant-fair queue ([`queue`]); a fixed worker
//! pool (`executor`) runs them under deadlines, coalescing verify
//! requests that share a golden circuit into single warm-miter batch
//! probes. Large replies stream back as `chunk`/`done` frames
//! ([`stream`]) paced by each connection's own socket. The pre-v2
//! thread-per-connection layer survives as
//! [`server::ConnMode::Threaded`] for comparison benchmarks.
//!
//! The design center is *robustness under production conditions*, per
//! docs/SERVING.md and DESIGN.md §13/§17:
//!
//! * **Backpressure, not buffering** — admission control through a
//!   bounded tenant-fair queue ([`queue`]); excess load is shed with
//!   structured `overloaded` replies. Slow readers stall only their own
//!   connection's outbound queue, never a worker.
//! * **Bounded memory** — the warm cache carries a byte budget with LRU
//!   eviction; under pressure the server degrades to cold rebuilds,
//!   never to OOM.
//! * **Bounded time** — per-request deadlines ride the analysis layer's
//!   `CancelToken` into the SAT core, so one slow obligation cannot
//!   wedge a worker.
//! * **Fault isolation** — every request (and every verify batch) runs
//!   inside `catch_unwind`; a panicking netlist answers an error,
//!   poisons only its own cache entry, and after repeated strikes is
//!   quarantined — the process survives.
//! * **Graceful drain** — SIGTERM ([`signal`]) stops admission,
//!   finishes or cancels in-flight work within a drain deadline,
//!   flushes outbound streams, and leaves campaign journals fsync'd for
//!   resume.
//!
//! Verdicts served warm — or batched — are identical to the batch
//! CLI's: caching and coalescing change how fast an answer arrives,
//! never what it is.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub(crate) mod executor;
pub mod frame;
pub mod proto;
pub mod queue;
pub(crate) mod reactor;
pub mod server;
pub mod signal;
pub mod stream;

pub use cache::{CacheStats, WarmCache};
pub use frame::{FrameDecoder, FrameEvent};
pub use proto::{
    payload_digest, ErrorCode, Frame, Op, Reply, Request, MIN_PROTO_VERSION, PROTO_VERSION,
};
pub use queue::FairQueue;
pub use server::{ConnMode, ServeSummary, Server, ServerConfig};
pub use stream::{DEFAULT_STREAM_CHUNK, DEFAULT_STREAM_THRESHOLD};
