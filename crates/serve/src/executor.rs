//! Request execution: the worker pool, per-request isolation, the
//! operation implementations, and cross-request batch verification.
//!
//! Workers are connection-agnostic. They pop [`Job`]s from the
//! tenant-fair queue, execute under `catch_unwind` with a composed
//! drain + deadline [`CancelToken`], and hand the finished
//! [`Response`] back through the job's [`ReplyTo`] — a direct socket
//! write in the legacy threaded mode, or a mailbox handoff to the
//! reactor in event-driven mode. A worker never blocks on a client
//! socket: large payloads leave the worker as a whole `Response::Stream`
//! and are chunked out by the reactor under socket-writability
//! backpressure.
//!
//! # Cross-request batch verification
//!
//! Verify requests are stamped at admission with a `batch_key` — a
//! digest of their golden design reference and policy. When a worker
//! pops a verify job it drains same-key jobs already queued, waits one
//! configurable gather window for stragglers, and executes the whole
//! batch through one warm `SharedMiter` probe pass
//! ([`VerifySession::verify_many_cancellable`]); fingerprint-code
//! candidates ride the cached code-space proof instead. Verdicts are
//! demultiplexed to their requesters and are identical to the
//! per-request path at definitive outcomes (pinned by differential
//! test). Each job keeps its own deadline token and its own reply.

use std::io::Write as _;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use odcfp_analysis::CancelToken;
use odcfp_core::campaign::{self, CampaignOptions, ManifestCircuit};
use odcfp_core::{CodeSpace, Fingerprinter, VerifyPolicy, VerifySession};
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::{Digest, Netlist};
use odcfp_verilog::write_verilog;

use crate::cache::{CircuitState, Disposition, WarmCache};
use crate::proto::{DesignRef, ErrorCode, Op, Reply, Request, PROTO_VERSION};
use crate::reactor::Mailbox;
use crate::server::Shared;
use crate::stream::StreamSender;

/// Reply fields large enough to stream as chunked frames.
const STREAMED_FIELDS: [&str; 2] = ["netlist", "summary"];

/// One admitted request plus where to send its reply.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) reply_to: ReplyTo,
    pub(crate) enqueued: Instant,
    /// Digest of (golden design, policy) for verify requests; jobs with
    /// equal keys are candidates for batched execution.
    pub(crate) batch_key: Option<u64>,
}

/// Where a finished response goes.
pub(crate) enum ReplyTo {
    /// Legacy threaded mode: write on the connection's stream now,
    /// serialized by the per-connection lock. Blocks the worker on a
    /// slow client — the documented weakness of this mode.
    Direct(Arc<Mutex<TcpStream>>),
    /// Event-driven mode: hand off to the reactor's mailbox; the
    /// reactor owns all socket writes.
    Reactor {
        conn: u64,
        mailbox: Arc<Mailbox>,
    },
}

/// A finished request: either one reply line or a reply whose large
/// payload field streams as chunk frames.
pub(crate) enum Response {
    Line(Reply),
    Stream {
        reply: Reply,
        field: &'static str,
        payload: String,
    },
}

impl Response {
    /// Collapses a stream into its single-line equivalent (legacy mode
    /// and v1 clients).
    pub(crate) fn into_line(self) -> Reply {
        match self {
            Response::Line(reply) => reply,
            Response::Stream { reply, field, payload } => reply.field(field, payload),
        }
    }

    /// Converts into the reactor's outbound representation.
    pub(crate) fn into_sender(self, chunk: usize) -> Result<Vec<u8>, Box<StreamSender>> {
        match self {
            Response::Line(reply) => {
                let mut line = reply.to_line();
                line.push('\n');
                Ok(line.into_bytes())
            }
            Response::Stream { reply, field, payload } => {
                Err(Box::new(StreamSender::new(reply, field, payload, chunk)))
            }
        }
    }
}

/// Outcome of offering a request to admission control.
pub(crate) enum Admit {
    /// Answer now (control op, or shed/draining rejection).
    Immediate(Reply),
    /// Admitted; a worker delivers the reply later.
    Queued,
}

/// Control-op handling plus queue admission, shared by both connection
/// layers. On `Queued` the server's in-flight counter has been bumped;
/// it drops when the response is routed back to the connection layer.
pub(crate) fn admit(shared: &Shared, request: Request, reply_to: ReplyTo) -> Admit {
    let version = request.version;
    match request.op {
        // Control ops answer inline; they must work even when the queue
        // is full or draining.
        Op::Ping => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            Admit::Immediate(
                Reply::ok(&request.id, "ping")
                    .field("draining", shared.draining())
                    .versioned(version),
            )
        }
        Op::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.served.fetch_add(1, Ordering::SeqCst);
            Admit::Immediate(Reply::ok(&request.id, "shutdown").versioned(version))
        }
        _ => {
            let batch_key = batch_key(&request.op);
            let job = Job {
                reply_to,
                enqueued: Instant::now(),
                batch_key,
                request,
            };
            let tenant = job.request.tenant.clone();
            let id = job.request.id.clone();
            let op = job.request.op.name();
            match shared.queue.push(&tenant, job) {
                Ok(()) => {
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    Admit::Queued
                }
                Err(e) => {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    let (code, message) = match e {
                        crate::queue::PushError::Full => (
                            ErrorCode::Overloaded,
                            format!(
                                "admission queue full (depth {}); retry with backoff",
                                shared.config.queue_depth
                            ),
                        ),
                        crate::queue::PushError::Closed => {
                            (ErrorCode::Draining, "server is draining".to_owned())
                        }
                    };
                    odcfp_obs::point("serve.reject")
                        .field("tenant", tenant.as_str())
                        .field("op", op)
                        .field("code", code.as_str())
                        .nondet()
                        .emit();
                    Admit::Immediate(Reply::err(&id, code, message).versioned(version))
                }
            }
        }
    }
}

/// Batch grouping key for verify requests: FNV-1a over the golden
/// design reference and the policy string. Equal keys *suggest* a
/// shared golden; the executor re-checks structural equality before
/// coalescing, so a hash collision costs batching, never correctness.
fn batch_key(op: &Op) -> Option<u64> {
    let Op::Verify { golden, policy, .. } = op else {
        return None;
    };
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match golden {
        DesignRef::Text { text, format } => {
            eat(b"text:");
            eat(format.as_bytes());
            eat(b":");
            eat(text.as_bytes());
        }
        DesignRef::Path(path) => {
            eat(b"path:");
            eat(path.as_bytes());
        }
    }
    eat(b"|policy:");
    eat(policy.as_deref().unwrap_or("").as_bytes());
    Some(hash)
}

/// `true` when two verify ops may share one batch: same golden design
/// and same policy, compared structurally.
fn same_batch(a: &Op, b: &Op) -> bool {
    match (a, b) {
        (
            Op::Verify { golden: ga, policy: pa, .. },
            Op::Verify { golden: gb, policy: pb, .. },
        ) => ga == gb && pa == pb,
        _ => false,
    }
}

/// Worker thread: pop round-robin, gather batches, execute under
/// isolation, reply.
pub(crate) fn worker_loop(shared: &Arc<Shared>) {
    while let Some((tenant, job)) = shared.queue.pop() {
        odcfp_obs::point("serve.queue_wait")
            .field("tenant", tenant.as_str())
            .field("us", job.enqueued.elapsed().as_micros() as u64)
            .nondet()
            .emit();
        let key = job.batch_key;
        if key.is_none() || shared.config.batch_max <= 1 {
            run_one(shared, job);
            continue;
        }
        let mut batch = vec![job];
        let gather = |batch: &mut Vec<Job>| {
            let room = shared.config.batch_max.saturating_sub(batch.len());
            let anchor_op = batch[0].request.op.clone();
            for (_, j) in shared
                .queue
                .drain_matching(room, |j| j.batch_key == key && same_batch(&j.request.op, &anchor_op))
            {
                batch.push(j);
            }
        };
        gather(&mut batch);
        if batch.len() < shared.config.batch_max && !shared.config.batch_window.is_zero() {
            // The gather window: a short, bounded wait for concurrent
            // requests against the same golden to coalesce. Zero
            // disables it for latency-critical deployments.
            std::thread::sleep(shared.config.batch_window);
            gather(&mut batch);
        }
        if batch.len() == 1 {
            run_one(shared, batch.pop().expect("len checked"));
        } else {
            run_verify_batch(shared, batch);
        }
    }
}

/// Executes one job under the standard isolation boundary.
fn run_one(shared: &Arc<Shared>, job: Job) {
    let mut span = odcfp_obs::span("serve.request");
    span.field("op", job.request.op.name());
    span.field("tenant", job.request.tenant.as_str());

    let token = shared.drain_token.bounded_by(
        job.request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
    );
    // The circuit the request touched, for poisoning on panic.
    let mut touched: Option<Digest> = None;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute(shared, &job.request, &token, &mut touched)
    }));
    let reply = match outcome {
        Ok(reply) => reply,
        Err(payload) => panic_reply(shared, &job.request.id, payload, touched),
    };
    span.field(
        "outcome",
        reply.error.clone().unwrap_or_else(|| "ok".to_owned()),
    );
    finish(shared, job, reply);
}

/// Executes a coalesced verify batch: one circuit lock, one warm
/// SharedMiter probe pass, per-job deadlines and replies.
fn run_verify_batch(shared: &Arc<Shared>, jobs: Vec<Job>) {
    let mut span = odcfp_obs::span("serve.batch.execute");
    span.field("size", jobs.len());
    let tokens: Vec<CancelToken> = jobs
        .iter()
        .map(|job| {
            shared.drain_token.bounded_by(
                job.request
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms)),
            )
        })
        .collect();
    odcfp_obs::point("serve.batch.gather")
        .field("size", jobs.len())
        .nondet()
        .emit();
    let mut touched: Option<Digest> = None;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_verify_batch(shared, &jobs, &tokens, &mut touched)
    }));
    match outcome {
        Ok(replies) => {
            debug_assert_eq!(replies.len(), jobs.len());
            span.field("outcome", "ok");
            for (job, reply) in jobs.into_iter().zip(replies) {
                finish(shared, job, reply);
            }
        }
        Err(payload) => {
            // One isolation boundary per batch: a panic answers every
            // coalesced request and poisons the shared circuit once.
            span.field("outcome", "panic");
            let text = panic_text(payload);
            let mut message = format!("request panicked: {text}");
            if let Some(digest) = touched {
                let strikes = shared.cache.poison(digest);
                message.push_str(&format!(
                    " (circuit warm state dropped; strike {strikes}/{})",
                    crate::cache::QUARANTINE_THRESHOLD
                ));
            }
            for job in jobs {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                let reply = Reply::err(&job.request.id, ErrorCode::Panic, message.clone());
                finish(shared, job, reply);
            }
        }
    }
}

/// Version-stamps, counts, maybe streams, and delivers one reply.
fn finish(shared: &Arc<Shared>, job: Job, reply: Reply) {
    let reply = reply.versioned(job.request.version);
    if reply.ok {
        shared.served.fetch_add(1, Ordering::SeqCst);
    } else {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
    }
    let response = maybe_stream(shared, &job, reply);
    match job.reply_to {
        ReplyTo::Direct(writer) => {
            // Legacy mode: single-line replies, written by the worker.
            let mut line = response.into_line().to_line();
            line.push('\n');
            if let Ok(mut stream) = writer.lock() {
                // A vanished client is its own problem; the server
                // presses on.
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.flush();
            }
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        ReplyTo::Reactor { conn, mailbox } => {
            // The reactor decrements in-flight once it routes the
            // response to (or discards it for) the connection.
            mailbox.deliver(conn, response);
        }
    }
}

/// Splits a large payload field out of `reply` for chunked emission.
/// Only v2 requests on reactor connections stream; everyone else gets
/// the payload inline.
fn maybe_stream(shared: &Arc<Shared>, job: &Job, mut reply: Reply) -> Response {
    let streamable = job.request.version >= 2
        && matches!(job.reply_to, ReplyTo::Reactor { .. })
        && shared.config.stream_threshold != usize::MAX;
    if streamable {
        for field in STREAMED_FIELDS {
            let big = reply.fields.iter().position(|(k, v)| {
                k == field
                    && matches!(v, crate::proto::FieldValue::Str(s)
                        if s.len() >= shared.config.stream_threshold)
            });
            if let Some(idx) = big {
                let (_, value) = reply.fields.remove(idx);
                let crate::proto::FieldValue::Str(payload) = value else {
                    unreachable!("position matched a Str");
                };
                return Response::Stream { reply, field, payload };
            }
        }
    }
    Response::Line(reply)
}

fn panic_reply(
    shared: &Arc<Shared>,
    id: &str,
    payload: Box<dyn std::any::Any + Send>,
    touched: Option<Digest>,
) -> Reply {
    shared.panics.fetch_add(1, Ordering::SeqCst);
    let text = panic_text(payload);
    let mut message = format!("request panicked: {text}");
    if let Some(digest) = touched {
        let strikes = shared.cache.poison(digest);
        message.push_str(&format!(
            " (circuit warm state dropped; strike {strikes}/{})",
            crate::cache::QUARANTINE_THRESHOLD
        ));
    }
    Reply::err(id, ErrorCode::Panic, message)
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// An in-protocol failure: code + message, turned into an error reply.
type OpError = (ErrorCode, String);

fn bad(message: impl Into<String>) -> OpError {
    (ErrorCode::BadRequest, message.into())
}

/// Resolves a request-supplied relative path under the serve root.
/// Absolute paths and `..` traversal are refused: tenants address only
/// the tree the operator exported.
pub(crate) fn resolve_root(root: &Path, path: &str) -> Result<PathBuf, OpError> {
    let rel = Path::new(path);
    if rel.is_absolute()
        || rel
            .components()
            .any(|c| matches!(c, std::path::Component::ParentDir))
    {
        return Err(bad(format!(
            "path {path:?} must be relative to the serve root, without `..`"
        )));
    }
    Ok(root.join(rel))
}

pub(crate) fn parse_policy(
    spec: Option<&str>,
    default: VerifyPolicy,
) -> Result<VerifyPolicy, OpError> {
    match spec {
        None => Ok(default),
        Some("quick") => Ok(VerifyPolicy::quick()),
        Some("strict") => Ok(VerifyPolicy::strict()),
        Some(s) => match s.strip_prefix("budgeted:").and_then(|n| n.parse().ok()) {
            Some(budget) => Ok(VerifyPolicy::budgeted(budget)),
            None => Err(bad(format!(
                "policy must be quick, strict, or budgeted:<conflicts>; got {s:?}"
            ))),
        },
    }
}

/// Loads netlist source text for a design reference. Returns the text
/// and its format tag.
fn design_source(shared: &Shared, design: &DesignRef) -> Result<(String, String), OpError> {
    match design {
        DesignRef::Text { text, format } => Ok((text.clone(), format.clone())),
        DesignRef::Path(path) => {
            let resolved = resolve_root(&shared.config.root, path)?;
            let format = if path.ends_with(".blif") { "blif" } else { "v" };
            let text = std::fs::read_to_string(&resolved)
                .map_err(|e| bad(format!("reading {path:?}: {e}")))?;
            Ok((text, format.to_owned()))
        }
    }
}

fn parse_netlist(shared: &Shared, text: &str, format: &str) -> Result<Netlist, OpError> {
    match format {
        "blif" => {
            let network =
                odcfp_blif::parse_blif(text).map_err(|e| bad(format!("parsing BLIF: {e}")))?;
            odcfp_synth::map_network(&network, Arc::clone(&shared.library))
                .map_err(|e| bad(format!("mapping BLIF: {e}")))
        }
        _ => odcfp_verilog::parse_verilog(text, Arc::clone(&shared.library))
            .map_err(|e| bad(format!("parsing Verilog: {e}"))),
    }
}

/// Warm-path entry: resolve, digest, quarantine-check, and either
/// serve the cached state or build and admit it.
fn circuit_state(
    shared: &Shared,
    design: &DesignRef,
    touched: &mut Option<Digest>,
) -> Result<(Arc<Mutex<CircuitState>>, Disposition), OpError> {
    let (text, format) = design_source(shared, design)?;
    let digest = Digest::of(text.as_bytes());
    if shared.cache.is_quarantined(digest) {
        return Err((
            ErrorCode::Quarantined,
            format!("circuit {digest} is quarantined after repeated panics"),
        ));
    }
    // From here on a panic is attributed to this circuit.
    *touched = Some(digest);
    if let Some(state) = shared.cache.lookup(digest) {
        return Ok((state, Disposition::Hit));
    }
    let netlist = parse_netlist(shared, &text, &format)?;
    let cost = WarmCache::estimate_cost(text.len(), netlist.num_gates());
    let fingerprinter = Arc::new(
        Fingerprinter::new(netlist).map_err(|e| bad(format!("analysing circuit: {e}")))?,
    );
    let session = VerifySession::new(fingerprinter.base())
        .map_err(|e| bad(format!("building verify session: {e}")))?;
    Ok(shared.cache.admit(
        digest,
        CircuitState {
            fingerprinter,
            session,
            codespace: None,
        },
        cost,
    ))
}

/// `deadline` when the request's own deadline fired, `draining` when
/// the drain watchdog cancelled us.
fn cancel_code(shared: &Shared) -> (ErrorCode, &'static str) {
    if shared.drain_token.is_cancelled() {
        (ErrorCode::Draining, "cancelled by server drain")
    } else {
        (ErrorCode::Deadline, "request deadline exceeded")
    }
}

/// Executes one queued operation. Runs inside the worker's
/// `catch_unwind`; may panic freely.
fn execute(
    shared: &Shared,
    request: &Request,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Reply {
    let id = &request.id;
    let result: Result<Reply, OpError> = match &request.op {
        Op::Ping => Ok(Reply::ok(id, "ping")),
        Op::Shutdown => Ok(Reply::ok(id, "shutdown")),
        Op::Locations { design } => circuit_state(shared, design, touched).map(|(state, disp)| {
            let state = state.lock().unwrap_or_else(PoisonError::into_inner);
            let capacity = state.fingerprinter.capacity();
            Reply::ok(id, "locations")
                .field("locations", capacity.num_locations)
                .field("candidates", capacity.num_candidates)
                .field("log2_combinations", format!("{:.2}", capacity.log2_combinations))
                .field("cache", disp.as_str())
        }),
        Op::Embed {
            design,
            seed,
            bits,
            policy,
        } => embed_op(shared, id, design, *seed, bits.as_deref(), policy.as_deref(), token, touched),
        Op::Verify {
            golden,
            candidate,
            candidate_bits,
            policy,
        } => match (candidate, candidate_bits) {
            (Some(candidate), None) => {
                verify_op(shared, id, golden, candidate, policy.as_deref(), token, touched)
            }
            (None, Some(bits)) => {
                verify_code_op(shared, id, golden, bits, policy.as_deref(), token, touched)
            }
            // The parser enforces exclusivity.
            _ => Err(bad("verify needs exactly one of candidate or candidate_bits")),
        },
        Op::Campaign {
            manifest,
            out_dir,
            resume,
        } => campaign_op(shared, id, manifest, out_dir, *resume, token),
        Op::Report { trace_path } => report_op(shared, id, trace_path),
        Op::Probe { mode, design } => {
            probe_op(shared, id, mode, design.as_ref(), token, touched)
        }
    };
    match result {
        Ok(reply) => reply,
        Err((code, message)) => Reply::err(id, code, message),
    }
}

#[allow(clippy::too_many_arguments)]
fn embed_op(
    shared: &Shared,
    id: &str,
    design: &DesignRef,
    seed: Option<u64>,
    bits: Option<&str>,
    policy: Option<&str>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    let policy = parse_policy(policy, VerifyPolicy::quick())?;
    let (state, disp) = circuit_state(shared, design, touched)?;
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let n = state.fingerprinter.locations().len();
    let bits: Vec<bool> = match (bits, seed) {
        (Some(s), _) => {
            let parsed: Result<Vec<bool>, OpError> = s
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(bad(format!("bad bit {other:?}"))),
                })
                .collect();
            let parsed = parsed?;
            if parsed.len() != n {
                return Err(bad(format!(
                    "bit string has {} bits; design has {n} locations",
                    parsed.len()
                )));
            }
            parsed
        }
        // Same derivation as `odcfp embed --seed` and the campaign
        // runner, so served copies are bit-identical to batch ones.
        (None, Some(seed)) => {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..n).map(|_| rng.next_bool()).collect()
        }
        (None, None) => return Err(bad("embed needs seed or bits")),
    };
    let CircuitState {
        fingerprinter,
        session,
        ..
    } = &mut *state;
    let (copy, verdict) = fingerprinter
        .embed_with_session_cancellable(session, &bits, &policy, token)
        .map_err(|e| {
            if token.is_cancelled() {
                let (code, why) = cancel_code(shared);
                (code, format!("{why} during embed"))
            } else {
                (ErrorCode::Internal, format!("embedding: {e}"))
            }
        })?;
    if token.is_cancelled() {
        let (code, why) = cancel_code(shared);
        return Err((code, format!("{why} during embed verification")));
    }
    Ok(Reply::ok(id, "embed")
        .field("bits", copy.bit_string())
        .field("verdict", verdict.name())
        .field("netlist", write_verilog(copy.netlist()))
        .field("cache", disp.as_str()))
}

fn verify_op(
    shared: &Shared,
    id: &str,
    golden: &DesignRef,
    candidate: &DesignRef,
    policy: Option<&str>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    let policy = parse_policy(policy, VerifyPolicy::strict())?;
    let (cand_text, cand_format) = design_source(shared, candidate)?;
    let (state, disp) = circuit_state(shared, golden, touched)?;
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let candidate = parse_netlist(shared, &cand_text, &cand_format)?;
    let report = state
        .session
        .verify_cancellable(&candidate, &policy, token)
        .map_err(|e| bad(format!("verify: {e}")))?;
    if token.is_cancelled() {
        // The ladder degraded to Undecided because we cancelled it —
        // answer with the cause, not a verdict that hides it.
        let (code, why) = cancel_code(shared);
        return Err((code, format!("{why}; verification undecided")));
    }
    Ok(Reply::ok(id, "verify")
        .field("verdict", report.verdict.name())
        .field("sat_conflicts", report.stats.sat_conflicts)
        .field("fast_path", report.stats.used_fast_path)
        .field("cache", disp.as_str()))
}

/// Decides a fingerprint *code* against the golden circuit's cached
/// code-space proof — no candidate netlist is ever materialized. The
/// proof (one free-selector solve) is built on first use and amortizes
/// across every later code check on the warm entry.
fn verify_code_op(
    shared: &Shared,
    id: &str,
    golden: &DesignRef,
    bits: &str,
    policy: Option<&str>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    let policy = parse_policy(policy, VerifyPolicy::strict())?;
    let (state, disp) = circuit_state(shared, golden, touched)?;
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let reply = check_one_code(shared, id, &mut state, bits, &policy, token)?;
    Ok(reply.field("cache", disp.as_str()))
}

/// Shared by the single path and the batch path: ensures the code-space
/// proof exists, then decides `bits` by assumption.
fn check_one_code(
    shared: &Shared,
    id: &str,
    state: &mut CircuitState,
    bits: &str,
    policy: &VerifyPolicy,
    token: &CancelToken,
) -> Result<Reply, OpError> {
    let code: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(bad(format!("bad bit {other:?}"))),
        })
        .collect::<Result<_, _>>()?;
    let CircuitState {
        fingerprinter,
        session,
        codespace,
    } = state;
    if codespace.is_none() {
        let space = CodeSpace::build(fingerprinter)
            .map_err(|e| bad(format!("code-space verification unavailable: {e}")))?;
        let proof = space
            .prove(session, policy.sat_conflict_cap, token)
            .map_err(|e| bad(format!("proving code space: {e}")))?;
        odcfp_obs::point("serve.codespace")
            .field("outcome", proof.outcome.name())
            .field("groups", proof.num_groups())
            .nondet()
            .emit();
        *codespace = Some(proof);
    }
    let proof = codespace.as_ref().expect("just ensured");
    if code.len() != proof.num_groups() {
        return Err(bad(format!(
            "candidate_bits has {} bits; design has {} locations",
            code.len(),
            proof.num_groups()
        )));
    }
    let verdict = session.check_code(proof, &code, policy.sat_conflict_cap, token);
    if token.is_cancelled() {
        let (code, why) = cancel_code(shared);
        return Err((code, format!("{why}; code verification undecided")));
    }
    Ok(Reply::ok(id, "verify")
        .field("verdict", verdict.name())
        .field("mode", "code")
        .field("code_space", proof.outcome.name()))
}

/// The batch body: one policy parse, one circuit lock, candidates
/// partitioned into netlists (one `verify_many_cancellable` pass) and
/// codes (assumption probes on the cached proof). Runs inside the
/// batch's `catch_unwind`.
fn execute_verify_batch(
    shared: &Shared,
    jobs: &[Job],
    tokens: &[CancelToken],
    touched: &mut Option<Digest>,
) -> Vec<Reply> {
    let all_err = |code: ErrorCode, message: &str| -> Vec<Reply> {
        jobs.iter()
            .map(|job| Reply::err(&job.request.id, code, message.to_owned()))
            .collect()
    };
    let Op::Verify { golden, policy, .. } = &jobs[0].request.op else {
        unreachable!("batch keys only stamp verify ops");
    };
    let policy = match parse_policy(policy.as_deref(), VerifyPolicy::strict()) {
        Ok(policy) => policy,
        Err((code, message)) => return all_err(code, &message),
    };
    let (state, disp) = match circuit_state(shared, golden, touched) {
        Ok(x) => x,
        Err((code, message)) => return all_err(code, &message),
    };
    let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
    let n = jobs.len();

    // Per-job candidate parsing, each in its own unwind boundary so one
    // hostile candidate answers `panic` without sinking its batchmates.
    enum Cand {
        Netlist(Box<Netlist>),
        Code(String),
        Failed(ErrorCode, String),
    }
    let cands: Vec<Cand> = jobs
        .iter()
        .map(|job| {
            let Op::Verify { candidate, candidate_bits, .. } = &job.request.op else {
                unreachable!("batch keys only stamp verify ops");
            };
            match (candidate, candidate_bits) {
                (Some(design), None) => {
                    let parsed = catch_unwind(AssertUnwindSafe(|| {
                        let (text, format) = design_source(shared, design)?;
                        parse_netlist(shared, &text, &format)
                    }));
                    match parsed {
                        Ok(Ok(netlist)) => Cand::Netlist(Box::new(netlist)),
                        Ok(Err((code, message))) => Cand::Failed(code, message),
                        Err(payload) => Cand::Failed(
                            ErrorCode::Panic,
                            format!("candidate parse panicked: {}", panic_text(payload)),
                        ),
                    }
                }
                (None, Some(bits)) => Cand::Code(bits.clone()),
                _ => Cand::Failed(
                    ErrorCode::BadRequest,
                    "verify needs exactly one of candidate or candidate_bits".into(),
                ),
            }
        })
        .collect();

    let mut replies: Vec<Option<Reply>> = (0..n).map(|_| None).collect();

    // Netlist candidates: one warm SharedMiter probe pass.
    let netlist_idx: Vec<usize> = cands
        .iter()
        .enumerate()
        .filter_map(|(i, c)| matches!(c, Cand::Netlist(_)).then_some(i))
        .collect();
    if !netlist_idx.is_empty() {
        let pairs: Vec<(&Netlist, &CancelToken)> = netlist_idx
            .iter()
            .map(|&i| {
                let Cand::Netlist(netlist) = &cands[i] else {
                    unreachable!("index filtered on Netlist");
                };
                (netlist.as_ref(), &tokens[i])
            })
            .collect();
        let reports = state.session.verify_many_cancellable(&pairs, &policy);
        for (&i, report) in netlist_idx.iter().zip(reports) {
            let id = &jobs[i].request.id;
            replies[i] = Some(match report {
                Ok(report) => {
                    if tokens[i].is_cancelled() {
                        let (code, why) = cancel_code(shared);
                        Reply::err(id, code, format!("{why}; verification undecided"))
                    } else {
                        Reply::ok(id, "verify")
                            .field("verdict", report.verdict.name())
                            .field("sat_conflicts", report.stats.sat_conflicts)
                            .field("fast_path", report.stats.used_fast_path)
                            .field("cache", disp.as_str())
                            .field("batched", true)
                            .field("batch", n)
                    }
                }
                Err(e) => Reply::err(id, ErrorCode::BadRequest, format!("verify: {e}")),
            });
        }
    }

    // Code candidates: assumption probes against the cached proof.
    for (i, cand) in cands.iter().enumerate() {
        match cand {
            Cand::Code(bits) => {
                let id = &jobs[i].request.id;
                replies[i] = Some(
                    match check_one_code(shared, id, &mut state, bits, &policy, &tokens[i]) {
                        Ok(reply) => reply
                            .field("cache", disp.as_str())
                            .field("batched", true)
                            .field("batch", n),
                        Err((code, message)) => Reply::err(id, code, message),
                    },
                );
            }
            Cand::Failed(code, message) => {
                replies[i] = Some(Reply::err(&jobs[i].request.id, *code, message.clone()));
            }
            Cand::Netlist(_) => {}
        }
    }

    replies
        .into_iter()
        .map(|r| r.expect("every batch slot answered"))
        .collect()
}

fn campaign_op(
    shared: &Shared,
    id: &str,
    manifest_text: &str,
    out_dir: &str,
    resume: bool,
    token: &CancelToken,
) -> Result<Reply, OpError> {
    let manifest = campaign::Manifest::parse(manifest_text)
        .map_err(|e| bad(format!("manifest: {e}")))?;
    let dir = resolve_root(&shared.config.root, out_dir)?;
    let load = |circuit: &ManifestCircuit| -> Result<Netlist, String> {
        let campaign::CircuitSource::Path(path) = &circuit.source else {
            unreachable!("probe sources never reach the loader");
        };
        let (text, format) = design_source(shared, &DesignRef::Path(path.clone()))
            .map_err(|(_, m)| m)?;
        parse_netlist(shared, &text, &format).map_err(|(_, m)| m)
    };
    let emit = |n: &Netlist| write_verilog(n);
    let env = campaign::CampaignEnv {
        load: &load,
        emit: &emit,
    };
    // Chunked execution: one job (or one delta window) per leg, journal
    // replayed in between. Progress is durable at every step, and the
    // drain token gets a look-in between legs, so a long campaign
    // cannot hold drain hostage — the journal resumes it, served or
    // batch, later. The cache carries fingerprinters, verify sessions,
    // and delta-mode code-space proofs across legs, so chunking costs
    // journal replays, not re-analysis or re-proving.
    let mut cache = campaign::CampaignCache::default();
    let mut resume_leg = resume;
    let mut executed = 0usize;
    loop {
        let options = CampaignOptions {
            resume: resume_leg,
            stop_after: Some(1),
        };
        let summary =
            campaign::run_cached(&manifest, &dir, &env, &options, &mut cache, &mut |_| {})
                .map_err(|e| match e {
                    campaign::CampaignError::Io { .. } => (ErrorCode::Internal, e.to_string()),
                    _ => bad(e.to_string()),
                })?;
        executed += summary.executed;
        if summary.remaining == 0 {
            let mut reply = Reply::ok(id, "campaign")
                .field("total", summary.total)
                .field("completed", summary.completed)
                .field("executed", executed)
                .field("poisoned", summary.poisoned.len())
                .field("clean", summary.is_clean());
            // Delta campaigns stream artifacts as codebooks: tell the
            // client where each circuit's codebook landed so it can
            // fetch deltas instead of full netlists.
            if manifest.artifact_mode == campaign::ArtifactMode::Delta {
                let codebooks: Vec<String> = manifest
                    .circuits
                    .iter()
                    .filter(|c| matches!(c.source, campaign::CircuitSource::Path(_)))
                    .map(|c| odcfp_core::codebook::codebook_file(&c.name))
                    .collect();
                reply = reply
                    .field("artifacts", "delta")
                    .field("codebooks", codebooks.join(","));
            }
            return Ok(reply);
        }
        resume_leg = true;
        if token.is_cancelled() {
            let (code, why) = cancel_code(shared);
            return Err((
                code,
                format!(
                    "{why} after {executed} job(s); journal at {out_dir:?} resumes the rest"
                ),
            ));
        }
    }
}

fn report_op(shared: &Shared, id: &str, trace_path: &str) -> Result<Reply, OpError> {
    let path = resolve_root(&shared.config.root, trace_path)?;
    let trace = odcfp_obs::report::read_trace(&path)
        .map_err(|e| bad(format!("reading {trace_path:?}: {e}")))?;
    Ok(Reply::ok(id, "report")
        .field("events", trace.events.len())
        .field("skipped_lines", trace.skipped_lines)
        .field("summary", odcfp_obs::report::summarize(&trace)))
}

fn probe_op(
    shared: &Shared,
    id: &str,
    mode: &str,
    design: Option<&DesignRef>,
    token: &CancelToken,
    touched: &mut Option<Digest>,
) -> Result<Reply, OpError> {
    // Attributing the fault to a circuit makes a `panic` probe poison
    // that circuit's warm state, so the quarantine ladder is drillable
    // end to end without a genuinely panicking netlist.
    if let Some(design) = design {
        let _ = circuit_state(shared, design, touched)?;
    }
    match mode {
        "panic" => panic!("fault probe: deliberate panic in request {id}"),
        _ => {
            // Spin until cancelled; hard cap mirrors the campaign probe.
            let cap = Duration::from_secs(30);
            let started = Instant::now();
            while !token.is_cancelled() && started.elapsed() < cap {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err((
                ErrorCode::Deadline,
                format!("spin probe cancelled after {:?}", started.elapsed()),
            ))
        }
    }
}

// Unused import guard: PROTO_VERSION is referenced by rustdoc links.
const _: u64 = PROTO_VERSION;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_root_confines_paths() {
        let root = Path::new("/srv/odcfp");
        assert_eq!(
            resolve_root(root, "designs/c17.v").unwrap(),
            PathBuf::from("/srv/odcfp/designs/c17.v")
        );
        assert!(resolve_root(root, "/etc/passwd").is_err());
        assert!(resolve_root(root, "../secrets").is_err());
        assert!(resolve_root(root, "a/../../b").is_err());
    }

    #[test]
    fn parse_policy_grammar() {
        assert!(parse_policy(Some("quick"), VerifyPolicy::strict()).is_ok());
        assert!(parse_policy(Some("strict"), VerifyPolicy::quick()).is_ok());
        assert!(parse_policy(Some("budgeted:5000"), VerifyPolicy::quick()).is_ok());
        assert!(parse_policy(Some("budgeted:x"), VerifyPolicy::quick()).is_err());
        assert!(parse_policy(Some("frob"), VerifyPolicy::quick()).is_err());
    }

    #[test]
    fn batch_keys_group_same_golden_and_policy() {
        let op = |text: &str, policy: Option<&str>| Op::Verify {
            golden: DesignRef::Text { text: text.into(), format: "v".into() },
            candidate: None,
            candidate_bits: Some("01".into()),
            policy: policy.map(str::to_owned),
        };
        let a = batch_key(&op("module m; endmodule", Some("strict")));
        let b = batch_key(&op("module m; endmodule", Some("strict")));
        let c = batch_key(&op("module m; endmodule", Some("quick")));
        let d = batch_key(&op("module x; endmodule", Some("strict")));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(batch_key(&Op::Ping).is_none());
        assert!(same_batch(
            &op("module m; endmodule", Some("strict")),
            &op("module m; endmodule", Some("strict"))
        ));
        assert!(!same_batch(
            &op("module m; endmodule", Some("strict")),
            &op("module m; endmodule", None)
        ));
    }
}
