//! Streaming replies: large payloads emitted as incremental `chunk`
//! frames with per-connection backpressure.
//!
//! Workers never write large payloads to sockets. When an operation
//! produces a payload at or above the server's stream threshold (and
//! the request spoke protocol v2), the executor hands the *whole*
//! payload to the reactor as a [`StreamSender`]; the reactor serializes
//! one chunk at a time, only when the connection's socket is writable.
//! A stalled reader therefore stalls only its own connection's sender —
//! worker threads have long since moved on to other requests — and the
//! `done` trailer carries a digest of the full payload so clients
//! detect truncation (docs/PROTOCOL.md §5).

use crate::proto::{chunk_line, done_line, payload_digest, Reply};

/// Default payload size (bytes) at which replies switch from a single
/// line to chunked streaming.
pub const DEFAULT_STREAM_THRESHOLD: usize = 256 * 1024;

/// Default chunk payload size in bytes (pre-escaping).
pub const DEFAULT_STREAM_CHUNK: usize = 48 * 1024;

/// A large reply payload queued for incremental emission.
///
/// Produces the wire sequence `chunk(seq=0) … chunk(seq=n-1) done`,
/// one line per [`StreamSender::next_line`] call, slicing the payload
/// at UTF-8 character boundaries.
#[derive(Debug)]
pub struct StreamSender {
    trailer: Reply,
    stream_field: &'static str,
    payload: String,
    digest: String,
    chunk: usize,
    offset: usize,
    seq: u64,
    done_sent: bool,
}

impl StreamSender {
    /// Queues `payload` for chunked emission as field `stream_field`,
    /// terminated by `trailer` (an ok reply carrying the op's scalar
    /// fields, already stamped with the request's version).
    pub fn new(
        trailer: Reply,
        stream_field: &'static str,
        payload: String,
        chunk: usize,
    ) -> StreamSender {
        let digest = payload_digest(payload.as_bytes());
        odcfp_obs::point("serve.stream.begin")
            .field("field", stream_field)
            .field("bytes", payload.len())
            .nondet()
            .emit();
        StreamSender {
            trailer,
            stream_field,
            digest,
            chunk: chunk.max(1),
            payload,
            offset: 0,
            seq: 0,
            done_sent: false,
        }
    }

    /// The next wire line (with trailing newline), or `None` once the
    /// `done` trailer has been emitted.
    pub fn next_line(&mut self) -> Option<String> {
        if self.done_sent {
            return None;
        }
        if self.offset < self.payload.len() {
            // Slice at most `chunk` bytes, backing up to a char boundary
            // so escaping never sees a torn code point.
            let mut end = (self.offset + self.chunk).min(self.payload.len());
            while !self.payload.is_char_boundary(end) {
                end -= 1;
            }
            let data = &self.payload[self.offset..end];
            let mut line = chunk_line(self.trailer.v, &self.trailer.id, self.seq, data);
            line.push('\n');
            self.offset = end;
            self.seq += 1;
            return Some(line);
        }
        self.done_sent = true;
        odcfp_obs::point("serve.stream.done")
            .field("field", self.stream_field)
            .field("chunks", self.seq)
            .field("bytes", self.payload.len())
            .nondet()
            .emit();
        let mut line = done_line(
            &self.trailer,
            self.stream_field,
            self.seq,
            self.payload.len() as u64,
            &self.digest,
        );
        line.push('\n');
        Some(line)
    }

    /// Upper bound on bytes still to be written (payload remainder plus
    /// trailer), used for outbound backpressure accounting.
    pub fn remaining(&self) -> usize {
        self.payload.len().saturating_sub(self.offset) + if self.done_sent { 0 } else { 256 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Frame, Reply};

    #[test]
    fn chunks_reassemble_and_digest_matches() {
        let payload = "héllo wörld — ".repeat(100);
        let trailer = Reply::ok("s", "embed").field("verdict", "proven").versioned(2);
        let mut sender = StreamSender::new(trailer, "netlist", payload.clone(), 37);
        let mut assembled = String::new();
        let mut chunks = 0u64;
        loop {
            let line = sender.next_line().expect("frames until done");
            match Frame::parse_line(line.trim_end()).expect("parses") {
                Frame::Chunk { seq, data, .. } => {
                    assert_eq!(seq, chunks);
                    chunks += 1;
                    assembled.push_str(&data);
                }
                Frame::Done { reply, stream, chunks: n, bytes, digest } => {
                    assert_eq!(stream, "netlist");
                    assert_eq!(n, chunks);
                    assert_eq!(bytes as usize, payload.len());
                    assert_eq!(digest, payload_digest(assembled.as_bytes()));
                    assert_eq!(reply.field_str("verdict"), Some("proven"));
                    break;
                }
                Frame::Reply(r) => panic!("unexpected plain reply {r:?}"),
            }
        }
        assert_eq!(assembled, payload);
        assert!(sender.next_line().is_none());
    }

    #[test]
    fn empty_payload_still_emits_done() {
        let mut sender =
            StreamSender::new(Reply::ok("e", "report").versioned(2), "summary", String::new(), 8);
        let line = sender.next_line().expect("done");
        match Frame::parse_line(line.trim_end()).expect("parses") {
            Frame::Done { chunks, bytes, .. } => assert_eq!((chunks, bytes), (0, 0)),
            other => panic!("expected done, got {other:?}"),
        }
        assert!(sender.next_line().is_none());
    }
}
