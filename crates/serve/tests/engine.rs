//! In-process integration tests for the resident engine: a real TCP
//! server per test, driven over the wire.
//!
//! The process-global pieces these tests touch (the obs sink, the
//! SIGTERM flag) are avoided: drain is exercised through the protocol's
//! `shutdown` op, and no test installs a trace sink.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use odcfp_netlist::CellLibrary;
use odcfp_serve::proto::{payload_digest, request_line, FieldValue, Frame};
use odcfp_serve::{ConnMode, Reply, ServeSummary, Server, ServerConfig};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};
use odcfp_verilog::write_verilog;

/// A running server plus a handle to its eventual summary.
struct TestServer {
    addr: String,
    handle: JoinHandle<ServeSummary>,
}

fn start(config: ServerConfig) -> TestServer {
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve run"));
    TestServer { addr, handle }
}

impl TestServer {
    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    /// Drains via the protocol and returns the run summary.
    fn shutdown(self) -> ServeSummary {
        let mut c = self.connect();
        let reply = c.roundtrip(&request_line("shutdown", "admin", None, "shutdown", &[]));
        assert!(reply.ok, "shutdown accepted: {reply:?}");
        self.handle.join().expect("server thread")
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send_raw(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send nl");
        self.stream.flush().expect("flush");
    }

    fn read_reply(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Reply::parse_line(line.trim_end()).unwrap_or_else(|| panic!("parseable reply: {line:?}"))
    }

    fn roundtrip(&mut self, line: &str) -> Reply {
        self.send_raw(line);
        self.read_reply()
    }

    fn read_frame(&mut self) -> Frame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read frame");
        Frame::parse_line(line.trim_end())
            .unwrap_or_else(|| panic!("parseable frame: {line:?}"))
    }

    /// Reads one complete reply that may arrive chunked: collects
    /// `chunk` frames in sequence, checks the `done` trailer's digest,
    /// and returns the reply with the streamed payload merged back in.
    fn read_assembled_reply(&mut self) -> Reply {
        let mut assembled = String::new();
        let mut next_seq = 0u64;
        loop {
            match self.read_frame() {
                Frame::Reply(reply) => {
                    assert_eq!(next_seq, 0, "plain reply after chunks");
                    return reply;
                }
                Frame::Chunk { seq, data, .. } => {
                    assert_eq!(seq, next_seq, "chunks arrive in order");
                    next_seq += 1;
                    assembled.push_str(&data);
                }
                Frame::Done {
                    reply,
                    stream,
                    chunks,
                    bytes,
                    digest,
                } => {
                    assert_eq!(chunks, next_seq, "done counts the chunks");
                    assert_eq!(bytes as usize, assembled.len());
                    assert_eq!(digest, payload_digest(assembled.as_bytes()));
                    return reply.field(&stream, assembled);
                }
            }
        }
    }
}

/// A small deterministic Verilog circuit, distinct per seed.
fn circuit_text(seed: u64) -> String {
    write_verilog(&random_dag(CellLibrary::standard(), DagParams::small(seed)))
}

fn verify_args(golden: &str, candidate: &str) -> Vec<(&'static str, FieldValue)> {
    vec![
        ("golden_text", golden.into()),
        ("golden_format", "v".into()),
        ("candidate_text", candidate.into()),
        ("candidate_format", "v".into()),
    ]
}

#[test]
fn bad_input_answers_errors_without_disconnecting() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();

    // Garbage, bad JSON, unknown op, wrong version — each gets a
    // structured reply on the same connection.
    let e = c.roundtrip("this is not json");
    assert!(!e.ok);
    assert_eq!(e.error.as_deref(), Some("bad_request"));

    let e = c.roundtrip("{\"v\":1,\"id\":\"q\",\"op\":\"frobnicate\"}");
    assert_eq!(e.error.as_deref(), Some("bad_request"));
    assert_eq!(e.id, "q", "id recovered from the bad request");

    let e = c.roundtrip("{\"v\":99,\"id\":\"w\",\"op\":\"ping\"}");
    assert_eq!(e.error.as_deref(), Some("unsupported_version"));

    // The connection is still serviceable.
    let pong = c.roundtrip(&request_line("p1", "t", None, "ping", &[]));
    assert!(pong.ok, "{pong:?}");
    assert_eq!(pong.field_bool("draining"), Some(false));

    srv.shutdown();
}

#[test]
fn verify_serves_warm_and_reports_cache_disposition() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let golden = circuit_text(11);

    let first = c.roundtrip(&request_line(
        "v1",
        "acme",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(first.ok, "{first:?}");
    assert_eq!(first.field_str("verdict"), Some("proven"));
    assert_eq!(first.field_str("cache"), Some("miss"));

    let second = c.roundtrip(&request_line(
        "v2",
        "other-tenant",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert_eq!(second.field_str("verdict"), Some("proven"));
    assert_eq!(
        second.field_str("cache"),
        Some("hit"),
        "warm state is shared across tenants: {second:?}"
    );

    let summary = srv.shutdown();
    assert_eq!(summary.panics, 0);
    assert!(summary.served >= 2);
}

#[test]
fn embed_is_deterministic_and_extractable_via_reply() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let base = circuit_text(12);
    let args: Vec<(&str, FieldValue)> = vec![
        ("design_text", base.as_str().into()),
        ("design_format", "v".into()),
        ("seed", 7u64.into()),
    ];
    let a = c.roundtrip(&request_line("e1", "t", None, "embed", &args));
    let b = c.roundtrip(&request_line("e2", "t", None, "embed", &args));
    assert!(a.ok && b.ok, "{a:?} / {b:?}");
    assert_eq!(a.field_str("bits"), b.field_str("bits"));
    assert_eq!(
        a.field_str("netlist"),
        b.field_str("netlist"),
        "same seed, same copy — warm path included"
    );
    assert_eq!(a.field_str("cache"), Some("miss"));
    assert_eq!(b.field_str("cache"), Some("hit"));
    srv.shutdown();
}

#[test]
fn cache_budget_below_working_set_degrades_to_cold_rebuilds() {
    // Budget fits exactly one of the two circuits; alternating them
    // must keep evicting, and every answer must still be correct.
    let net_a = random_dag(CellLibrary::standard(), DagParams::small(21));
    let net_b = random_dag(CellLibrary::standard(), DagParams::small(22));
    let (a, b) = (write_verilog(&net_a), write_verilog(&net_b));
    let cost = |t: &str, n: &odcfp_netlist::Netlist| {
        odcfp_serve::WarmCache::estimate_cost(t.len(), n.num_gates())
    };
    let srv = start(ServerConfig {
        cache_budget: cost(&a, &net_a).max(cost(&b, &net_b)),
        ..ServerConfig::default()
    });
    let mut c = srv.connect();
    let mut dispositions = Vec::new();
    for (i, golden) in [&a, &b, &a, &b].iter().enumerate() {
        let reply = c.roundtrip(&request_line(
            &format!("r{i}"),
            "t",
            None,
            "verify",
            &verify_args(golden, golden),
        ));
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.field_str("verdict"), Some("proven"));
        dispositions.push(reply.field_str("cache").unwrap().to_owned());
    }
    assert_eq!(
        dispositions,
        vec!["miss", "miss", "miss", "miss"],
        "a working set over budget keeps rebuilding cold, never crashing"
    );
    srv.shutdown();
}

#[test]
fn deadline_cancels_spin_probe_with_structured_reply() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let started = Instant::now();
    let reply = c.roundtrip(&request_line(
        "spin",
        "t",
        Some(120),
        "probe",
        &[("mode", "spin".into())],
    ));
    let elapsed = started.elapsed();
    assert!(!reply.ok);
    assert_eq!(reply.error.as_deref(), Some("deadline"), "{reply:?}");
    assert!(
        elapsed < Duration::from_secs(20),
        "cancelled promptly, not at the 30s spin cap: {elapsed:?}"
    );
    srv.shutdown();
}

#[test]
fn panic_probe_is_isolated_and_counted() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let boom = c.roundtrip(&request_line(
        "boom",
        "hostile",
        None,
        "probe",
        &[("mode", "panic".into())],
    ));
    assert!(!boom.ok);
    assert_eq!(boom.error.as_deref(), Some("panic"));
    assert!(
        boom.message.as_deref().unwrap().contains("deliberate panic"),
        "diagnostic carries the payload: {boom:?}"
    );

    // The process survived; real work still succeeds on the same
    // connection and on a fresh one.
    let golden = circuit_text(31);
    let ok = c.roundtrip(&request_line(
        "after",
        "hostile",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(ok.ok, "{ok:?}");
    let mut c2 = srv.connect();
    assert!(c2.roundtrip(&request_line("p", "t", None, "ping", &[])).ok);

    let summary = srv.shutdown();
    assert_eq!(summary.panics, 1);
}

#[test]
fn overload_sheds_with_structured_replies_and_recovers() {
    // One worker, queue depth one: a spin probe occupies the worker,
    // one request queues, and everything beyond that must shed.
    let srv = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut blocker = srv.connect();
    blocker.send_raw(&request_line(
        "block",
        "heavy",
        Some(1_500),
        "probe",
        &[("mode", "spin".into())],
    ));
    // Let the worker pick the spin probe up.
    std::thread::sleep(Duration::from_millis(300));

    let mut filler = srv.connect();
    filler.send_raw(&request_line(
        "fill",
        "heavy",
        Some(2_000),
        "probe",
        &[("mode", "spin".into())],
    ));
    std::thread::sleep(Duration::from_millis(100));

    let mut shed = srv.connect();
    let golden = circuit_text(41);
    let rejected = shed.roundtrip(&request_line(
        "shed2",
        "light",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(!rejected.ok);
    assert_eq!(rejected.error.as_deref(), Some("overloaded"), "{rejected:?}");
    assert!(rejected.message.as_deref().unwrap().contains("queue full"));

    // Inline control ops still answer under full load.
    assert!(shed.roundtrip(&request_line("p", "light", None, "ping", &[])).ok);

    // Once the spin probes hit their deadlines, capacity returns.
    assert_eq!(blocker.read_reply().error.as_deref(), Some("deadline"));
    assert_eq!(filler.read_reply().error.as_deref(), Some("deadline"));
    let recovered = shed.roundtrip(&request_line(
        "again",
        "light",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(recovered.ok, "load shed is transient: {recovered:?}");

    let summary = srv.shutdown();
    assert!(summary.rejected >= 2);
}

#[test]
fn shutdown_drains_queued_work_before_exiting() {
    let srv = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = srv.addr.clone();
    // Occupy the single worker, queue real work behind it, then request
    // shutdown: the admitted request must still be answered (drain
    // finishes the queue before the process exits).
    let golden = circuit_text(51);
    let mut blocker = srv.connect();
    blocker.send_raw(&request_line(
        "block",
        "t",
        Some(700),
        "probe",
        &[("mode", "spin".into())],
    ));
    let mut worker_conn = srv.connect();
    worker_conn.send_raw(&request_line(
        "queued",
        "t",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    // Ensure both requests are admitted before drain closes the queue.
    std::thread::sleep(Duration::from_millis(300));
    let summary = srv.shutdown();
    assert_eq!(blocker.read_reply().error.as_deref(), Some("deadline"));
    let reply = worker_conn.read_reply();
    assert!(reply.ok, "queued work drained, not dropped: {reply:?}");
    assert_eq!(reply.field_str("verdict"), Some("proven"));
    assert!(summary.served >= 2);

    // Post-drain, the port is gone.
    assert!(TcpStream::connect(&addr).is_err());
}

/// A tiny golden circuit in BLIF, plus a mutant whose `g` output gains
/// a cover row — functionally different, so verify must refute it.
const BLIF_GOLDEN: &str = "\
.model e2e
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.names x c g
10 1
.end
";

fn blif_mutant() -> String {
    BLIF_GOLDEN.replace(".names x c g\n10 1\n", ".names x c g\n10 1\n01 1\n")
}

fn verify_blif_args(golden: &str, candidate: &str) -> Vec<(&'static str, FieldValue)> {
    vec![
        ("golden_text", golden.into()),
        ("golden_format", "blif".into()),
        ("candidate_text", candidate.into()),
        ("candidate_format", "blif".into()),
    ]
}

#[test]
fn partial_frames_split_across_writes_decode_once_complete() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    // One request delivered in three torn writes: nothing answers until
    // the newline lands, then exactly one reply arrives.
    let line = request_line("torn", "t", None, "ping", &[]);
    let bytes = format!("{line}\n");
    let (a, rest) = bytes.split_at(7);
    let (b, tail) = rest.split_at(rest.len() / 2);
    for piece in [a, b, tail] {
        c.stream.write_all(piece.as_bytes()).expect("torn write");
        c.stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(60));
    }
    let reply = c.read_reply();
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.id, "torn");
    srv.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    // One worker, one tenant lane: FIFO end to end, so replies come
    // back in submission order even when all requests land in a single
    // socket write.
    let srv = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = srv.connect();
    let golden = circuit_text(61);
    let mut burst = String::new();
    for i in 0..3 {
        burst.push_str(&request_line(
            &format!("pl{i}"),
            "t",
            None,
            "verify",
            &verify_args(&golden, &golden),
        ));
        burst.push('\n');
    }
    c.stream.write_all(burst.as_bytes()).expect("burst write");
    c.stream.flush().expect("flush");
    for i in 0..3 {
        let reply = c.read_assembled_reply();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.id, format!("pl{i}"), "replies keep request order");
        assert_eq!(reply.field_str("verdict"), Some("proven"));
    }
    srv.shutdown();
}

#[test]
fn oversized_frame_rejected_and_connection_survives() {
    for mode in [ConnMode::Reactor, ConnMode::Threaded] {
        let srv = start(ServerConfig {
            mode,
            max_line: 1024,
            ..ServerConfig::default()
        });
        let mut c = srv.connect();
        let huge = "x".repeat(4 * 1024);
        let e = c.roundtrip(&huge);
        assert!(!e.ok);
        assert_eq!(e.error.as_deref(), Some("bad_request"), "{mode:?}");
        assert!(
            e.message.as_deref().unwrap().contains("exceeds 1024 bytes"),
            "{mode:?}: {e:?}"
        );
        // Framing resynchronized at the newline: the connection lives.
        let pong = c.roundtrip(&request_line("p", "t", None, "ping", &[]));
        assert!(pong.ok, "{mode:?}: {pong:?}");
        srv.shutdown();
    }
}

#[test]
fn streamed_reply_reassembles_and_matches_inline_payload() {
    // Force streaming on a small payload: threshold 1, 64-byte chunks.
    let streaming = start(ServerConfig {
        stream_threshold: 1,
        stream_chunk: 64,
        ..ServerConfig::default()
    });
    let base = circuit_text(12);
    let args: Vec<(&str, FieldValue)> = vec![
        ("design_text", base.as_str().into()),
        ("design_format", "v".into()),
        ("seed", 7u64.into()),
    ];
    let mut c = streaming.connect();
    c.send_raw(&request_line("s1", "t", None, "embed", &args));
    // The wire shape is chunk…chunk done, never a plain reply.
    let first = c.read_frame();
    assert!(matches!(first, Frame::Chunk { seq: 0, .. }), "{first:?}");
    let mut assembled = match first {
        Frame::Chunk { data, .. } => data,
        _ => unreachable!(),
    };
    let mut next_seq = 1u64;
    let streamed = loop {
        match c.read_frame() {
            Frame::Chunk { seq, data, .. } => {
                assert_eq!(seq, next_seq);
                next_seq += 1;
                assembled.push_str(&data);
            }
            Frame::Done {
                reply,
                stream,
                chunks,
                bytes,
                digest,
            } => {
                assert_eq!(stream, "netlist");
                assert_eq!(chunks, next_seq);
                assert!(chunks >= 2, "64-byte chunks split a netlist");
                assert_eq!(bytes as usize, assembled.len());
                assert_eq!(digest, payload_digest(assembled.as_bytes()));
                break reply;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert!(streamed.ok);
    assert!(streamed.field_str("bits").is_some(), "scalars ride the done frame");
    streaming.shutdown();

    // The reassembled payload is byte-identical to what a non-streaming
    // server answers inline.
    let inline = start(ServerConfig::default());
    let mut c = inline.connect();
    let reply = c.roundtrip(&request_line("s2", "t", None, "embed", &args));
    assert_eq!(reply.field_str("netlist"), Some(assembled.as_str()));
    inline.shutdown();
}

#[test]
fn v1_requests_always_get_single_line_replies() {
    // Streaming is v2-only: a v1 client on a streaming-eager server
    // still receives its payload inline, version mirrored.
    let srv = start(ServerConfig {
        stream_threshold: 1,
        stream_chunk: 64,
        ..ServerConfig::default()
    });
    let mut c = srv.connect();
    let base = circuit_text(12);
    let line = format!(
        "{{\"v\":1,\"id\":\"old\",\"op\":\"embed\",\"seed\":7,\"design_format\":\"v\",\"design_text\":\"{}\"}}",
        odcfp_serve::proto::escape_json(&base)
    );
    let reply = c.roundtrip(&line);
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.v, 1, "reply mirrors the request's version");
    assert!(
        reply.field_str("netlist").is_some(),
        "payload inline, not chunked: {reply:?}"
    );
    srv.shutdown();
}

#[test]
fn slow_reader_backpressure_never_blocks_the_worker_pool() {
    // One worker. Connection A pipelines several embeds whose chunked
    // replies it refuses to read; its outbound bytes pile up in the
    // reactor's per-connection queue. Connection B's request must still
    // be served promptly — a slow reader stalls only itself.
    let srv = start(ServerConfig {
        workers: 1,
        stream_threshold: 1,
        stream_chunk: 2048,
        ..ServerConfig::default()
    });
    let base = circuit_text(13);
    let args: Vec<(&str, FieldValue)> = vec![
        ("design_text", base.as_str().into()),
        ("design_format", "v".into()),
        ("seed", 9u64.into()),
    ];
    let mut slow = srv.connect();
    let mut burst = String::new();
    for i in 0..5 {
        burst.push_str(&request_line(&format!("slow{i}"), "a", None, "embed", &args));
        burst.push('\n');
    }
    slow.stream.write_all(burst.as_bytes()).expect("burst");
    slow.stream.flush().expect("flush");

    // While A ignores its replies, B roundtrips through the same single
    // worker. If workers blocked on A's socket this would time out.
    let mut fast = srv.connect();
    let golden = circuit_text(14);
    let started = Instant::now();
    let reply = fast.roundtrip(&request_line(
        "fast",
        "b",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(reply.ok, "{reply:?}");
    assert!(
        started.elapsed() < Duration::from_secs(25),
        "B served while A's replies sit queued: {:?}",
        started.elapsed()
    );

    // A's replies were queued, not dropped: all five drain with intact
    // digests once it finally reads.
    for i in 0..5 {
        let reply = slow.read_assembled_reply();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.id, format!("slow{i}"));
        assert!(reply.field_str("netlist").is_some());
    }
    srv.shutdown();
}

#[test]
fn batched_verification_is_verdict_identical_to_per_request() {
    // Candidate mix: netlist copies (proven), a functional mutant
    // (refuted), and a fingerprint code checked against the golden's
    // code space. The batched server coalesces them into one warm
    // probe; verdicts must match a server running strictly one-by-one.
    let golden = BLIF_GOLDEN.to_owned();
    let mutant = blif_mutant();

    // A valid code for the golden comes from embedding with a seed.
    let bits = {
        let srv = start(ServerConfig::default());
        let mut c = srv.connect();
        let reply = c.roundtrip(&request_line(
            "mint",
            "t",
            None,
            "embed",
            &[
                ("design_text", golden.as_str().into()),
                ("design_format", "blif".into()),
                ("seed", 3u64.into()),
            ],
        ));
        assert!(reply.ok, "{reply:?}");
        let bits = reply.field_str("bits").expect("bits minted").to_owned();
        srv.shutdown();
        bits
    };
    let requests: Vec<String> = vec![
        request_line("q0", "t0", None, "verify", &verify_blif_args(&golden, &golden)),
        request_line("q1", "t1", None, "verify", &verify_blif_args(&golden, &mutant)),
        request_line("q2", "t2", None, "verify", &verify_blif_args(&golden, &golden)),
        request_line(
            "q3",
            "t3",
            None,
            "verify",
            &[
                ("golden_text", golden.as_str().into()),
                ("golden_format", "blif".into()),
                ("candidate_bits", bits.as_str().into()),
            ],
        ),
        request_line("q4", "t4", None, "verify", &verify_blif_args(&golden, &mutant)),
    ];

    // Batched: a spin probe pins the single worker while the verifies
    // queue, so the gather window sees them all at once.
    let batched = start(ServerConfig {
        workers: 1,
        batch_window: Duration::from_millis(200),
        batch_max: 16,
        ..ServerConfig::default()
    });
    let mut pin = batched.connect();
    pin.send_raw(&request_line(
        "pin",
        "pinner",
        Some(500),
        "probe",
        &[("mode", "spin".into())],
    ));
    std::thread::sleep(Duration::from_millis(150));
    let mut conns: Vec<Client> = requests
        .iter()
        .map(|r| {
            let mut c = batched.connect();
            c.send_raw(r);
            c
        })
        .collect();
    assert_eq!(pin.read_reply().error.as_deref(), Some("deadline"));
    let batched_replies: Vec<Reply> =
        conns.iter_mut().map(Client::read_assembled_reply).collect();
    batched.shutdown();

    // Per-request: batch_max 1 makes every pop a singleton.
    let solo = start(ServerConfig {
        workers: 1,
        batch_max: 1,
        ..ServerConfig::default()
    });
    let mut c = solo.connect();
    let solo_replies: Vec<Reply> = requests
        .iter()
        .map(|r| {
            c.send_raw(r);
            c.read_assembled_reply()
        })
        .collect();
    solo.shutdown();

    let verdicts = |replies: &[Reply]| -> Vec<(String, Option<String>)> {
        replies
            .iter()
            .map(|r| (r.id.clone(), r.field_str("verdict").map(str::to_owned)))
            .collect()
    };
    assert_eq!(
        verdicts(&batched_replies),
        verdicts(&solo_replies),
        "coalescing changes latency, never verdicts"
    );
    assert_eq!(
        verdicts(&solo_replies)
            .iter()
            .map(|(_, v)| v.as_deref().unwrap_or("?").to_owned())
            .collect::<Vec<_>>(),
        vec!["proven", "refuted", "proven", "proven", "refuted"],
    );
    assert!(
        batched_replies
            .iter()
            .any(|r| r.field_bool("batched") == Some(true)
                && r.field_u64("batch").is_some_and(|n| n >= 2)),
        "the gather window coalesced concurrent requests: {:?}",
        batched_replies
            .iter()
            .map(|r| (r.id.clone(), r.field_bool("batched")))
            .collect::<Vec<_>>()
    );
    assert!(
        solo_replies.iter().all(|r| r.field_bool("batched").is_none()),
        "singleton execution carries no batch fields"
    );
}
