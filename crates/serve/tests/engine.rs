//! In-process integration tests for the resident engine: a real TCP
//! server per test, driven over the wire.
//!
//! The process-global pieces these tests touch (the obs sink, the
//! SIGTERM flag) are avoided: drain is exercised through the protocol's
//! `shutdown` op, and no test installs a trace sink.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use odcfp_netlist::CellLibrary;
use odcfp_serve::proto::{request_line, FieldValue};
use odcfp_serve::{Reply, ServeSummary, Server, ServerConfig};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};
use odcfp_verilog::write_verilog;

/// A running server plus a handle to its eventual summary.
struct TestServer {
    addr: String,
    handle: JoinHandle<ServeSummary>,
}

fn start(config: ServerConfig) -> TestServer {
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve run"));
    TestServer { addr, handle }
}

impl TestServer {
    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    /// Drains via the protocol and returns the run summary.
    fn shutdown(self) -> ServeSummary {
        let mut c = self.connect();
        let reply = c.roundtrip(&request_line("shutdown", "admin", None, "shutdown", &[]));
        assert!(reply.ok, "shutdown accepted: {reply:?}");
        self.handle.join().expect("server thread")
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send_raw(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send nl");
        self.stream.flush().expect("flush");
    }

    fn read_reply(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Reply::parse_line(line.trim_end()).unwrap_or_else(|| panic!("parseable reply: {line:?}"))
    }

    fn roundtrip(&mut self, line: &str) -> Reply {
        self.send_raw(line);
        self.read_reply()
    }
}

/// A small deterministic Verilog circuit, distinct per seed.
fn circuit_text(seed: u64) -> String {
    write_verilog(&random_dag(CellLibrary::standard(), DagParams::small(seed)))
}

fn verify_args(golden: &str, candidate: &str) -> Vec<(&'static str, FieldValue)> {
    vec![
        ("golden_text", golden.into()),
        ("golden_format", "v".into()),
        ("candidate_text", candidate.into()),
        ("candidate_format", "v".into()),
    ]
}

#[test]
fn bad_input_answers_errors_without_disconnecting() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();

    // Garbage, bad JSON, unknown op, wrong version — each gets a
    // structured reply on the same connection.
    let e = c.roundtrip("this is not json");
    assert!(!e.ok);
    assert_eq!(e.error.as_deref(), Some("bad_request"));

    let e = c.roundtrip("{\"v\":1,\"id\":\"q\",\"op\":\"frobnicate\"}");
    assert_eq!(e.error.as_deref(), Some("bad_request"));
    assert_eq!(e.id, "q", "id recovered from the bad request");

    let e = c.roundtrip("{\"v\":99,\"id\":\"w\",\"op\":\"ping\"}");
    assert_eq!(e.error.as_deref(), Some("unsupported_version"));

    // The connection is still serviceable.
    let pong = c.roundtrip(&request_line("p1", "t", None, "ping", &[]));
    assert!(pong.ok, "{pong:?}");
    assert_eq!(pong.field_bool("draining"), Some(false));

    srv.shutdown();
}

#[test]
fn verify_serves_warm_and_reports_cache_disposition() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let golden = circuit_text(11);

    let first = c.roundtrip(&request_line(
        "v1",
        "acme",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(first.ok, "{first:?}");
    assert_eq!(first.field_str("verdict"), Some("proven"));
    assert_eq!(first.field_str("cache"), Some("miss"));

    let second = c.roundtrip(&request_line(
        "v2",
        "other-tenant",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert_eq!(second.field_str("verdict"), Some("proven"));
    assert_eq!(
        second.field_str("cache"),
        Some("hit"),
        "warm state is shared across tenants: {second:?}"
    );

    let summary = srv.shutdown();
    assert_eq!(summary.panics, 0);
    assert!(summary.served >= 2);
}

#[test]
fn embed_is_deterministic_and_extractable_via_reply() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let base = circuit_text(12);
    let args: Vec<(&str, FieldValue)> = vec![
        ("design_text", base.as_str().into()),
        ("design_format", "v".into()),
        ("seed", 7u64.into()),
    ];
    let a = c.roundtrip(&request_line("e1", "t", None, "embed", &args));
    let b = c.roundtrip(&request_line("e2", "t", None, "embed", &args));
    assert!(a.ok && b.ok, "{a:?} / {b:?}");
    assert_eq!(a.field_str("bits"), b.field_str("bits"));
    assert_eq!(
        a.field_str("netlist"),
        b.field_str("netlist"),
        "same seed, same copy — warm path included"
    );
    assert_eq!(a.field_str("cache"), Some("miss"));
    assert_eq!(b.field_str("cache"), Some("hit"));
    srv.shutdown();
}

#[test]
fn cache_budget_below_working_set_degrades_to_cold_rebuilds() {
    // Budget fits exactly one of the two circuits; alternating them
    // must keep evicting, and every answer must still be correct.
    let net_a = random_dag(CellLibrary::standard(), DagParams::small(21));
    let net_b = random_dag(CellLibrary::standard(), DagParams::small(22));
    let (a, b) = (write_verilog(&net_a), write_verilog(&net_b));
    let cost = |t: &str, n: &odcfp_netlist::Netlist| {
        odcfp_serve::WarmCache::estimate_cost(t.len(), n.num_gates())
    };
    let srv = start(ServerConfig {
        cache_budget: cost(&a, &net_a).max(cost(&b, &net_b)),
        ..ServerConfig::default()
    });
    let mut c = srv.connect();
    let mut dispositions = Vec::new();
    for (i, golden) in [&a, &b, &a, &b].iter().enumerate() {
        let reply = c.roundtrip(&request_line(
            &format!("r{i}"),
            "t",
            None,
            "verify",
            &verify_args(golden, golden),
        ));
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.field_str("verdict"), Some("proven"));
        dispositions.push(reply.field_str("cache").unwrap().to_owned());
    }
    assert_eq!(
        dispositions,
        vec!["miss", "miss", "miss", "miss"],
        "a working set over budget keeps rebuilding cold, never crashing"
    );
    srv.shutdown();
}

#[test]
fn deadline_cancels_spin_probe_with_structured_reply() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let started = Instant::now();
    let reply = c.roundtrip(&request_line(
        "spin",
        "t",
        Some(120),
        "probe",
        &[("mode", "spin".into())],
    ));
    let elapsed = started.elapsed();
    assert!(!reply.ok);
    assert_eq!(reply.error.as_deref(), Some("deadline"), "{reply:?}");
    assert!(
        elapsed < Duration::from_secs(20),
        "cancelled promptly, not at the 30s spin cap: {elapsed:?}"
    );
    srv.shutdown();
}

#[test]
fn panic_probe_is_isolated_and_counted() {
    let srv = start(ServerConfig::default());
    let mut c = srv.connect();
    let boom = c.roundtrip(&request_line(
        "boom",
        "hostile",
        None,
        "probe",
        &[("mode", "panic".into())],
    ));
    assert!(!boom.ok);
    assert_eq!(boom.error.as_deref(), Some("panic"));
    assert!(
        boom.message.as_deref().unwrap().contains("deliberate panic"),
        "diagnostic carries the payload: {boom:?}"
    );

    // The process survived; real work still succeeds on the same
    // connection and on a fresh one.
    let golden = circuit_text(31);
    let ok = c.roundtrip(&request_line(
        "after",
        "hostile",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(ok.ok, "{ok:?}");
    let mut c2 = srv.connect();
    assert!(c2.roundtrip(&request_line("p", "t", None, "ping", &[])).ok);

    let summary = srv.shutdown();
    assert_eq!(summary.panics, 1);
}

#[test]
fn overload_sheds_with_structured_replies_and_recovers() {
    // One worker, queue depth one: a spin probe occupies the worker,
    // one request queues, and everything beyond that must shed.
    let srv = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut blocker = srv.connect();
    blocker.send_raw(&request_line(
        "block",
        "heavy",
        Some(1_500),
        "probe",
        &[("mode", "spin".into())],
    ));
    // Let the worker pick the spin probe up.
    std::thread::sleep(Duration::from_millis(300));

    let mut filler = srv.connect();
    filler.send_raw(&request_line(
        "fill",
        "heavy",
        Some(2_000),
        "probe",
        &[("mode", "spin".into())],
    ));
    std::thread::sleep(Duration::from_millis(100));

    let mut shed = srv.connect();
    let golden = circuit_text(41);
    let rejected = shed.roundtrip(&request_line(
        "shed2",
        "light",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(!rejected.ok);
    assert_eq!(rejected.error.as_deref(), Some("overloaded"), "{rejected:?}");
    assert!(rejected.message.as_deref().unwrap().contains("queue full"));

    // Inline control ops still answer under full load.
    assert!(shed.roundtrip(&request_line("p", "light", None, "ping", &[])).ok);

    // Once the spin probes hit their deadlines, capacity returns.
    assert_eq!(blocker.read_reply().error.as_deref(), Some("deadline"));
    assert_eq!(filler.read_reply().error.as_deref(), Some("deadline"));
    let recovered = shed.roundtrip(&request_line(
        "again",
        "light",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    assert!(recovered.ok, "load shed is transient: {recovered:?}");

    let summary = srv.shutdown();
    assert!(summary.rejected >= 2);
}

#[test]
fn shutdown_drains_queued_work_before_exiting() {
    let srv = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let addr = srv.addr.clone();
    // Occupy the single worker, queue real work behind it, then request
    // shutdown: the admitted request must still be answered (drain
    // finishes the queue before the process exits).
    let golden = circuit_text(51);
    let mut blocker = srv.connect();
    blocker.send_raw(&request_line(
        "block",
        "t",
        Some(700),
        "probe",
        &[("mode", "spin".into())],
    ));
    let mut worker_conn = srv.connect();
    worker_conn.send_raw(&request_line(
        "queued",
        "t",
        None,
        "verify",
        &verify_args(&golden, &golden),
    ));
    // Ensure both requests are admitted before drain closes the queue.
    std::thread::sleep(Duration::from_millis(300));
    let summary = srv.shutdown();
    assert_eq!(blocker.read_reply().error.as_deref(), Some("deadline"));
    let reply = worker_conn.read_reply();
    assert!(reply.ok, "queued work drained, not dropped: {reply:?}");
    assert_eq!(reply.field_str("verdict"), Some("proven"));
    assert!(summary.served >= 2);

    // Post-drain, the port is gone.
    assert!(TcpStream::connect(&addr).is_err());
}
