//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Offline builds of this workspace cannot download crates, so this
//! vendored crate implements exactly the subset of the proptest API the
//! repository's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * strategies for integer ranges, [`any`], [`Just`], tuples,
//!   [`collection::vec`] and a small `[class]{lo,hi}` regex-string subset;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is **no shrinking** and no persistence:
//! cases are generated from a deterministic per-test seed, so failures
//! reproduce exactly but are reported at their original (unshrunk) size.

#![forbid(unsafe_code)]

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Mirrors `proptest::prop`: re-exports the collection module.
pub mod prop {
    pub use crate::collection;
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; the same seed replays the same case.
    pub fn seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over a test name, for stable per-test seeds.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below(hi - lo)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// A uniform choice between boxed strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given options; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Boxing helper used by [`prop_oneof!`] so heterogeneous strategy types
/// unify on their value type.
pub trait IntoBoxedStrategy<V> {
    /// Boxes the strategy.
    fn into_boxed(self) -> Box<dyn Strategy<Value = V>>;
}

impl<V, S: Strategy<Value = V> + 'static> IntoBoxedStrategy<V> for S {
    fn into_boxed(self) -> Box<dyn Strategy<Value = V>> {
        Box::new(self)
    }
}

/// String strategies from a tiny regex subset: `[class]{lo,hi}` where the
/// class supports literal characters, `a-z` ranges and `\n`/`\t`/`\\`
/// escapes. This covers the patterns used by the workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi); `None` if unsupported.
fn parse_simple_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.parse().ok()?;
    let hi: usize = counts.1.parse().ok()?;
    if hi < lo {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let escaped = match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                alphabet.push(escaped);
                prev = Some(escaped);
            }
            '-' if prev.is_some() && chars.peek().is_some() => {
                let start = prev.take().expect("checked");
                let end = chars.next()?;
                for code in (start as u32 + 1)..=(end as u32) {
                    alphabet.push(char::from_u32(code)?);
                }
            }
            other => {
                alphabet.push(other);
                prev = Some(other);
            }
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Mirrors `proptest::prop_oneof!`: uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::IntoBoxedStrategy::into_boxed($strategy)),+
        ])
    };
}

/// Mirrors `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors the `proptest!` block macro: expands each contained function
/// into a `#[test]` that generates and runs `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(cfg.cases) {
                let mut rng =
                    $crate::TestRng::seed($crate::seed_for(stringify!($name), case));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_class_members() {
        let mut rng = TestRng::seed(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n\\t]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop::collection::vec(
            prop_oneof![Just("a".to_owned()), "[bc]{1,2}"],
            0..4,
        )
        .prop_map(|parts| parts.join(""));
        let mut rng = TestRng::seed(3);
        for _ in 0..100 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().all(|c| "abc".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn exact_vec_sizes() {
        let mut rng = TestRng::seed(4);
        let v = Strategy::generate(&prop::collection::vec(any::<bool>(), 4), &mut rng);
        assert_eq!(v.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, asserts work.
        #[test]
        fn macro_smoke(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag);
        }
    }
}
