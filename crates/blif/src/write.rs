//! The BLIF writer.

use std::fmt::Write as _;

use crate::network::LogicNetwork;

/// Serializes a [`LogicNetwork`] as BLIF text.
///
/// The output parses back ([`crate::parse_blif`]) to an equal network:
/// `parse(write(n)) == n` for any valid network (covered by tests).
pub fn write_blif(network: &LogicNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", network.name());
    if !network.inputs().is_empty() {
        let _ = writeln!(out, ".inputs {}", network.inputs().join(" "));
    }
    if !network.outputs().is_empty() {
        let _ = writeln!(out, ".outputs {}", network.outputs().join(" "));
    }
    for node in network.nodes() {
        let mut sig = node.fanins.clone();
        sig.push(node.output.clone());
        let _ = writeln!(out, ".names {}", sig.join(" "));
        let value = if node.cover.output_value() { "1" } else { "0" };
        for cube in node.cover.cubes() {
            if node.fanins.is_empty() {
                let _ = writeln!(out, "{value}");
            } else {
                let _ = writeln!(out, "{cube} {value}");
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_blif;

    #[test]
    fn roundtrip_multi_node() {
        let src = "\
.model rt
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names a g
0 1
.end
";
        let net = parse_blif(src).unwrap();
        let text = write_blif(&net);
        let back = parse_blif(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn roundtrip_constants_and_offsets() {
        let src = "\
.model k
.inputs a b
.outputs one y
.names one
1
.names a b y
11 0
.end
";
        let net = parse_blif(src).unwrap();
        let back = parse_blif(&write_blif(&net)).unwrap();
        assert_eq!(net, back);
        assert_eq!(back.eval(&[true, true]), vec![true, false]);
    }

    #[test]
    fn empty_network_writes_model_and_end() {
        let net = LogicNetwork::new("void");
        let text = write_blif(&net);
        assert_eq!(text, ".model void\n.end\n");
    }
}
