//! Technology-independent Boolean networks (the semantic content of a BLIF
//! model).

use std::collections::HashMap;
use std::fmt;

use odcfp_logic::Sop;

/// One internal node: a signal defined by a sum-of-products cover over named
/// fanin signals (a BLIF `.names` block).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicNode {
    /// The signal this node defines.
    pub output: String,
    /// The fanin signal names, in cover-column order.
    pub fanins: Vec<String>,
    /// The cover defining the node function.
    pub cover: Sop,
}

/// A semantic defect in a [`LogicNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A signal is referenced but neither a primary input nor defined by a
    /// node.
    Undefined {
        /// The missing signal.
        signal: String,
    },
    /// A signal is defined more than once.
    Redefined {
        /// The multiply-defined signal.
        signal: String,
    },
    /// The node dependency graph is cyclic.
    Cyclic {
        /// A signal on the cycle.
        signal: String,
    },
    /// A node's cover width does not match its fanin count.
    CoverWidthMismatch {
        /// The offending node's output signal.
        signal: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Undefined { signal } => write!(f, "signal {signal:?} is undefined"),
            NetworkError::Redefined { signal } => {
                write!(f, "signal {signal:?} is defined more than once")
            }
            NetworkError::Cyclic { signal } => {
                write!(f, "combinational cycle through signal {signal:?}")
            }
            NetworkError::CoverWidthMismatch { signal } => {
                write!(f, "cover width mismatch at node {signal:?}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A named Boolean network: primary inputs, primary outputs, and SOP nodes.
///
/// This is the exchange type between the BLIF front end and the technology
/// mapper; see the [crate documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicNetwork {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    nodes: Vec<LogicNode>,
}

impl LogicNetwork {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        LogicNetwork {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) {
        self.inputs.push(name.into());
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>) {
        self.outputs.push(name.into());
    }

    /// Adds an SOP node.
    pub fn add_node(&mut self, node: LogicNode) {
        self.nodes.push(node);
    }

    /// The primary input names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// The primary output names.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// The internal nodes, in declaration order.
    pub fn nodes(&self) -> &[LogicNode] {
        &self.nodes
    }

    /// The node defining `signal`, if any.
    pub fn node_for(&self, signal: &str) -> Option<&LogicNode> {
        self.nodes.iter().find(|n| n.output == signal)
    }

    /// Checks the network: unique definitions, every referenced signal
    /// defined, acyclic, cover widths consistent.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn validate(&self) -> Result<(), NetworkError> {
        let mut defined: HashMap<&str, usize> = HashMap::new();
        for i in &self.inputs {
            if defined.insert(i.as_str(), usize::MAX).is_some() {
                return Err(NetworkError::Redefined { signal: i.clone() });
            }
        }
        for (k, n) in self.nodes.iter().enumerate() {
            if n.cover.num_inputs() != n.fanins.len() {
                return Err(NetworkError::CoverWidthMismatch {
                    signal: n.output.clone(),
                });
            }
            if defined.insert(n.output.as_str(), k).is_some() {
                return Err(NetworkError::Redefined {
                    signal: n.output.clone(),
                });
            }
        }
        for n in &self.nodes {
            for fi in &n.fanins {
                if !defined.contains_key(fi.as_str()) {
                    return Err(NetworkError::Undefined { signal: fi.clone() });
                }
            }
        }
        for o in &self.outputs {
            if !defined.contains_key(o.as_str()) {
                return Err(NetworkError::Undefined { signal: o.clone() });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Node indices in topological order (fanins before the node).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Cyclic`] on a combinational cycle and
    /// [`NetworkError::Undefined`] on a dangling reference.
    pub fn topo_order(&self) -> Result<Vec<usize>, NetworkError> {
        let index: HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.output.as_str(), i))
            .collect();
        let input_set: HashMap<&str, ()> =
            self.inputs.iter().map(|i| (i.as_str(), ())).collect();
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for fi in &node.fanins {
                if let Some(&src) = index.get(fi.as_str()) {
                    indegree[i] += 1;
                    dependents[src].push(i);
                } else if !input_set.contains_key(fi.as_str()) {
                    return Err(NetworkError::Undefined { signal: fi.clone() });
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).expect("cycle remnant");
            return Err(NetworkError::Cyclic {
                signal: self.nodes[stuck].output.clone(),
            });
        }
        Ok(order)
    }

    /// Evaluates the network on one assignment of the primary inputs (in
    /// declaration order), returning primary output values in declaration
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input count or the network
    /// is invalid (validate first).
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs.len(), "input count mismatch");
        let mut values: HashMap<&str, bool> = HashMap::new();
        for (name, &v) in self.inputs.iter().zip(inputs) {
            values.insert(name.as_str(), v);
        }
        let order = self.topo_order().expect("invalid network");
        for i in order {
            let node = &self.nodes[i];
            let fanin_values: Vec<bool> = node
                .fanins
                .iter()
                .map(|f| *values.get(f.as_str()).expect("undefined fanin"))
                .collect();
            values.insert(node.output.as_str(), node.cover.eval(&fanin_values));
        }
        self.outputs
            .iter()
            .map(|o| *values.get(o.as_str()).expect("undefined output"))
            .collect()
    }

    /// The number of internal nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::Cube;

    fn xor_network() -> LogicNetwork {
        let mut net = LogicNetwork::new("xor2");
        net.add_input("a");
        net.add_input("b");
        net.add_output("y");
        net.add_node(LogicNode {
            output: "y".into(),
            fanins: vec!["a".into(), "b".into()],
            cover: Sop::new(
                2,
                vec!["10".parse::<Cube>().unwrap(), "01".parse().unwrap()],
                true,
            ),
        });
        net
    }

    #[test]
    fn validate_and_eval() {
        let net = xor_network();
        net.validate().unwrap();
        assert_eq!(net.eval(&[false, false]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
        assert_eq!(net.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn undefined_signal_detected() {
        let mut net = xor_network();
        net.add_output("ghost");
        assert_eq!(
            net.validate(),
            Err(NetworkError::Undefined {
                signal: "ghost".into()
            })
        );
    }

    #[test]
    fn redefinition_detected() {
        let mut net = xor_network();
        net.add_node(LogicNode {
            output: "y".into(),
            fanins: vec!["a".into()],
            cover: Sop::new(1, vec!["1".parse().unwrap()], true),
        });
        assert_eq!(
            net.validate(),
            Err(NetworkError::Redefined { signal: "y".into() })
        );
    }

    #[test]
    fn cycle_detected() {
        let mut net = LogicNetwork::new("cyc");
        net.add_input("a");
        net.add_output("p");
        let buf = |from: &str, to: &str| LogicNode {
            output: to.into(),
            fanins: vec![from.into()],
            cover: Sop::new(1, vec!["1".parse().unwrap()], true),
        };
        net.add_node(buf("q", "p"));
        net.add_node(buf("p", "q"));
        assert!(matches!(net.validate(), Err(NetworkError::Cyclic { .. })));
    }

    #[test]
    fn cover_width_mismatch_detected() {
        let mut net = LogicNetwork::new("w");
        net.add_input("a");
        net.add_output("y");
        net.add_node(LogicNode {
            output: "y".into(),
            fanins: vec!["a".into()],
            cover: Sop::new(2, vec!["11".parse().unwrap()], true),
        });
        assert!(matches!(
            net.validate(),
            Err(NetworkError::CoverWidthMismatch { .. })
        ));
    }

    #[test]
    fn multi_level_eval() {
        // f = (a & b) | c built from two nodes.
        let mut net = LogicNetwork::new("two-level");
        for i in ["a", "b", "c"] {
            net.add_input(i);
        }
        net.add_output("f");
        net.add_node(LogicNode {
            output: "t".into(),
            fanins: vec!["a".into(), "b".into()],
            cover: Sop::new(2, vec!["11".parse().unwrap()], true),
        });
        net.add_node(LogicNode {
            output: "f".into(),
            fanins: vec!["t".into(), "c".into()],
            cover: Sop::new(
                2,
                vec!["1-".parse().unwrap(), "-1".parse().unwrap()],
                true,
            ),
        });
        net.validate().unwrap();
        for i in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|v| (i >> v) & 1 == 1).collect();
            let expect = (bits[0] && bits[1]) || bits[2];
            assert_eq!(net.eval(&bits), vec![expect]);
        }
    }
}
