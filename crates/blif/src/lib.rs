//! Berkeley Logic Interchange Format (BLIF) support.
//!
//! The paper's flow starts from MCNC / ISCAS'85 benchmarks in BLIF, "which
//! specifies the circuits' logical behavior, not its physical layout". This
//! crate provides:
//!
//! * [`LogicNetwork`] — a technology-independent Boolean network: named
//!   primary inputs/outputs and nodes defined by sum-of-products covers
//!   ([`odcfp_logic::Sop`]), exactly the expressive power of combinational
//!   BLIF;
//! * [`parse_blif`] — a parser with line-accurate errors covering
//!   `.model`, `.inputs`, `.outputs`, `.names` (with `-`/`0`/`1` covers and
//!   both on-set and off-set outputs), comments, and line continuations;
//! * [`write_blif`] — the inverse writer (parse ∘ write is identity up to
//!   formatting).
//!
//! Sequential constructs (`.latch`) are rejected: the fingerprinting method
//! operates on combinational logic.
//!
//! # Example
//!
//! ```
//! use odcfp_blif::parse_blif;
//!
//! let src = "\
//! .model majority
//! .inputs a b c
//! .outputs m
//! .names a b c m
//! 11- 1
//! 1-1 1
//! -11 1
//! .end
//! ";
//! let net = parse_blif(src)?;
//! assert_eq!(net.name(), "majority");
//! assert_eq!(net.eval(&[true, true, false]), vec![true]);
//! assert_eq!(net.eval(&[true, false, false]), vec![false]);
//! # Ok::<(), odcfp_blif::ParseBlifError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod parse;
mod write;

pub use network::{LogicNetwork, LogicNode, NetworkError};
pub use parse::{parse_blif, ParseBlifError};
pub use write::write_blif;
