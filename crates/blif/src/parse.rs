//! The BLIF parser.

use std::fmt;

use odcfp_logic::{Cube, Sop};

use crate::network::{LogicNetwork, LogicNode};

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line number of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseBlifErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseBlifErrorKind {
    /// A directive appeared before `.model`.
    MissingModel,
    /// A second `.model` was found (multi-model files are unsupported).
    MultipleModels,
    /// A `.latch` (or other sequential construct) was found.
    Sequential,
    /// An unknown dot-directive.
    UnknownDirective(String),
    /// A cover row with a bad character or wrong arity.
    BadCoverRow(String),
    /// A cover row appeared outside a `.names` block.
    StrayCoverRow,
    /// `.names` had no signals.
    EmptyNames,
    /// The file ended without any `.model`.
    Empty,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BLIF parse error at line {}: ", self.line)?;
        match &self.kind {
            ParseBlifErrorKind::MissingModel => write!(f, "directive before .model"),
            ParseBlifErrorKind::MultipleModels => write!(f, "multiple .model declarations"),
            ParseBlifErrorKind::Sequential => {
                write!(f, "sequential constructs (.latch) are not supported")
            }
            ParseBlifErrorKind::UnknownDirective(d) => write!(f, "unknown directive {d:?}"),
            ParseBlifErrorKind::BadCoverRow(r) => write!(f, "bad cover row {r:?}"),
            ParseBlifErrorKind::StrayCoverRow => write!(f, "cover row outside .names"),
            ParseBlifErrorKind::EmptyNames => write!(f, ".names with no signals"),
            ParseBlifErrorKind::Empty => write!(f, "no .model found"),
        }
    }
}

impl std::error::Error for ParseBlifError {}

fn err(line: usize, kind: ParseBlifErrorKind) -> ParseBlifError {
    ParseBlifError { line, kind }
}

/// A `.names` block under construction: start line, signal list, cube rows
/// and the output value seen so far.
type NamesBlock = (usize, Vec<String>, Vec<Cube>, Option<bool>);

/// Parses a single-model combinational BLIF file into a [`LogicNetwork`].
///
/// Handles comments (`#` to end of line), backslash line continuations, and
/// `.names` covers with on-set (`1`) or off-set (`0`) output columns. The
/// resulting network is *not* validated — call
/// [`LogicNetwork::validate`] to check semantic consistency.
///
/// # Errors
///
/// Returns a [`ParseBlifError`] carrying the 1-based source line on any
/// syntactic problem, on sequential constructs, and on multi-model files.
pub fn parse_blif(src: &str) -> Result<LogicNetwork, ParseBlifError> {
    // Pre-pass: strip comments, join continuations, remember line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        let (continued, text) = match trimmed.strip_suffix('\\') {
            Some(t) => (true, t),
            None => (false, trimmed),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(text);
                if continued {
                    pending = Some((start, acc));
                } else {
                    lines.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, text.to_owned()));
                } else if !text.trim().is_empty() {
                    lines.push((line_no, text.to_owned()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        lines.push((start, acc));
    }

    let mut network: Option<LogicNetwork> = None;
    // The `.names` block currently being filled.
    let mut current: Option<NamesBlock> = None;

    fn flush(network: &mut Option<LogicNetwork>, current: &mut Option<NamesBlock>) {
        if let Some((_, signals, cubes, out_value)) = current.take() {
            let (output, fanins) = signals.split_last().expect("names checked nonempty");
            let num_inputs = fanins.len();
            let cover = match out_value {
                Some(v) => Sop::new(num_inputs, cubes, v),
                // No rows at all: constant 0 per BLIF convention.
                None => Sop::constant(num_inputs, false),
            };
            network.as_mut().expect("model exists").add_node(LogicNode {
                output: output.clone(),
                fanins: fanins.to_vec(),
                cover,
            });
        }
    }

    for (line_no, text) in &lines {
        let line_no = *line_no;
        let mut tokens = text.split_whitespace();
        let first = match tokens.next() {
            Some(t) => t,
            None => continue,
        };
        if let Some(directive) = first.strip_prefix('.') {
            match directive {
                "model" => {
                    if network.is_some() {
                        return Err(err(line_no, ParseBlifErrorKind::MultipleModels));
                    }
                    let name = tokens.next().unwrap_or("unnamed").to_owned();
                    network = Some(LogicNetwork::new(name));
                }
                "inputs" => {
                    flush(&mut network, &mut current);
                    let net = network
                        .as_mut()
                        .ok_or_else(|| err(line_no, ParseBlifErrorKind::MissingModel))?;
                    for t in tokens {
                        net.add_input(t);
                    }
                }
                "outputs" => {
                    flush(&mut network, &mut current);
                    let net = network
                        .as_mut()
                        .ok_or_else(|| err(line_no, ParseBlifErrorKind::MissingModel))?;
                    for t in tokens {
                        net.add_output(t);
                    }
                }
                "names" => {
                    if network.is_none() {
                        return Err(err(line_no, ParseBlifErrorKind::MissingModel));
                    }
                    flush(&mut network, &mut current);
                    let signals: Vec<String> = tokens.map(str::to_owned).collect();
                    if signals.is_empty() {
                        return Err(err(line_no, ParseBlifErrorKind::EmptyNames));
                    }
                    current = Some((line_no, signals, Vec::new(), None));
                }
                "latch" => return Err(err(line_no, ParseBlifErrorKind::Sequential)),
                "end" => {
                    flush(&mut network, &mut current);
                }
                // Harmless metadata directives some tools emit.
                "default_input_arrival" | "default_output_required" | "area"
                | "delay" | "wire_load_slope" | "search" => {
                    flush(&mut network, &mut current);
                }
                other => {
                    return Err(err(
                        line_no,
                        ParseBlifErrorKind::UnknownDirective(format!(".{other}")),
                    ))
                }
            }
        } else {
            // A cover row.
            let Some((_, signals, cubes, out_value)) = current.as_mut() else {
                return Err(err(line_no, ParseBlifErrorKind::StrayCoverRow));
            };
            let num_inputs = signals.len() - 1;
            let row: Vec<&str> = text.split_whitespace().collect();
            let (input_part, output_part): (&str, &str) = if num_inputs == 0 {
                if row.len() != 1 {
                    return Err(err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone())));
                }
                ("", row[0])
            } else {
                if row.len() != 2 {
                    return Err(err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone())));
                }
                (row[0], row[1])
            };
            let value = match output_part {
                "1" => true,
                "0" => false,
                _ => return Err(err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone()))),
            };
            if let Some(prev) = out_value {
                if *prev != value {
                    // Mixed on-set/off-set covers are not legal BLIF.
                    return Err(err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone())));
                }
            } else {
                *out_value = Some(value);
            }
            let cube: Cube = input_part
                .parse()
                .map_err(|_| err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone())))?;
            if cube.width() != num_inputs {
                return Err(err(line_no, ParseBlifErrorKind::BadCoverRow(text.clone())));
            }
            cubes.push(cube);
        }
    }
    flush(&mut network, &mut current);
    network.ok_or_else(|| err(lines.last().map_or(1, |l| l.0), ParseBlifErrorKind::Empty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_majority() {
        let src = "\
# a comment
.model majority
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";
        let net = parse_blif(src).unwrap();
        net.validate().unwrap();
        assert_eq!(net.name(), "majority");
        assert_eq!(net.inputs(), ["a", "b", "c"]);
        assert_eq!(net.outputs(), ["m"]);
        assert_eq!(net.num_nodes(), 1);
        assert_eq!(net.eval(&[true, false, true]), vec![true]);
        assert_eq!(net.eval(&[false, false, true]), vec![false]);
    }

    #[test]
    fn offset_cover() {
        // y is 0 iff a&b: a NAND.
        let src = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let net = parse_blif(src).unwrap();
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn constant_nodes() {
        let src = "\
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.names a unused_buf
1 1
.end
";
        let net = parse_blif(src).unwrap();
        assert_eq!(net.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn line_continuation() {
        let src = ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse_blif(src).unwrap();
        assert_eq!(net.inputs(), ["a", "b"]);
    }

    #[test]
    fn latch_rejected() {
        let src = ".model s\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        let e = parse_blif(src).unwrap_err();
        assert_eq!(e.kind, ParseBlifErrorKind::Sequential);
        assert_eq!(e.line, 4);
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_blif(".model m\n.frobnicate x\n").unwrap_err();
        assert!(matches!(e.kind, ParseBlifErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn stray_row_rejected() {
        let e = parse_blif(".model m\n11 1\n").unwrap_err();
        assert_eq!(e.kind, ParseBlifErrorKind::StrayCoverRow);
    }

    #[test]
    fn bad_rows_rejected() {
        for body in ["1x 1", "11 2", "111 1", "11"] {
            let src = format!(".model m\n.inputs a b\n.outputs y\n.names a b y\n{body}\n");
            let e = parse_blif(&src).unwrap_err();
            assert!(
                matches!(e.kind, ParseBlifErrorKind::BadCoverRow(_)),
                "{body:?} should be a bad row, got {e:?}"
            );
            assert_eq!(e.line, 5);
        }
    }

    #[test]
    fn mixed_onset_offset_rejected() {
        let src = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n";
        assert!(parse_blif(src).is_err());
    }

    #[test]
    fn multiple_models_rejected() {
        let e = parse_blif(".model a\n.model b\n").unwrap_err();
        assert_eq!(e.kind, ParseBlifErrorKind::MultipleModels);
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_blif("# nothing\n").unwrap_err().kind,
            ParseBlifErrorKind::Empty
        ));
    }

    #[test]
    fn directive_before_model_rejected() {
        let e = parse_blif(".inputs a\n").unwrap_err();
        assert_eq!(e.kind, ParseBlifErrorKind::MissingModel);
    }
}
