//! The end-to-end IP-protection flow of §III-E: the vendor protects an IP
//! with a keyed **watermark** (authorship, identical in every copy) plus a
//! per-buyer **fingerprint**, ships gate-level Verilog, and later runs the
//! two-step check on a grey-market netlist — watermark first to establish
//! piracy, fingerprint second to trace the buyer.
//!
//! Run with: `cargo run --release --example ip_protection_flow`

use odcfp_analysis::DesignMetrics;
use odcfp_core::collusion::trace_suspects;
use odcfp_core::watermark::ProtectedIp;
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks;
use odcfp_verilog::write_verilog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The IP: a C880-class ALU out of the benchmark suite.
    let lib = CellLibrary::standard();
    let base = benchmarks::generate("c880", lib).expect("known benchmark");
    let base_metrics = DesignMetrics::measure(&base);
    println!(
        "IP: {} ({} gates, {base_metrics})",
        base.name(),
        base.num_gates()
    );

    // Protect: split locations between watermark and fingerprints.
    let designer_key = 0x0DC_F1A6;
    let ip = ProtectedIp::new(Fingerprinter::new(base)?, designer_key);
    println!(
        "protection: {} watermark bits (authorship) + {} fingerprint bits (buyers)\n",
        ip.watermark_len(),
        ip.fingerprint_len()
    );

    // Mint one copy per buyer.
    let buyers = ["acme-soc", "nile-semi", "orbit-ic", "quanta-chips"];
    let mut registry: Vec<(String, Vec<bool>)> = Vec::new();
    for (k, buyer) in buyers.iter().enumerate() {
        let copy = ip.mint_seeded(0xB0B0 + k as u64)?;
        let metrics = DesignMetrics::measure(copy.netlist());
        let oh = metrics.overhead_vs(&base_metrics);
        let verdict = ip.verify(copy.netlist());
        registry.push((buyer.to_string(), verdict.buyer_bits.clone()));
        let verilog = write_verilog(copy.netlist());
        println!(
            "minted {buyer:>14}: {oh}; shipped {} lines of Verilog",
            verilog.lines().count()
        );
    }

    // Years later: a suspicious netlist surfaces — a verbatim clone of
    // buyer 2's chips (heredity: copies of the IC carry the same marks).
    let pirated = ip.mint_seeded(0xB0B0 + 2)?;
    println!("\nsuspicious netlist acquired — step 1: verify the watermark");
    let verdict = ip.verify(pirated.netlist());
    println!(
        "  watermark match: {:.0}% -> authorship {}",
        verdict.watermark_match * 100.0,
        if verdict.authorship_established {
            "ESTABLISHED (this is our IP)"
        } else {
            "not established"
        }
    );
    assert!(verdict.authorship_established);

    println!("step 2: trace the fingerprint to a buyer");
    let ranking = trace_suspects(
        &verdict.buyer_bits,
        &registry.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>(),
    );
    for &(idx, score) in &ranking {
        println!("  {:>14}: {:>6.2}%", registry[idx].0, score * 100.0);
    }
    let culprit = ranking[0].0;
    assert_eq!(registry[culprit].0, "orbit-ic");
    println!("\n=> pirated copies trace to {:?}", registry[culprit].0);
    Ok(())
}
