//! Delay-constrained fingerprinting (§III-D / Table III): embed as much
//! fingerprint as a 10% / 5% / 1% delay budget allows, with both the
//! reactive and proactive heuristics.
//!
//! Run with: `cargo run --release --example delay_constrained [circuit]`

use odcfp_analysis::DesignMetrics;
use odcfp_core::heuristics::{
    proactive_delay_embedding, reactive_delay_reduction, ReactiveOptions,
};
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c499".to_owned());
    let lib = CellLibrary::standard();
    let base = benchmarks::generate(&name, lib)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    let fp = Fingerprinter::new(base)?;
    let base_metrics = DesignMetrics::measure(fp.base());
    let total = fp.locations().len();

    let unconstrained = fp.embed_all()?;
    let um = DesignMetrics::measure(unconstrained.netlist());
    println!(
        "{name}: {total} locations; unconstrained overhead: {}\n",
        um.overhead_vs(&base_metrics)
    );

    println!(
        "{:<12} {:>10} {:>10} {:>28}",
        "budget", "kept(rea)", "kept(pro)", "surviving overhead (reactive)"
    );
    for pct in [10.0, 5.0, 1.0] {
        let rea = reactive_delay_reduction(&fp, pct, ReactiveOptions::default())?;
        let pro = proactive_delay_embedding(&fp, pct)?;
        println!(
            "{:<12} {:>7}/{total} {:>7}/{total} {:>28}",
            format!("{pct}% delay"),
            rea.kept_locations(),
            pro.kept_locations(),
            rea.metrics.overhead_vs(&rea.base_metrics).to_string()
        );
    }
    println!("\nEvery surviving copy is functionally identical to the base");
    println!("(verified by 1024-pattern simulation at embed time).");
    Ok(())
}
