//! The paper's exact tool flow, §IV: BLIF in → technology mapping → ODC
//! fingerprinting → fingerprinted structural Verilog out.
//!
//! Run with: `cargo run --example blif_flow`

use odcfp_blif::parse_blif;
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_sat::{check_equivalence, EquivResult};
use odcfp_synth::map_network;
use odcfp_verilog::{parse_verilog, write_verilog};

/// A small MCNC-style combinational model (a 4-bit priority encoder with an
/// enable), inlined so the example is self-contained.
const BLIF: &str = "\
.model prenc4
.inputs en r0 r1 r2 r3
.outputs v y0 y1
.names en r0 r1 r2 r3 v
11--- 1
1-1-- 1
1--1- 1
1---1 1
.names en r0 r1 r3 y0
101- 1
1001 1
.names en r0 r1 r2 r3 y1
1--1- 1
1---1 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the BLIF model (the paper's benchmark input format).
    let network = parse_blif(BLIF)?;
    network.validate()?;
    println!(
        "parsed {:?}: {} inputs, {} outputs, {} nodes",
        network.name(),
        network.inputs().len(),
        network.outputs().len(),
        network.num_nodes()
    );

    // 2. Technology-map onto the standard-cell library (the ABC step).
    let mapped = map_network(&network, CellLibrary::standard())?;
    println!("mapped to {} gates:\n{}", mapped.num_gates(), mapped.stats());

    // 3. Fingerprint.
    let fp = Fingerprinter::new(mapped)?;
    println!("capacity: {}", fp.capacity());
    let copy = fp.embed_seeded(0xB11F)?;
    println!("embedded bits: {}", copy.bit_string());

    // 4. Emit fingerprinted structural Verilog (the paper's output format)
    //    and re-read it to prove the shipped artifact is equivalent.
    let verilog = write_verilog(copy.netlist());
    println!("\n{verilog}");
    let reread = parse_verilog(&verilog, fp.base().library().clone())?;
    assert_eq!(
        check_equivalence(fp.base(), &reread, None)?,
        EquivResult::Equivalent,
        "shipped Verilog must implement the original function"
    );
    println!("re-parsed Verilog proven equivalent to the original BLIF model");
    Ok(())
}
