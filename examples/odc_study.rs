//! An observability study: how common are ODCs in real circuits, and how
//! does that explain fingerprint capacity?
//!
//! For each benchmark we measure, by seeded random simulation, the fraction
//! of nets that are *not always observable* — exactly the raw material the
//! fingerprinting method mines — and relate it to the number of Definition-1
//! locations found.
//!
//! Run with: `cargo run --release --example odc_study [circuit...]`

use odcfp_analysis::odc::simulated_observability;
use odcfp_core::Fingerprinter;
use odcfp_netlist::{CellLibrary, NetDriver};
use odcfp_synth::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["c432".into(), "c499".into(), "c880".into(), "vda".into()]
    } else {
        args
    };
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>10}",
        "circuit", "gates", "avg obs.", "nets w/ ODCs", "FP locs"
    );
    for name in &names {
        let base = benchmarks::generate(name, CellLibrary::standard())
            .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
        // Sample up to 150 gate-output nets for the observability average.
        let nets: Vec<_> = base
            .nets()
            .filter(|(_, n)| matches!(n.driver(), NetDriver::Gate(_)) && n.fanout() > 0)
            .map(|(id, _)| id)
            .take(150)
            .collect();
        let mut total = 0.0;
        let mut with_odc = 0usize;
        for &net in &nets {
            let obs = simulated_observability(&base, net, 8, 42);
            total += obs;
            if obs < 1.0 - 1e-9 {
                with_odc += 1;
            }
        }
        let fp = Fingerprinter::new(base.clone())?;
        println!(
            "{:<8} {:>6} {:>11.1}% {:>12.1}% {:>10}",
            name,
            base.num_gates(),
            total / nets.len() as f64 * 100.0,
            with_odc as f64 / nets.len() as f64 * 100.0,
            fp.locations().len()
        );
    }
    println!();
    println!("\"ODC conditions exist almost everywhere in any combinational");
    println!("circuit\" (§I) — the measured don't-care density above is what");
    println!("gives the method its embedding space.");
    Ok(())
}
