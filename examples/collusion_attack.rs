//! The collusion attack of §III-E: attackers holding several fingerprinted
//! copies diff them to expose fingerprint locations, forge a hybrid copy,
//! and the designer still traces them through the bits the collusion could
//! not see.
//!
//! Run with: `cargo run --release --example collusion_attack`

use odcfp_core::collusion::{analyze_collusion, forge, trace_suspects, ForgeStrategy};
use odcfp_core::Fingerprinter;
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_synth::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::standard();
    let base = benchmarks::generate("c432", lib).expect("known benchmark");
    let fp = Fingerprinter::new(base)?;
    let n_locs = fp.locations().len();
    println!(
        "design {} with {n_locs} fingerprint locations\n",
        fp.base().name()
    );

    // The vendor serves 10 buyers.
    let copies: Vec<_> = (0..10)
        .map(|k| fp.embed_seeded(0xC0FFEE + k))
        .collect::<Result<_, _>>()?;
    let registry: Vec<Vec<bool>> = copies.iter().map(|c| c.bits().to_vec()).collect();

    // How much does a growing collusion expose?
    println!("collusion size vs exposed locations:");
    for k in 2..=6usize {
        let held: Vec<&Netlist> = copies[..k].iter().map(|c| c.netlist()).collect();
        let report = analyze_collusion(&fp, &held);
        println!(
            "  {k} colluders expose {:>3} / {n_locs} locations ({:.0}%)",
            report.exposed.len(),
            report.exposure_rate() * 100.0
        );
    }

    // Buyers 0, 1, 2 collude and clear every wire they can see.
    let colluders = [0usize, 1, 2];
    let held: Vec<&Netlist> = colluders.iter().map(|&i| copies[i].netlist()).collect();
    let forged = forge(&fp, &held, ForgeStrategy::ClearExposed)?;
    println!(
        "\ncolluders {:?} forged a copy; it is still a functional clone (verified)",
        colluders
    );

    // Designer side: recover what remains and rank all buyers.
    let recovered = fp.extract(forged.netlist());
    let ranking = trace_suspects(&recovered, &registry);
    println!("tracing ranking (agreement with the forged copy):");
    for &(idx, score) in ranking.iter().take(6) {
        let mark = if colluders.contains(&idx) { "  <- colluder" } else { "" };
        println!("  buyer {idx}: {:>6.2}%{mark}", score * 100.0);
    }
    let top3: Vec<usize> = ranking.iter().take(3).map(|&(i, _)| i).collect();
    for c in colluders {
        assert!(
            top3.contains(&c),
            "colluder {c} should rank in the top 3: {ranking:?}"
        );
    }
    println!("\n=> all three colluders rank above every innocent buyer");
    Ok(())
}
