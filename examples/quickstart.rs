//! Quickstart: fingerprint the paper's Figure 1 circuit.
//!
//! Builds `F = (A & B) & (C + D)`, finds its fingerprint locations, embeds
//! a one-bit fingerprint (the exact modification shown in Figure 1 right:
//! `X = A & B & Y`), proves the copy equivalent with the SAT miter and
//! recovers the bit.
//!
//! Run with: `cargo run --example quickstart`

use odcfp_core::{Fingerprinter, VerifyLevel};
use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{dot, CellLibrary, Netlist};
use odcfp_sat::{check_equivalence, EquivResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the base design (normally parsed from Verilog or BLIF).
    let lib = CellLibrary::standard();
    let mut n = Netlist::new("fig1", lib);
    let a = n.add_primary_input("A");
    let b = n.add_primary_input("B");
    let c = n.add_primary_input("C");
    let d = n.add_primary_input("D");
    let and2 = n.library().cell_for(PrimitiveFn::And, 2).expect("AND2");
    let or2 = n.library().cell_for(PrimitiveFn::Or, 2).expect("OR2");
    let gx = n.add_gate("gx", and2, &[a, b]);
    let gy = n.add_gate("gy", or2, &[c, d]);
    let gf = n.add_gate("gf", and2, &[n.gate_output(gx), n.gate_output(gy)]);
    n.set_primary_output(n.gate_output(gf));
    println!("base design:\n{}", n.stats());

    // 2. Scan for fingerprint locations (Definition 1 of the paper).
    let fp = Fingerprinter::new(n)?;
    println!("capacity: {}", fp.capacity());
    for (loc, m) in fp.locations().iter().zip(fp.selected_modifications()) {
        println!(
            "  location at primary gate {}: {} candidate(s); default: {m:?}",
            loc.primary_gate,
            loc.candidates.len()
        );
    }

    // 3. Embed a fingerprint and prove it changes nothing functionally.
    let bits = vec![true; fp.locations().len()];
    let copy = fp.embed_verified(&bits, VerifyLevel::Sat)?;
    println!("embedded bits: {}", copy.bit_string());
    assert_eq!(
        check_equivalence(fp.base(), copy.netlist(), None)?,
        EquivResult::Equivalent
    );
    println!("SAT miter: copy is functionally identical to the base");

    // 4. The designer recovers the fingerprint by comparing against the
    //    base (§III-E).
    let recovered = fp.extract(copy.netlist());
    assert_eq!(recovered, bits);
    println!("recovered bits match");

    // 5. Inspect the marked gates visually.
    let highlight: Vec<_> = fp
        .selected_modifications()
        .iter()
        .map(|m| m.target())
        .collect();
    println!("\nGraphviz of the fingerprinted copy:\n");
    println!("{}", dot::to_dot(copy.netlist(), &highlight));
    Ok(())
}
