//! Robust fingerprints (§V): protect the buyer id with an error-correcting
//! code so a tampering adversary can neither destroy the mark nor hide
//! which wires they touched.
//!
//! Run with: `cargo run --release --example robust_fingerprint`

use odcfp_core::robust::{embed_payload, extract_payload, Code, DecodeStatus};
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = benchmarks::generate("c499", CellLibrary::standard()).expect("known");
    let fp = Fingerprinter::new(base)?;
    let n = fp.locations().len();
    let code = Code::Hamming;
    let capacity = code.payload_capacity(n);
    println!(
        "{}: {n} locations protect up to {capacity} payload bits under SECDED Hamming(8,4)",
        fp.base().name(),
    );

    // A 32-bit buyer id, truncated to whatever the design can carry.
    let buyer_id: u32 = 0xB1AC_C0DE;
    let payload_len = capacity.min(32);
    let payload: Vec<bool> = (0..payload_len).map(|i| (buyer_id >> i) & 1 == 1).collect();
    let copy = embed_payload(&fp, code, &payload)?;
    println!("embedded {payload_len} id bits of {buyer_id:#010x} across {n} coded bits");

    // The adversary flips one fingerprint wire per coded block — the worst
    // pattern SECDED Hamming(8,4) still corrects.
    let blocks = payload_len / 4;
    let mut tampered_bits = copy.bits().to_vec();
    for block in 0..blocks {
        let at = block * 8 + (block % 8);
        tampered_bits[at] = !tampered_bits[at];
    }
    let tampered = fp.embed(&tampered_bits)?;
    println!("adversary flipped {blocks} wires (one per code block)");

    let recovered = extract_payload(&fp, code, tampered.netlist(), payload_len);
    let recovered_id: u32 = recovered
        .payload
        .iter()
        .enumerate()
        .map(|(i, &b)| (b as u32) << i)
        .sum();
    let expected_id = if payload_len >= 32 {
        buyer_id
    } else {
        buyer_id & ((1u32 << payload_len) - 1)
    };
    println!("recovered buyer id: {recovered_id:#010x}");
    println!("tampered locations identified: {:?}", recovered.tampered_locations);
    assert_eq!(recovered_id, expected_id, "payload must survive tampering");
    assert_eq!(recovered.tampered_locations.len(), blocks);
    assert_eq!(recovered.status, DecodeStatus::Corrected);
    println!("=> id intact, every tampered wire pinpointed");
    Ok(())
}
