//! Robust fingerprints (§V): protect the buyer id with an error-correcting
//! code so a tampering adversary can neither destroy the mark nor hide
//! which wires they touched.
//!
//! Run with: `cargo run --release --example robust_fingerprint`

use odcfp_core::robust::{embed_payload, extract_payload, Code};
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = benchmarks::generate("c499", CellLibrary::standard()).expect("known");
    let fp = Fingerprinter::new(base)?;
    let n = fp.locations().len();
    let code = Code::Hamming;
    println!(
        "{}: {n} locations protect up to {} payload bits under Hamming(7,4)",
        fp.base().name(),
        code.payload_capacity(n)
    );

    // A 32-bit buyer id.
    let buyer_id: u32 = 0xB1AC_C0DE;
    let payload: Vec<bool> = (0..32).map(|i| (buyer_id >> i) & 1 == 1).collect();
    let copy = embed_payload(&fp, code, &payload)?;
    println!("embedded buyer id {buyer_id:#010x} across {} coded bits", n);

    // The adversary flips a handful of fingerprint wires (one per coded
    // block, the worst pattern Hamming(7,4) still corrects).
    let mut tampered_bits = copy.bits().to_vec();
    for block in 0..6 {
        let at = block * 7 + (block % 7);
        tampered_bits[at] = !tampered_bits[at];
    }
    let tampered = fp.embed(&tampered_bits)?;
    println!("adversary flipped 6 wires (one per code block)");

    let recovered = extract_payload(&fp, code, tampered.netlist(), 32);
    let recovered_id: u32 = recovered
        .payload
        .iter()
        .enumerate()
        .map(|(i, &b)| (b as u32) << i)
        .sum();
    println!("recovered buyer id: {recovered_id:#010x}");
    println!("tampered locations identified: {:?}", recovered.tampered_locations);
    assert_eq!(recovered_id, buyer_id, "payload must survive tampering");
    assert_eq!(recovered.tampered_locations.len(), 6);
    println!("=> id intact, every tampered wire pinpointed");
    Ok(())
}
