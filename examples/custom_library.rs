//! Fingerprinting against a user-supplied `genlib` cell library, plus the
//! post-silicon fuse model: one mask set, per-buyer fuse programming.
//!
//! Run with: `cargo run --release --example custom_library`

use odcfp_core::{FlexibleDesign, Fingerprinter};
use odcfp_netlist::genlib::parse_genlib;
use odcfp_sat::{check_equivalence, EquivResult};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// A small characterized library in MCNC genlib syntax.
const GENLIB: &str = "\
GATE INVA   928  Y=!A;        PIN * INV    1.0 999 0.8 0.10 0.8 0.10
GATE BUFA   1392 Y=A;         PIN * NONINV 1.0 999 1.5 0.10 1.5 0.10
GATE NAND2A 1392 Y=!(A*B);    PIN * INV    1.4 999 0.9 0.10 0.9 0.10
GATE NAND3A 1856 Y=!(A*B*C);  PIN * INV    1.4 999 1.0 0.10 1.0 0.10
GATE NAND4A 2320 Y=!(A*B*C*D); PIN * INV   1.4 999 1.1 0.10 1.1 0.10
GATE NOR2A  1392 Y=!(A+B);    PIN * INV    1.4 999 1.2 0.10 1.2 0.10
GATE NOR3A  1856 Y=!(A+B+C);  PIN * INV    1.4 999 1.4 0.10 1.4 0.10
GATE AND2A  1856 Y=A*B;       PIN * NONINV 1.8 999 1.7 0.10 1.7 0.10
GATE AND3A  2320 Y=A*B*C;     PIN * NONINV 1.8 999 1.8 0.10 1.8 0.10
GATE AND4A  2784 Y=A*B*C*D;   PIN * NONINV 1.8 999 1.9 0.10 1.9 0.10
GATE OR2A   1856 Y=A+B;       PIN * NONINV 1.8 999 1.9 0.10 1.9 0.10
GATE OR3A   2320 Y=A+B+C;     PIN * NONINV 1.8 999 2.1 0.10 2.1 0.10
GATE OR4A   2784 Y=A+B+C+D;   PIN * NONINV 1.8 999 2.3 0.10 2.3 0.10
GATE NOR4A  2320 Y=!(A+B+C+D); PIN * INV   1.4 999 1.6 0.10 1.6 0.10
GATE XOR2A  2784 Y=A^B;       PIN * UNKNOWN 2.2 999 1.8 0.12 1.8 0.12
GATE XNOR2A 2784 Y=!(A^B);    PIN * UNKNOWN 2.2 999 2.0 0.12 2.0 0.12
GATE AOI21  1624 Y=!(A*B+C);  PIN * INV    1.4 999 1.1 0.10 1.1 0.10
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the custom library; exotic cells are reported, not dropped
    //    silently.
    let report = parse_genlib(GENLIB, "acme-7nm")?;
    for (gate, reason) in &report.skipped {
        println!("skipped {gate}: {reason}");
    }
    println!("loaded {} cells from genlib\n", report.library.len());

    // 2. Build a design mapped to that library and fingerprint it.
    let base = random_dag(
        report.library.clone(),
        DagParams {
            inputs: 24,
            gates: 300,
            outputs: 16,
            window: 60,
            seed: 0xACE,
        },
    );
    let fp = Fingerprinter::new(base)?;
    println!("design: {} gates, {}", fp.base().num_gates(), fp.capacity());

    // 3. The practical deployment (§I-A / §VI): fabricate ONE flexible
    //    design with every fingerprint wire behind a fuse, then program
    //    each die.
    let flexible = FlexibleDesign::build(&fp)?;
    println!(
        "flexible mask-level design: {} gates, {} fuse inputs",
        flexible.netlist().num_gates(),
        flexible.fuse_nets().len()
    );

    let buyer_bits: Vec<bool> = (0..fp.locations().len()).map(|i| i % 3 == 0).collect();
    let programmed = flexible.program(&buyer_bits)?;
    let embedded = fp.embed(&buyer_bits)?;
    assert_eq!(
        check_equivalence(&programmed, embedded.netlist(), None)?,
        EquivResult::Equivalent,
        "fuse programming and netlist rewiring implement the same copy"
    );
    println!("fuse-programmed die proven equivalent to the rewired netlist");
    println!("recovered bits match: {}", fp.extract(embedded.netlist()) == buyer_bits);
    Ok(())
}
